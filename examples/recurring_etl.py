"""Recurring ETL: the same jobs, every day, optimized from history.

Simulates a week of daily loads: each morning the optimizer plans from
*yesterday's* statistics and measured execution, then today's data
arrives and runs.  This is exactly the paper's deployment (scheduled
queries over recurring trigger conditions, section 2.1) -- and shows
that historical calibration is good enough: deadlines derived from
yesterday hold against today's data.

Run:  python examples/recurring_etl.py
"""

from repro.core.optimizer import OptimizerConfig
from repro.engine.stream import StreamConfig
from repro.harness import RecurringSimulation, format_table
from repro.workloads.constraints import random_constraints
from repro.workloads.tpch import build_workload, generate_catalog

JOBS = ("Q1", "Q3", "Q6", "Q10", "Q12", "Q18")


def main():
    simulation = RecurringSimulation(
        make_catalog=lambda day: generate_catalog(scale=0.25, seed=300 + day),
        make_queries=lambda catalog: build_workload(catalog, JOBS),
        config=OptimizerConfig(max_pace=50, stream_config=StreamConfig()),
    )
    relative = random_constraints(range(len(JOBS)), seed=8)
    print("Job deadlines (relative constraints):",
          {JOBS[qid]: rel for qid, rel in relative.items()})

    outcomes = simulation.run(days=5, relative_constraints=relative)
    rows = []
    for outcome in outcomes:
        rows.append([
            "day %d%s" % (outcome.day, " (bootstrap)" if outcome.day == 0 else ""),
            outcome.total_work,
            outcome.missed.mean_percent,
            outcome.missed.max_percent,
            len(outcome.actions),
        ])
    print(format_table(
        ("Window", "Total work", "Mean miss %", "Max miss %", "Unshare actions"),
        rows,
        "A week of recurring execution (plans from history, data from today)",
    ))
    print()
    print("Day 0 self-calibrates; every later day plans purely from the")
    print("previous window's statistics and measured feedback.")


if __name__ == "__main__":
    main()
