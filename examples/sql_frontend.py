"""Submitting scheduled queries as SQL text.

Shows the SQL-subset frontend: two analyst-written queries over the same
stream are parsed, lowered, merged by the MQO optimizer, and executed
incrementally -- and the incremental results are verified against a
one-batch reference run.

Run:  python examples/sql_frontend.py
"""

from repro.engine.compare import assert_results_close
from repro.engine.executor import PlanExecutor
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.sqlparser import parse_query
from repro.workloads.tpch import generate_catalog

BRAND_REVENUE = """
    SELECT p_brand, SUM(l_extendedprice * (1 - l_discount)) AS revenue
    FROM part JOIN lineitem ON p_partkey = l_partkey
    GROUP BY p_brand
"""

PROMO_REVENUE = """
    SELECT p_brand, SUM(l_extendedprice * (1 - l_discount)) AS revenue
    FROM part JOIN lineitem ON p_partkey = l_partkey
    WHERE p_type LIKE 'PROMO%' AND l_quantity BETWEEN 5 AND 45
    GROUP BY p_brand
"""


def main():
    catalog = generate_catalog(scale=0.3, seed=3)
    queries = [
        parse_query(catalog, BRAND_REVENUE, 0, "brand_revenue"),
        parse_query(catalog, PROMO_REVENUE, 1, "promo_revenue"),
    ]

    shared = MQOOptimizer(catalog).build_shared_plan(queries)
    print("Shared plan:")
    print(shared.describe())
    print()

    # run incrementally (pace 8 everywhere) and compare with batch
    executor = PlanExecutor(shared)
    incremental = executor.run({s.sid: 8 for s in shared.subplans})

    reference_plan = build_unshared_plan(catalog, queries)
    reference = PlanExecutor(reference_plan).run(
        {s.sid: 1 for s in reference_plan.subplans}
    )

    for query in queries:
        incremental_rows = incremental.query_results[query.query_id]
        reference_rows = reference.query_results[query.query_id]
        # float sums associate differently across paces; compare rounded
        assert_results_close(incremental_rows, reference_rows, context=query.name)
        top = sorted(incremental_rows, key=lambda row: -row[1])[:3]
        print("%s: %d brands; top 3 by revenue:" % (query.name, len(incremental_rows)))
        for brand, revenue in top:
            print("   %-10s %12.2f" % (brand, revenue))
    print()
    print("Incremental shared execution matched the batch reference.")
    print("Shared total work: %.0f units (batch reference: %.0f)"
          % (incremental.total_work, reference.total_work))


if __name__ == "__main__":
    main()
