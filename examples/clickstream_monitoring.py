"""Clickstream monitoring: a non-TPC-H scenario end to end.

A product team schedules three jobs over the day's event stream:

* an hourly-refresh **live ops dashboard** (tight deadline, 0.1),
* a **campaign report** due mid-morning (0.5),
* a **data-quality audit** that just has to finish by evening (1.0).

All three share the pageviews |X| pages join. Events include late
corrections (update churn), queries are written in SQL, and iShare keeps
the audit lazy while the dashboard's subplans run eagerly.

Run:  python examples/clickstream_monitoring.py
"""

import random

from repro.core.optimizer import (
    OptimizerConfig,
    optimize_ishare,
    optimize_share_uniform,
    reference_absolute_constraints,
)
from repro.engine.compare import assert_results_close
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.mqo.merge import build_unshared_plan
from repro.relational.schema import Schema, INT, FLOAT, STR
from repro.relational.table import Catalog
from repro.sqlparser import parse_query

DASHBOARD = """
    SELECT country, SUM(dwell_ms) AS engagement, COUNT(*) AS views
    FROM pageviews JOIN pages ON pv_page = page_id
    WHERE section IN ('home', 'checkout')
    GROUP BY country
"""

CAMPAIGN = """
    SELECT section, SUM(dwell_ms * is_campaign) AS campaign_dwell
    FROM pageviews JOIN pages ON pv_page = page_id
    WHERE country IN ('DE', 'FR', 'US')
    GROUP BY section
"""

AUDIT = """
    SELECT page_id, COUNT(*) AS hits, MAX(dwell_ms) AS worst_dwell
    FROM pageviews JOIN pages ON pv_page = page_id
    GROUP BY page_id
"""


def build_catalog(seed=19, n_pages=120, n_views=4000):
    rng = random.Random(seed)
    catalog = Catalog()
    pages = catalog.create(
        "pages", Schema.of(("page_id", INT), ("section", STR))
    )
    for page in range(n_pages):
        pages.append((page, rng.choice(
            ["home", "checkout", "docs", "blog", "pricing"]
        )))
    views = catalog.create(
        "pageviews",
        Schema.of(("pv_page", INT), ("country", STR), ("dwell_ms", FLOAT),
                  ("is_campaign", INT)),
    )
    for _ in range(n_views):
        views.append((
            rng.randrange(n_pages),
            rng.choice(["DE", "FR", "US", "JP", "BR"]),
            float(rng.randint(100, 60_000)),
            int(rng.random() < 0.2),
        ))
    # late corrections: ~3% of dwell times get re-reported
    updates = []
    for row in rng.sample(views.rows, max(1, n_views // 33)):
        corrected = (row[0], row[1], float(rng.randint(100, 60_000)), row[3])
        updates.append((row, corrected))
    views.apply_updates(updates, rng)
    return catalog


def main():
    catalog = build_catalog()
    queries = [
        parse_query(catalog, DASHBOARD, 0, "dashboard"),
        parse_query(catalog, CAMPAIGN, 1, "campaign"),
        parse_query(catalog, AUDIT, 2, "audit"),
    ]
    relative = {0: 0.1, 1: 0.5, 2: 1.0}

    config = OptimizerConfig(max_pace=50, stream_config=StreamConfig())
    constraints = reference_absolute_constraints(
        catalog, queries, relative, config
    )

    reference_plan = build_unshared_plan(catalog, queries)
    reference = PlanExecutor(reference_plan, config.stream_config).run(
        {s.sid: 1 for s in reference_plan.subplans}
    )

    for optimize in (optimize_share_uniform, optimize_ishare):
        result = optimize(catalog, queries, relative, config,
                          absolute_constraints=constraints)
        run = PlanExecutor(result.plan, config.stream_config).run(
            result.pace_config
        )
        for query in queries:
            assert_results_close(
                run.query_results[query.query_id],
                reference.query_results[query.query_id],
                context=query.name,
            )
        print("%-22s total work %8.0f  paces %s"
              % (result.approach, run.total_work,
                 sorted(set(result.pace_config.values()))))
        for query in queries:
            final = run.query_final_work[query.query_id]
            bound = constraints[query.query_id]
            print("   %-10s final %6.0f / constraint %6.0f %s"
                  % (query.name, final, bound,
                     "ok" if final <= bound * 1.1 else "MISS"))
    print()
    print("Every job's results (with late-correction churn) matched the")
    print("batch reference; iShare meets the dashboard's deadline without")
    print("dragging the audit into eager execution.")


if __name__ == "__main__":
    main()
