"""Scheduled dashboards with heterogeneous deadlines.

The paper's motivating scenario (section 1): many reports are scheduled
over the same daily data load, but "some daily reports are due at 7 am
and some others are due at 10 am".  This example schedules eight TPC-H
reports with deadlines drawn from the paper's constraint levels and
compares all four execution strategies on CPU seconds and missed
deadlines.

Run:  python examples/scheduled_dashboards.py
"""

from repro.harness import APPROACHES, ExperimentRunner, format_table, default_config
from repro.workloads.constraints import random_constraints
from repro.workloads.tpch import build_workload, generate_catalog

#: a spread of cheap and expensive dashboard queries
DASHBOARDS = ("Q1", "Q3", "Q5", "Q6", "Q10", "Q12", "Q18", "Q22")


def main():
    catalog = generate_catalog(scale=0.3, seed=11)
    queries = build_workload(catalog, DASHBOARDS)
    config = default_config(max_pace=50)
    runner = ExperimentRunner(catalog, queries, config)

    relative = random_constraints(range(len(queries)), seed=42)
    print("Deadline tightness per dashboard (relative constraint):")
    for query in queries:
        print("  %-4s -> %.1f" % (query.name, relative[query.query_id]))
    print()

    rows = []
    for name in APPROACHES:
        approach = runner.run_approach(name, relative)
        rows.append([
            name,
            approach.total_seconds,
            approach.optimization_seconds,
            approach.missed.mean_percent,
            approach.missed.max_percent,
        ])
    print(format_table(
        ("Approach", "CPU s", "Optimize s", "Mean miss %", "Max miss %"),
        rows,
        "Eight dashboards, one daily load",
    ))
    print()
    print("iShare shares the common join pipelines but only executes each")
    print("subplan as eagerly as its tightest dependent deadline requires.")


if __name__ == "__main__":
    main()
