"""Quickstart: share two scheduled queries and optimize their paces.

Walks the full pipeline on the paper's running example (Figure 2):

1. build a tiny TPC-H-like dataset,
2. define Q_A (lazy, relative constraint 1.0) and Q_B (eager, 0.1),
3. let the MQO optimizer merge them into a shared plan,
4. run iShare to pick per-subplan paces (and unshare if worthwhile),
5. execute and compare against executing the queries separately.

Run:  python examples/quickstart.py
"""

from repro.core.optimizer import (
    OptimizerConfig,
    optimize_ishare,
    optimize_noshare_uniform,
    reference_absolute_constraints,
)
from repro.engine.executor import PlanExecutor
from repro.workloads.tpch import build_pair, generate_catalog


def main():
    print("Generating a micro TPC-H dataset...")
    catalog = generate_catalog(scale=0.3, seed=7)
    queries = build_pair(catalog)  # [Q_A, Q_B] from the paper's Figure 2

    # Q_A is a slow daily report (any time today is fine -> 1.0);
    # Q_B feeds a dashboard due right after the data lands -> 0.1.
    relative_constraints = {0: 1.0, 1: 0.1}

    config = OptimizerConfig(max_pace=50)
    constraints = reference_absolute_constraints(
        catalog, queries, relative_constraints, config
    )
    print("Absolute final-work constraints:",
          {qid: round(value) for qid, value in constraints.items()})

    for optimize in (optimize_noshare_uniform, optimize_ishare):
        result = optimize(
            catalog, queries, relative_constraints, config,
            absolute_constraints=constraints,
        )
        run = PlanExecutor(result.plan, config.stream_config).run(result.pace_config)
        print()
        print("approach: %s" % result.approach)
        print("  subplans: %d, paces: %s"
              % (len(result.plan.subplans), sorted(result.pace_config.values())))
        print("  total work: %.0f units (%.2f s at the configured rate)"
              % (run.total_work, run.total_seconds))
        for query in queries:
            print("  %s final work %.0f (constraint %.0f), %d result rows"
                  % (query.name,
                     run.query_final_work[query.query_id],
                     constraints[query.query_id],
                     len(run.query_results[query.query_id])))

    print()
    print("iShare shares Q_A and Q_B's common part|X|SUM(lineitem) block and")
    print("keeps Q_A's side lazy while meeting Q_B's tight deadline.")


if __name__ == "__main__":
    main()
