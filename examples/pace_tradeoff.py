"""The latency/resource trade-off of incremental execution (Figure 1).

Executes one aggregation-heavy query under increasing paces and prints
the total work (CPU proxy) against the final work (latency proxy): eager
execution cuts latency but pays retract/insert churn and per-execution
state maintenance -- the trade-off iShare's incrementability metric
navigates.

Run:  python examples/pace_tradeoff.py
"""

from repro.engine.executor import PlanExecutor
from repro.harness import format_table
from repro.mqo.merge import build_unshared_plan
from repro.workloads.tpch import build_workload, generate_catalog


def main():
    catalog = generate_catalog(scale=0.3, seed=5)
    queries = build_workload(catalog, ("Q18",))  # order-quantity aggregation
    plan = build_unshared_plan(catalog, queries)
    executor = PlanExecutor(plan)

    rows = []
    batch_total = None
    for pace in (1, 2, 4, 8, 16, 32, 64):
        run = executor.run({s.sid: pace for s in plan.subplans}, collect_results=False)
        if batch_total is None:
            batch_total = run.total_work
        rows.append([
            pace,
            run.total_work,
            run.total_work / batch_total,
            run.query_final_work[0],
        ])
    print(format_table(
        ("Pace", "Total work", "vs batch", "Final work (latency)"),
        rows,
        "Q18 under increasing eagerness",
    ))
    print()
    print("Higher pace -> lower final work (latency) but more total work:")
    print("exactly the Figure 1 trade-off the pace optimizer navigates.")


if __name__ == "__main__":
    main()
