"""On-disk, content-keyed cache for calibration results.

Calibration (one instrumented batch run per plan shape,
:func:`repro.engine.calibrate.calibrate_plan`) is the dominant fixed cost
of every benchmark invocation: each approach calibrates its own plan and
the reference (unshared) plan is calibrated again for the latency goals
and absolute constraints.  The measured statistics are a pure function of

* the plan's *structure* (operators, decorations, subplan DAG),
* the *content* of the base tables the plan reads, and
* the :class:`~repro.engine.stream.StreamConfig` timing parameters,

so a repeat run over unchanged inputs can skip the batch execution
entirely.  This module provides the stable signature of those three
inputs, the serialization of calibrated :class:`~repro.cost.stats
.NodeStats` (nodes are keyed by their deterministic traversal position,
so the same structural signature guarantees the same node order), and a
small JSON-file-per-key store with atomic writes so concurrent worker
processes (see :mod:`repro.harness.parallel`) can share one cache
directory safely.

The cache is opt-in: nothing is read or written unless a cache is passed
to ``calibrate_plan`` or installed process-wide with
:func:`set_default_cache` (the harness CLI and the benchmarks do the
latter; ``--no-cache`` turns it off).
"""

import hashlib
import json
import os
import tempfile

from ..mqo.nodes import SubplanRef, TableRef
from ..obs import OBS
from ..relational import bitvec
from .stats import NodeStats


def _count(event):
    """Bump a ``calibration.cache.*`` counter when observability is on."""
    if OBS.enabled:
        OBS.metrics.counter("calibration.cache." + event).inc()

#: bump when the stored payload shape or the signature scheme changes;
#: mismatched entries are treated as misses, never as errors
CACHE_FORMAT_VERSION = 1

#: environment override for the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_STAT_SCALARS = (
    "scanned_total", "kept_total", "in_left", "in_right", "join_out",
    "agg_in", "groups_union", "agg_out",
)
_STAT_MAPS = (
    "kept_per_q", "filter_sel_per_q", "in_left_per_q", "in_right_per_q",
    "join_out_per_q", "agg_in_per_q", "groups_per_q",
)


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-calibration``."""
    return os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-calibration"
    )


# -- signatures ----------------------------------------------------------------

def stream_signature(stream_config):
    """Stable tuple of every timing parameter that affects measurements."""
    return (
        "stream",
        stream_config.load_seconds,
        stream_config.work_rate,
        stream_config.execution_overhead,
        stream_config.state_factor,
        stream_config.compact_buffers,
    )


def catalog_signature(catalog, table_names):
    """Content digest of the named tables (schema + full delta log)."""
    digest = hashlib.sha256()
    for name in sorted(table_names):
        table = catalog.get(name)
        digest.update(repr((name, tuple(table.schema.names()))).encode())
        for row, sign in table.delta_log():
            digest.update(repr((row, sign)).encode())
    return digest.hexdigest()


def _walk_preorder(node):
    yield node
    for child in node.children:
        for descendant in _walk_preorder(child):
            yield descendant


def _remap_qid(qid, qid_map):
    if qid_map is None:
        return qid
    mapped = qid_map.get(qid)
    # a query id with no counterpart can never match -- tag, don't drop,
    # so the signature stays structurally honest
    return mapped if mapped is not None else ("dropped", qid)


def _remap_mask(mask, qid_map):
    """Translate a query bitmask through ``qid_map`` (see _node_signature)."""
    if qid_map is None:
        return mask
    out = 0
    for qid in bitvec.iter_bits(mask):
        mapped = qid_map.get(qid)
        if mapped is None:
            return ("dropped", mask)
        out |= bitvec.bit(mapped)
    return out


def _node_signature(node, sid_position, qid_map=None):
    """Structural signature of one shared-plan node.

    ``qid_map`` optionally translates this plan's query ids into another
    id space before they enter the signature -- the incremental service
    re-merge (:mod:`repro.core.incremental`) renumbers dense query slots
    on churn and matches new-plan signatures against old-plan ones.  Ids
    without a mapping yield a signature that matches nothing.
    """
    if node.kind == "source":
        ref = node.ref
        if isinstance(ref, TableRef):
            source = ("table", ref.name)
        elif isinstance(ref, SubplanRef):
            source = ("subplan", sid_position[ref.subplan.sid])
        else:  # pragma: no cover - rejected at plan build time
            source = ("unknown", repr(ref))
    else:
        source = None
    filters = tuple(
        (_remap_qid(qid, qid_map), expr.signature())
        for qid, expr in sorted(node.filters.items())
    )
    projections = tuple(
        (_remap_qid(qid, qid_map),
         tuple((alias, expr.signature()) for alias, expr in proj))
        for qid, proj in sorted(node.projections.items())
    )
    return (
        node.kind,
        source,
        node.left_keys,
        node.right_keys,
        node.group_by,
        tuple(spec.signature() for spec in node.aggs) if node.aggs else None,
        filters,
        projections,
        _remap_mask(node.query_mask, qid_map),
        tuple(
            _node_signature(child, sid_position, qid_map)
            for child in node.children
        ),
    )


def plan_signature(plan):
    """Structural signature of a shared plan (no data, no statistics).

    Subplans are identified by topological position rather than raw sid
    so structurally identical plans built in different sessions match.
    """
    order = plan.topological_order()
    sid_position = {subplan.sid: index for index, subplan in enumerate(order)}
    subplans = tuple(
        (
            sid_position[subplan.sid],
            tuple(subplan.query_ids()),
            _node_signature(subplan.root, sid_position),
        )
        for subplan in order
    )
    roots = tuple(sorted(
        (qid, sid_position[root.sid]) for qid, root in plan.query_roots.items()
    ))
    return ("plan", subplans, roots)


def calibration_key(plan, stream_config):
    """Hex digest keying one calibration: plan + table content + stream."""
    tables = set()
    for subplan in plan.subplans:
        tables.update(subplan.base_tables())
    payload = repr((
        CACHE_FORMAT_VERSION,
        plan_signature(plan),
        stream_signature(stream_config),
        catalog_signature(plan.catalog, tables),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()


# -- stats serialization --------------------------------------------------------

def _plan_nodes(plan):
    """Every node of the plan in the deterministic traversal order."""
    return [
        node
        for subplan in plan.topological_order()
        for node in _walk_preorder(subplan.root)
    ]


def serialize_stats(plan):
    """Calibrated per-node statistics as JSON-safe dicts, traversal order."""
    entries = []
    for node in _plan_nodes(plan):
        stats = node.stats
        entry = {"kind": stats.kind, "has_minmax": stats.has_minmax}
        for field in _STAT_SCALARS:
            entry[field] = getattr(stats, field)
        for field in _STAT_MAPS:
            entry[field] = {
                str(qid): value for qid, value in getattr(stats, field).items()
            }
        entries.append(entry)
    return entries


def apply_stats(plan, entries):
    """Attach serialized statistics back onto ``plan``'s nodes.

    Raises :class:`ValueError` when the entry list does not match the
    plan's node count -- callers treat that as a cache miss.
    """
    nodes = _plan_nodes(plan)
    if len(nodes) != len(entries):
        raise ValueError(
            "cached stats cover %d nodes, plan has %d" % (len(entries), len(nodes))
        )
    for node, entry in zip(nodes, entries):
        stats = NodeStats(entry["kind"])
        stats.has_minmax = bool(entry.get("has_minmax", False))
        for field in _STAT_SCALARS:
            setattr(stats, field, float(entry.get(field, 0.0)))
        for field in _STAT_MAPS:
            setattr(stats, field, {
                int(qid): value
                for qid, value in entry.get(field, {}).items()
            })
        node.stats = stats


# -- the store -------------------------------------------------------------------

class CalibrationCache:
    """A directory of JSON payloads, one file per content key.

    Writes go through a temporary file plus :func:`os.replace`, so
    concurrent writers (parallel harness workers) at worst redundantly
    store identical payloads; readers never observe partial files.
    ``hits`` / ``misses`` / ``stores`` count this instance's traffic.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = cache_dir or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, plan, stream_config):
        return calibration_key(plan, stream_config)

    def _path(self, key):
        return os.path.join(self.cache_dir, key + ".json")

    def get(self, key):
        """The stored payload dict, or None (counting a hit or a miss)."""
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            _count("miss")
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            self.misses += 1
            _count("invalidation")
            return None
        self.hits += 1
        _count("hit")
        return payload

    def put(self, key, payload):
        payload = dict(payload, version=CACHE_FORMAT_VERSION)
        os.makedirs(self.cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return
        self.stores += 1
        _count("store")

    def clear(self):
        """Remove every stored entry (not the directory itself)."""
        try:
            names = os.listdir(self.cache_dir)
        except OSError:
            return
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.cache_dir, name))
                except OSError:
                    pass

    def __repr__(self):
        return "CalibrationCache(%r, hits=%d, misses=%d)" % (
            self.cache_dir, self.hits, self.misses
        )


#: process-wide default used by ``calibrate_plan`` when no explicit cache
#: is passed; None (the initial state) disables caching entirely
_default_cache = None


def set_default_cache(cache):
    """Install (or with None, remove) the process-wide calibration cache."""
    global _default_cache
    _default_cache = cache
    return cache


def get_default_cache():
    return _default_cache
