"""Calibrated per-operator statistics.

The paper assumes knowledge of the data arrival rate and uses historical
statistics to estimate cost (section 2.1), calibrating cardinality
estimates from previous executions of the recurring queries (section
3.2).  We reproduce that with a *calibration run*: the plan is executed
once in batch mode (every pace 1) with statistics collection enabled, and
each operator's measured input/output cardinalities -- per query and for
the shared union -- are recorded into a :class:`NodeStats` attached to
the plan node.  Cloned/decomposed plan nodes share the same
:class:`NodeStats` by reference, so decomposition never needs
recalibration.
"""

from ..errors import CostModelError


class NodeStats:
    """Measured full-data statistics of one plan node.

    All cardinalities are measured over one complete batch execution of
    the trigger condition's data (no churn), so they characterize the
    *data*, not any particular pace.
    """

    __slots__ = (
        "kind",
        # source
        "scanned_total",
        "kept_total",
        "kept_per_q",
        # decorations (any node)
        "filter_sel_per_q",
        # join
        "in_left",
        "in_right",
        "in_left_per_q",
        "in_right_per_q",
        "join_out",
        "join_out_per_q",
        # aggregate
        "agg_in",
        "agg_in_per_q",
        "groups_union",
        "groups_per_q",
        "agg_out",
        "has_minmax",
    )

    def __init__(self, kind):
        self.kind = kind
        self.scanned_total = 0.0
        self.kept_total = 0.0
        self.kept_per_q = {}
        self.filter_sel_per_q = {}
        self.in_left = 0.0
        self.in_right = 0.0
        self.in_left_per_q = {}
        self.in_right_per_q = {}
        self.join_out = 0.0
        self.join_out_per_q = {}
        self.agg_in = 0.0
        self.agg_in_per_q = {}
        self.groups_union = 0.0
        self.groups_per_q = {}
        self.agg_out = 0.0
        self.has_minmax = False

    # -- derived quantities -------------------------------------------------

    def filter_selectivity(self, query_id):
        """Fraction of query ``query_id``'s tuples that survive the filter."""
        return self.filter_sel_per_q.get(query_id, 1.0)

    def join_selectivity(self, query_id=None):
        """Output / (|L| * |R|), per query or for the shared union."""
        if query_id is None:
            left, right, out = self.in_left, self.in_right, self.join_out
        else:
            left = self.in_left_per_q.get(query_id, 0.0)
            right = self.in_right_per_q.get(query_id, 0.0)
            out = self.join_out_per_q.get(query_id, 0.0)
        if left <= 0 or right <= 0:
            return 0.0
        return out / (left * right)

    def group_universe(self, query_ids=None):
        """Estimated distinct-group count for a query subset.

        ``None`` means the full shared union.  Subsets are estimated from
        per-query group counts with an independence union, capped by the
        measured union.
        """
        if query_ids is None:
            return max(self.groups_union, 1.0)
        universe = max(self.groups_union, 1.0)
        miss = 1.0
        for qid in query_ids:
            share = min(1.0, self.groups_per_q.get(qid, 0.0) / universe)
            miss *= 1.0 - share
        return max(1.0, universe * (1.0 - miss))

    def require(self, field_hint):
        """Raise if this stats object was never calibrated."""
        if self.kind is None:
            raise CostModelError("node statistics missing (%s)" % field_hint)
        return self

    def __repr__(self):
        return "NodeStats(%s)" % self.kind


def require_stats(node):
    """Fetch ``node.stats`` or fail with a calibration hint."""
    if node.stats is None:
        raise CostModelError(
            "node %r has no calibrated statistics; run "
            "repro.engine.calibrate.calibrate_plan(plan) first" % (node,)
        )
    return node.stats


class EdgeStat:
    """Estimated delta-record flow along one plan edge (or buffer).

    ``total`` counts all delta records (inserts plus deletes, since every
    record costs work downstream), ``deletes`` the deletions among them,
    and ``per_q`` the records valid for each query.  ``uniform`` marks
    base-table edges where every query sees every record.
    """

    __slots__ = ("total", "deletes", "per_q", "uniform")

    def __init__(self, total=0.0, deletes=0.0, per_q=None, uniform=False):
        self.total = float(total)
        self.deletes = float(deletes)
        self.per_q = dict(per_q) if per_q else {}
        self.uniform = uniform

    def query_card(self, query_id):
        if self.uniform:
            return self.total
        return self.per_q.get(query_id, 0.0)

    def scaled(self, factor):
        return EdgeStat(
            self.total * factor,
            self.deletes * factor,
            {q: c * factor for q, c in self.per_q.items()},
            self.uniform,
        )

    def restricted(self, query_ids):
        """The flow of records valid for at least one query in the subset.

        Uses an independence union over per-query fractions of the total
        (exact for base tables and for disjoint/nested predicates it is a
        documented approximation; the paper tolerates inaccurate
        cardinality estimates, section 3.2).
        """
        query_ids = list(query_ids)
        if self.total <= 0 or not query_ids:
            return EdgeStat(0.0, 0.0, {})
        if self.uniform:
            return EdgeStat(
                self.total, self.deletes, {q: self.total for q in query_ids}
            )
        per_q = {q: min(self.query_card(q), self.total) for q in query_ids}
        union = union_estimate(self.total, per_q.values())
        delete_ratio = self.deletes / self.total
        return EdgeStat(union, union * delete_ratio, per_q)

    def add(self, other):
        """Accumulate another edge stat in place (summing flows)."""
        self.total += other.total
        self.deletes += other.deletes
        for q, c in other.per_q.items():
            self.per_q[q] = self.per_q.get(q, 0.0) + c
        return self

    def insert_count(self):
        return max(0.0, self.total - self.deletes)

    def net(self):
        """Net surviving records: inserts minus the deletions they cancel."""
        return max(0.0, self.total - 2.0 * self.deletes)

    def __repr__(self):
        return "EdgeStat(total=%.1f, deletes=%.1f, queries=%d)" % (
            self.total,
            self.deletes,
            len(self.per_q),
        )


def union_estimate(base_total, per_query_cards):
    """Independence-union of per-query subsets of a base population."""
    if base_total <= 0:
        return 0.0
    miss = 1.0
    best = 0.0
    total = 0.0
    for card in per_query_cards:
        card = min(max(card, 0.0), base_total)
        miss *= 1.0 - card / base_total
        best = max(best, card)
        total += card
    union = base_total * (1.0 - miss)
    return min(max(union, best), total if total > 0 else 0.0, base_total)


def perturb_stats(plan, seed=0, low=0.5, high=2.0):
    """Inject multiplicative noise into every node's calibrated statistics.

    Reproduces the paper's omitted inaccurate-cardinality-estimation test
    (section 3.2): each calibrated cardinality/selectivity is scaled by a
    random factor in ``[low, high]`` (selectivities clipped to [0, 1]).
    The optimizer then plans with wrong estimates while execution measures
    the truth.  Statistics objects are mutated in place; re-run
    calibration to restore accurate values.
    """
    import random

    rng = random.Random(seed)

    def factor():
        return rng.uniform(low, high)

    for subplan in plan.subplans:
        for node in subplan.root.walk():
            stats = node.stats
            if stats is None:
                continue
            stats.filter_sel_per_q = {
                qid: min(1.0, sel * factor())
                for qid, sel in stats.filter_sel_per_q.items()
            }
            stats.join_out *= factor()
            stats.join_out_per_q = {
                qid: card * factor() for qid, card in stats.join_out_per_q.items()
            }
            group_factor = factor()
            stats.groups_union = max(1.0, stats.groups_union * group_factor)
            stats.groups_per_q = {
                qid: min(max(1.0, groups * group_factor), stats.groups_union)
                for qid, groups in stats.groups_per_q.items()
            }
    return plan
