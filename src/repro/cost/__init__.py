"""Cost model: calibrated statistics, subplan simulation, memoized plans."""

from .stats import NodeStats, EdgeStat, union_estimate, require_stats, perturb_stats
from .model import (
    CostConfig,
    DEFAULT_COST_CONFIG,
    SubplanSimResult,
    UniformProfile,
    LedgerProfile,
    CollapsingProfile,
    emissions,
    expected_touched,
    simulate_subplan,
)
from .memo import PlanCostModel, CostEvaluation, OptimizationTimeout
from .cache import CalibrationCache, get_default_cache, set_default_cache

__all__ = [
    "NodeStats",
    "EdgeStat",
    "union_estimate",
    "require_stats",
    "perturb_stats",
    "CostConfig",
    "DEFAULT_COST_CONFIG",
    "SubplanSimResult",
    "UniformProfile",
    "LedgerProfile",
    "CollapsingProfile",
    "emissions",
    "expected_touched",
    "simulate_subplan",
    "PlanCostModel",
    "CostEvaluation",
    "OptimizationTimeout",
    "CalibrationCache",
    "get_default_cache",
    "set_default_cache",
]
