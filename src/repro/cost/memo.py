"""Plan-level cost evaluation with memoization (paper Algorithm 1).

Estimating the total work and per-query final work of a pace
configuration simulates every subplan bottom-up: each subplan's simulated
output cardinality feeds its parents.  The estimated results of one
subplan depend only on its *private pace configuration* -- the paces of
the subplan and its descendants -- so each subplan keeps a memo table
keyed by that private configuration (section 3.2).  The greedy pace
search evaluates thousands of neighbouring configurations that differ in
a single pace; with memoization only the changed subplan and its
ancestors are ever re-simulated.

``use_memo=False`` reproduces the baseline that re-simulates every
configuration from scratch (the "iShare (w/o memo)" of Figure 15, which
DNFs at large max paces).
"""

import time

from ..errors import CostModelError
from ..mqo.nodes import SubplanRef, TableRef
from ..obs import OBS
from .model import DEFAULT_COST_CONFIG, UniformProfile, simulate_subplan
from .stats import EdgeStat


class CostEvaluation:
    """Estimated cost of one pace configuration."""

    __slots__ = (
        "total_work",
        "query_final_work",
        "subplan_total",
        "subplan_final",
        "subplan_inputs",
        "subplan_outputs",
    )

    def __init__(self):
        self.total_work = 0.0
        self.query_final_work = {}
        self.subplan_total = {}
        self.subplan_final = {}
        self.subplan_inputs = {}
        self.subplan_outputs = {}

    def __repr__(self):
        return "CostEvaluation(total=%.1f)" % self.total_work


class OptimizationTimeout(CostModelError):
    """Raised when an optimizer exceeds its time budget (the DNF case)."""


class PlanCostModel:
    """Cost model over one :class:`~repro.mqo.nodes.SharedQueryPlan`.

    Nodes must carry calibrated statistics
    (:func:`repro.engine.calibrate.calibrate_plan`).

    Parameters
    ----------
    use_memo:
        enable the per-subplan memo tables of Algorithm 1.
    time_budget:
        optional wall-clock seconds; :class:`OptimizationTimeout` is
        raised from :meth:`evaluate` once exceeded (used to reproduce the
        30-minute DNF cutoff of Figure 15 at benchmark scale).
    """

    def __init__(self, plan, config=None, use_memo=True, time_budget=None):
        self.plan = plan
        self.config = config or DEFAULT_COST_CONFIG
        self.use_memo = use_memo
        self.time_budget = time_budget
        self._deadline = (time.monotonic() + time_budget) if time_budget else None
        self._order = plan.topological_order()
        self._descendants = self._compute_descendants()
        self._memo = {subplan.sid: {} for subplan in self._order}
        self._table_stats = {}
        self._solo_cache = {}
        self._feedback = {}
        self.simulation_count = 0
        self.evaluation_count = 0

    def _compute_descendants(self):
        sets = {}
        for subplan in self._order:  # child-first: children already computed
            acc = {subplan.sid}
            for child in subplan.child_subplans():
                acc |= sets[child.sid]
            sets[subplan.sid] = acc
        return {sid: tuple(sorted(acc)) for sid, acc in sets.items()}

    def reset_deadline(self):
        if self.time_budget:
            self._deadline = time.monotonic() + self.time_budget

    def _check_deadline(self):
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise OptimizationTimeout(
                "optimization exceeded its %.1fs budget" % self.time_budget
            )

    def table_stat(self, name):
        """The arrival profile of a base table (uniform across queries)."""
        profile = self._table_stats.get(name)
        if profile is None:
            table = self.plan.catalog.get(name)
            stat = EdgeStat(
                total=table.log_length(),
                deletes=table.delete_count(),
                uniform=True,
            )
            profile = UniformProfile(stat, granularity=None)
            self._table_stats[name] = profile
        return profile

    def _inputs_for(self, subplan, outputs):
        inputs = {}
        for ref in subplan.source_refs():
            if isinstance(ref, TableRef):
                inputs[ref.key()] = self.table_stat(ref.name)
            elif isinstance(ref, SubplanRef):
                inputs[ref.key()] = outputs[ref.subplan.sid]
            else:
                raise CostModelError("unknown source ref %r" % (ref,))
        return inputs

    # -- Algorithm 1 ---------------------------------------------------------

    def evaluate(self, pace_config, collect_inputs=False):
        """Estimate ``C_T(P)`` and ``C_F(P, q)`` for every query."""
        self._check_deadline()
        self.evaluation_count += 1
        metrics = OBS.metrics if OBS.enabled else None
        if metrics is not None:
            metrics.counter("cost.evaluations").inc()
            if self._deadline is not None:
                metrics.gauge("cost.deadline_headroom_seconds").set(
                    round(self._deadline - time.monotonic(), 4)
                )
        evaluation = CostEvaluation()
        outputs = {}
        for subplan in self._order:
            key = tuple(pace_config[sid] for sid in self._descendants[subplan.sid])
            memo = self._memo[subplan.sid]
            cached = memo.get(key) if self.use_memo else None
            if metrics is not None:
                metrics.counter(
                    "cost.memo.hit" if cached is not None else "cost.memo.miss"
                ).inc()
            if cached is None:
                inputs = self._inputs_for(subplan, outputs)
                sim = simulate_subplan(
                    subplan, pace_config[subplan.sid], inputs, self.config
                )
                self.simulation_count += 1
                cached = (sim.private_total, sim.private_final, sim.out_profile)
                if self.use_memo:
                    memo[key] = cached
                self._check_deadline()
            private_total, private_final, out_profile = cached
            correction = self._feedback.get(subplan.sid)
            if correction is not None:
                private_total *= correction[0]
                private_final *= correction[1]
            outputs[subplan.sid] = out_profile
            evaluation.total_work += private_total
            evaluation.subplan_total[subplan.sid] = private_total
            evaluation.subplan_final[subplan.sid] = private_final
            evaluation.subplan_outputs[subplan.sid] = out_profile
            if collect_inputs:
                evaluation.subplan_inputs[subplan.sid] = self._inputs_for(
                    subplan, outputs
                )
            for qid in subplan.query_ids():
                evaluation.query_final_work[qid] = (
                    evaluation.query_final_work.get(qid, 0.0) + private_final
                )
        for qid in self.plan.query_roots:
            evaluation.query_final_work.setdefault(qid, 0.0)
        return evaluation

    # -- feedback calibration from prior executions -----------------------------

    def apply_feedback(self, run_result, pace_config):
        """Calibrate estimates against a measured execution (section 3.2).

        The paper notes that recurring queries allow calibrating the
        cardinality estimation from previous executions.  This derives a
        per-subplan multiplicative correction of (total, final) work from
        one measured :class:`~repro.engine.metrics.RunResult` under
        ``pace_config`` and applies it to every later :meth:`evaluate`.
        Call with ``run_result=None`` to clear the corrections.
        """
        if run_result is None:
            self._feedback = {}
            return {}
        self._feedback = {}  # measure corrections against raw estimates
        estimate = self.evaluate(pace_config)
        feedback = {}
        for subplan in self.plan.subplans:
            sid = subplan.sid
            est_total = estimate.subplan_total.get(sid, 0.0)
            est_final = estimate.subplan_final.get(sid, 0.0)
            measured_total = run_result.subplan_total_work.get(sid)
            measured_final = run_result.subplan_final_work.get(sid)
            total_factor = (
                measured_total / est_total
                if measured_total and est_total > 0 else 1.0
            )
            final_factor = (
                measured_final / est_final
                if measured_final and est_final > 0 else 1.0
            )
            feedback[sid] = (total_factor, final_factor)
        self._feedback = feedback
        return feedback

    # -- solo (separate, one-batch) estimates ---------------------------------

    def solo_batch(self, query_id):
        """Estimated cost of running ``query_id`` separately in one batch.

        Simulates only the query's subplans, restricted to the query's own
        tuples, with pace 1.  Returns ``(total_work, {sid: work})``.  This
        is the denominator of relative final-work constraints and the
        basis of the per-subplan local constraint fractions (section
        4.1.1).
        """
        cached = self._solo_cache.get(query_id)
        if cached is not None:
            return cached
        outputs = {}
        per_subplan = {}
        for subplan in self.plan.subplans_of_query(query_id):
            inputs = {}
            for ref in subplan.source_refs():
                if isinstance(ref, TableRef):
                    inputs[ref.key()] = self.table_stat(ref.name)
                else:
                    inputs[ref.key()] = outputs[ref.subplan.sid]
            sim = simulate_subplan(
                subplan, 1, inputs, self.config, query_subset=(query_id,)
            )
            outputs[subplan.sid] = sim.out_profile
            per_subplan[subplan.sid] = sim.private_total
        result = (sum(per_subplan.values()), per_subplan)
        self._solo_cache[query_id] = result
        return result

    def absolute_constraints(self, relative_constraints):
        """Translate relative constraints into absolute final-work bounds."""
        absolute = {}
        for qid, relative in relative_constraints.items():
            total, _ = self.solo_batch(qid)
            absolute[qid] = relative * total
        return absolute

    def local_constraints(self, subplan, absolute_constraints):
        """Per-query local final-work constraints of one subplan.

        Each query's absolute constraint is scaled by the fraction of the
        query's solo one-batch work done by this subplan's operators
        (section 4.1.1).
        """
        local = {}
        for qid in subplan.query_ids():
            if qid not in absolute_constraints:
                continue
            total, per_subplan = self.solo_batch(qid)
            if total <= 0:
                local[qid] = absolute_constraints[qid]
                continue
            fraction = per_subplan.get(subplan.sid, 0.0) / total
            local[qid] = absolute_constraints[qid] * fraction
        return local
