"""Plan-level cost evaluation with memoization (paper Algorithm 1).

Estimating the total work and per-query final work of a pace
configuration simulates every subplan bottom-up: each subplan's simulated
output cardinality feeds its parents.  The estimated results of one
subplan depend only on its *private pace configuration* -- the paces of
the subplan and its descendants -- so each subplan keeps a memo table
keyed by that private configuration (section 3.2).  The greedy pace
search evaluates thousands of neighbouring configurations that differ in
a single pace; with memoization only the changed subplan and its
ancestors are ever re-simulated.

``use_memo=False`` reproduces the baseline that re-simulates every
configuration from scratch (the "iShare (w/o memo)" of Figure 15, which
DNFs at large max paces).
"""

import time

from ..errors import CostModelError
from ..mqo.nodes import SubplanRef, TableRef
from ..obs import OBS
from .model import DEFAULT_COST_CONFIG, UniformProfile, simulate_subplan
from .stats import EdgeStat

#: Feedback correction factors are clamped to this range.  A single
#: degenerate measured run (a subplan that happened to do zero work
#: against a positive estimate, or a transient spike) must not zero out
#: or blow up every later estimate the memo serves; within the range the
#: correction is applied exactly as measured.
FEEDBACK_FACTOR_MIN = 0.01
FEEDBACK_FACTOR_MAX = 100.0


def clamp_feedback_factor(factor):
    """Clamp one multiplicative correction into the documented range."""
    return min(FEEDBACK_FACTOR_MAX, max(FEEDBACK_FACTOR_MIN, factor))


class CostEvaluation:
    """Estimated cost of one pace configuration."""

    __slots__ = (
        "total_work",
        "query_final_work",
        "subplan_total",
        "subplan_final",
        "subplan_inputs",
        "subplan_outputs",
    )

    def __init__(self):
        self.total_work = 0.0
        self.query_final_work = {}
        self.subplan_total = {}
        self.subplan_final = {}
        self.subplan_inputs = {}
        self.subplan_outputs = {}

    def __repr__(self):
        return "CostEvaluation(total=%.1f)" % self.total_work


class OptimizationTimeout(CostModelError):
    """Raised when an optimizer exceeds its time budget (the DNF case)."""


class PlanCostModel:
    """Cost model over one :class:`~repro.mqo.nodes.SharedQueryPlan`.

    Nodes must carry calibrated statistics
    (:func:`repro.engine.calibrate.calibrate_plan`).

    Parameters
    ----------
    use_memo:
        enable the per-subplan memo tables of Algorithm 1.
    time_budget:
        optional wall-clock seconds; :class:`OptimizationTimeout` is
        raised from :meth:`evaluate` once exceeded (used to reproduce the
        30-minute DNF cutoff of Figure 15 at benchmark scale).
    """

    def __init__(self, plan, config=None, use_memo=True, time_budget=None):
        self.plan = plan
        self.config = config or DEFAULT_COST_CONFIG
        self.use_memo = use_memo
        self.time_budget = time_budget
        self._deadline = (time.monotonic() + time_budget) if time_budget else None
        self._order = plan.topological_order()
        self._descendants = self._compute_descendants()
        self._memo = {subplan.sid: {} for subplan in self._order}
        self._table_stats = {}
        self._solo_cache = {}
        self._feedback = {}
        self.simulation_count = 0
        self.evaluation_count = 0

    def _compute_descendants(self):
        sets = {}
        for subplan in self._order:  # child-first: children already computed
            acc = {subplan.sid}
            for child in subplan.child_subplans():
                acc |= sets[child.sid]
            sets[subplan.sid] = acc
        return {sid: tuple(sorted(acc)) for sid, acc in sets.items()}

    def reset_deadline(self):
        if self.time_budget:
            self._deadline = time.monotonic() + self.time_budget

    def _check_deadline(self):
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise OptimizationTimeout(
                "optimization exceeded its %.1fs budget" % self.time_budget
            )

    def table_stat(self, name):
        """The arrival profile of a base table (uniform across queries)."""
        profile = self._table_stats.get(name)
        if profile is None:
            table = self.plan.catalog.get(name)
            stat = EdgeStat(
                total=table.log_length(),
                deletes=table.delete_count(),
                uniform=True,
            )
            profile = UniformProfile(stat, granularity=None)
            self._table_stats[name] = profile
        return profile

    def _inputs_for(self, subplan, outputs):
        inputs = {}
        for ref in subplan.source_refs():
            if isinstance(ref, TableRef):
                inputs[ref.key()] = self.table_stat(ref.name)
            elif isinstance(ref, SubplanRef):
                inputs[ref.key()] = outputs[ref.subplan.sid]
            else:
                raise CostModelError("unknown source ref %r" % (ref,))
        return inputs

    # -- Algorithm 1 ---------------------------------------------------------

    def evaluate(self, pace_config, collect_inputs=False):
        """Estimate ``C_T(P)`` and ``C_F(P, q)`` for every query."""
        self._check_deadline()
        self.evaluation_count += 1
        metrics = OBS.metrics if OBS.enabled else None
        if metrics is not None:
            metrics.counter("cost.evaluations").inc()
            if self._deadline is not None:
                metrics.gauge("cost.deadline_headroom_seconds").set(
                    round(self._deadline - time.monotonic(), 4)
                )
        evaluation = CostEvaluation()
        outputs = {}
        for subplan in self._order:
            key = tuple(pace_config[sid] for sid in self._descendants[subplan.sid])
            memo = self._memo[subplan.sid]
            cached = memo.get(key) if self.use_memo else None
            if metrics is not None:
                metrics.counter(
                    "cost.memo.hit" if cached is not None else "cost.memo.miss"
                ).inc()
            if cached is None:
                inputs = self._inputs_for(subplan, outputs)
                sim = simulate_subplan(
                    subplan, pace_config[subplan.sid], inputs, self.config
                )
                self.simulation_count += 1
                cached = (sim.private_total, sim.private_final, sim.out_profile)
                if self.use_memo:
                    memo[key] = cached
                self._check_deadline()
            private_total, private_final, out_profile = cached
            correction = self._feedback.get(subplan.sid)
            if correction is not None:
                private_total *= correction[0]
                private_final *= correction[1]
            outputs[subplan.sid] = out_profile
            evaluation.total_work += private_total
            evaluation.subplan_total[subplan.sid] = private_total
            evaluation.subplan_final[subplan.sid] = private_final
            evaluation.subplan_outputs[subplan.sid] = out_profile
            if collect_inputs:
                evaluation.subplan_inputs[subplan.sid] = self._inputs_for(
                    subplan, outputs
                )
            for qid in subplan.query_ids():
                evaluation.query_final_work[qid] = (
                    evaluation.query_final_work.get(qid, 0.0) + private_final
                )
        for qid in self.plan.query_roots:
            evaluation.query_final_work.setdefault(qid, 0.0)
        return evaluation

    # -- feedback calibration from prior executions -----------------------------

    def apply_feedback(self, run_result, pace_config):
        """Calibrate estimates against a measured execution (section 3.2).

        The paper notes that recurring queries allow calibrating the
        cardinality estimation from previous executions.  This derives a
        per-subplan multiplicative correction of (total, final) work from
        one measured :class:`~repro.engine.metrics.RunResult` under
        ``pace_config`` and applies it to every later :meth:`evaluate`.
        Call with ``run_result=None`` to clear the corrections.

        A subplan *absent* from the measurement (``None``) keeps factor
        1.0; a subplan that measurably did **zero** work against a
        positive estimate is calibrated down (to the clamp floor).  All
        factors are clamped to
        ``[FEEDBACK_FACTOR_MIN, FEEDBACK_FACTOR_MAX]``.
        """
        if run_result is None:
            self._feedback = {}
            return {}
        self._feedback = {}  # measure corrections against raw estimates
        estimate = self.evaluate(pace_config)
        feedback = {}
        for subplan in self.plan.subplans:
            sid = subplan.sid
            est_total = estimate.subplan_total.get(sid, 0.0)
            est_final = estimate.subplan_final.get(sid, 0.0)
            measured_total = run_result.subplan_total_work.get(sid)
            measured_final = run_result.subplan_final_work.get(sid)
            total_factor = (
                clamp_feedback_factor(measured_total / est_total)
                if measured_total is not None and est_total > 0 else 1.0
            )
            final_factor = (
                clamp_feedback_factor(measured_final / est_final)
                if measured_final is not None and est_final > 0 else 1.0
            )
            feedback[sid] = (total_factor, final_factor)
        self._feedback = feedback
        if OBS.enabled:
            # Q-error of the *total-work* estimate: max(f, 1/f) >= 1, the
            # standard symmetric under/over-estimation measure
            qerror = OBS.metrics.histogram("cost.feedback.qerror")
            for sid in sorted(feedback):
                total_factor = feedback[sid][0]
                if total_factor > 0:
                    qerror.observe(max(total_factor, 1.0 / total_factor))
            OBS.metrics.counter("cost.feedback.applications").inc()
        return feedback

    def feedback_factors(self):
        """The live ``{sid: (total_factor, final_factor)}`` corrections.

        A copy of the measured multiplicative corrections currently
        applied to every :meth:`evaluate` -- the regret report's oracle
        re-scores logged pace decisions with exactly these factors.
        """
        return dict(self._feedback)

    def carry_state_from(self, old_model, sid_map, qid_map=None):
        """Warm-start this model from another model across a plan change.

        ``sid_map`` maps this plan's subplan ids to ``old_model``'s for
        subplans that are structurally identical (same operators, same
        query set, children matched) after a churn re-merge; ``qid_map``
        likewise maps this plan's query ids to the old plan's when churn
        renumbered the dense query slots.  Carried per
        matched subplan whose *entire* descendant cone also matched --
        memo keys are private pace configurations over the descendants,
        so they only translate when the cone does:

        * memo rows (Algorithm 1), pace keys re-indexed from the old
          descendant sid order to the new one;
        * feedback correction factors from measured executions;
        * solo one-batch estimates for queries all of whose subplans
          matched.

        Returns the number of memo rows carried over.
        """
        carried = 0
        for new_sid, old_sid in sid_map.items():
            old_desc = old_model._descendants.get(old_sid)
            new_desc = self._descendants.get(new_sid)
            if old_desc is None or new_desc is None:
                continue
            translated = tuple(sid_map.get(d) for d in new_desc)
            if None in translated or sorted(translated) != sorted(old_desc):
                continue
            # position i of a new memo key holds the pace of new_desc[i],
            # which lives at old_desc.index(translated[i]) in an old key
            positions = [old_desc.index(t) for t in translated]
            new_memo = self._memo[new_sid]
            for old_key, value in old_model._memo.get(old_sid, {}).items():
                new_memo[tuple(old_key[p] for p in positions)] = value
                carried += 1
            correction = old_model._feedback.get(old_sid)
            if correction is not None:
                self._feedback[new_sid] = correction
        for qid in self.plan.query_roots:
            new_sids = [s.sid for s in self.plan.subplans_of_query(qid)]
            if any(sid not in sid_map for sid in new_sids):
                continue
            old_qid = qid_map.get(qid) if qid_map is not None else qid
            if old_qid is None:
                continue
            old_entry = old_model._solo_cache.get(old_qid)
            if old_entry is None:
                continue
            total, per_subplan = old_entry
            mapped = {
                sid: per_subplan[sid_map[sid]]
                for sid in new_sids
                if sid_map[sid] in per_subplan
            }
            if len(mapped) == len(per_subplan) == len(new_sids):
                self._solo_cache[qid] = (total, mapped)
        return carried

    # -- solo (separate, one-batch) estimates ---------------------------------

    def solo_batch(self, query_id):
        """Estimated cost of running ``query_id`` separately in one batch.

        Simulates only the query's subplans, restricted to the query's own
        tuples, with pace 1.  Returns ``(total_work, {sid: work})``.  This
        is the denominator of relative final-work constraints and the
        basis of the per-subplan local constraint fractions (section
        4.1.1).
        """
        cached = self._solo_cache.get(query_id)
        if cached is not None:
            return cached
        outputs = {}
        per_subplan = {}
        for subplan in self.plan.subplans_of_query(query_id):
            inputs = {}
            for ref in subplan.source_refs():
                if isinstance(ref, TableRef):
                    inputs[ref.key()] = self.table_stat(ref.name)
                else:
                    inputs[ref.key()] = outputs[ref.subplan.sid]
            sim = simulate_subplan(
                subplan, 1, inputs, self.config, query_subset=(query_id,)
            )
            outputs[subplan.sid] = sim.out_profile
            per_subplan[subplan.sid] = sim.private_total
        result = (sum(per_subplan.values()), per_subplan)
        self._solo_cache[query_id] = result
        return result

    def absolute_constraints(self, relative_constraints):
        """Translate relative constraints into absolute final-work bounds."""
        absolute = {}
        for qid, relative in relative_constraints.items():
            total, _ = self.solo_batch(qid)
            absolute[qid] = relative * total
        return absolute

    def local_constraints(self, subplan, absolute_constraints):
        """Per-query local final-work constraints of one subplan.

        Each query's absolute constraint is scaled by the fraction of the
        query's solo one-batch work done by this subplan's operators
        (section 4.1.1).
        """
        local = {}
        for qid in subplan.query_ids():
            if qid not in absolute_constraints:
                continue
            total, per_subplan = self.solo_batch(qid)
            if total <= 0:
                local[qid] = absolute_constraints[qid]
                continue
            fraction = per_subplan.get(subplan.sid, 0.0) / total
            local[qid] = absolute_constraints[qid] * fraction
        return local


class FeedbackSample:
    """Just the measured per-subplan work :meth:`PlanCostModel.apply_feedback`
    reads -- a :class:`~repro.engine.metrics.RunResult` stand-in for folded
    measurements."""

    __slots__ = ("subplan_total_work", "subplan_final_work")

    def __init__(self, subplan_total_work, subplan_final_work):
        self.subplan_total_work = subplan_total_work
        self.subplan_final_work = subplan_final_work


def fold_run_for_feedback(run_result, measured_paces, sid_origin,
                          tainted_origins, base_paces):
    """Fold a run measured on a decomposed plan back onto the pre-split sids.

    Decomposition renames subplans (``apply_split`` allocates fresh sids
    for every piece), so a measurement taken on the decomposed plan
    cannot feed :meth:`PlanCostModel.apply_feedback` on the next window's
    freshly merged plan directly.  ``sid_origin`` (from
    :class:`~repro.core.decompose.DecompositionOutcome`) maps each
    decomposed sid to the original subplan it carries operators of;
    pieces of one original subplan have their measured work summed back
    together.  Origins in ``tainted_origins`` (single-consumer merges
    folded two originals' operators into one piece, so per-original
    attribution is lost) are dropped -- they degrade to "no measurement"
    and keep correction factor 1.0.

    Returns ``(sample, paces)``: a :class:`FeedbackSample` over original
    sids plus the pace configuration to evaluate it against --
    ``base_paces`` (the pre-decomposition configuration) with each
    surviving origin raised to the eagerest pace any of its pieces ran
    at (a piece's measured work was produced under that piece's pace;
    max is the conservative choice when pieces disagree).
    """
    tainted = set(tainted_origins)
    totals = {}
    finals = {}
    for sid, work in run_result.subplan_total_work.items():
        origin = sid_origin.get(sid, sid)
        if origin not in tainted:
            totals[origin] = totals.get(origin, 0.0) + work
    for sid, work in run_result.subplan_final_work.items():
        origin = sid_origin.get(sid, sid)
        if origin not in tainted:
            finals[origin] = finals.get(origin, 0.0) + work
    paces = dict(base_paces)
    folded = {}
    for sid, pace in measured_paces.items():
        origin = sid_origin.get(sid, sid)
        if origin not in tainted and origin in paces:
            folded[origin] = max(folded.get(origin, 0), pace)
    paces.update(folded)
    return FeedbackSample(totals, finals), paces
