"""Analytic cost simulation of a subplan under a pace.

This implements the *simulated incremental executions* of the paper's
memoization algorithm (section 3.2): to estimate the cost of a subplan
with pace ``k``, take the estimated total input data of the subplan and
simulate ``k`` incremental executions, each processing ``1/k`` of that
input, updating intermediate-state statistics (hash-table sizes, groups
materialized so far) after every execution.  The simulation yields the
subplan's *private total work*, *private final work* (the cost of the
final execution) and an *emission profile* describing its output stream,
which becomes the input of its parent subplans.

Emission profiles and buffer compaction
---------------------------------------
Inter-subplan buffers are compacted: retract/insert churn that cancels
within a consumer's unread window is never processed by the consumer
(matching the physical engine's consolidating reads).  A subplan whose
churn comes from an aggregate therefore looks *cheaper* to a lazy parent
than to an eager one -- the mechanism behind delaying subplans (paper
Figure 3c).  :class:`CollapsingProfile` models this by re-deriving the
aggregate's emissions at the consumer's own window granularity;
:class:`UniformProfile` models churn-free streams (base tables, pure
scan/join pipelines).

Operator models
---------------
* **source**: scans every compacted buffer record in its window, applies
  calibrated per-query filter selectivities, unions survivors under
  independence.
* **join**: symmetric hash join delta model:
  ``out = sel * (dL * |R| + (|L| + dL) * dR)``, with calibrated per-query
  and union selectivities; deletions propagate proportionally.
* **aggregate**: balls-into-bins group-touch model.  With group universe
  ``G``, the expected distinct groups touched by ``n`` records is
  ``G * (1 - (1 - 1/G)^n)``; groups touched for the first time emit one
  insert, groups already emitted emit a retract + insert pair.  This is
  what makes eager execution expensive (paper Figure 1).
* **MIN/MAX rescan**: a deletion that removes the current extremum of its
  group forces a rescan of the group's stored values (section 5.3's Q15
  effect); expected cost is one rescan over the net stored values per
  group receiving deletions, weighted by ``minmax_rescan_factor``.
"""

import math

from .stats import EdgeStat, require_stats, union_estimate


class CostConfig:
    """Tunable constants of the cost model.

    ``execution_overhead`` mirrors the engine's fixed per-execution charge;
    ``minmax_rescan_factor`` is the expected fraction of delete-touched
    groups whose extremum is displaced (monotonically growing aggregates
    displace it nearly every time, which is why Q15 is non-incrementable).

    ``arranged_state`` makes :func:`simulate_subplan` skip the state
    charge of arrangement-eligible join sides (bare base-table scans, see
    :func:`repro.engine.arrangements.arrangeable_side`), modeling a
    deployment that bills shared-index maintenance once instead of once
    per reader.  It defaults to off because the engine's *charged* work
    is arrangement-invariant by contract -- arrangements reduce resident
    state and physical maintenance, not WorkMeter charges -- so the
    default keeps the simulation aligned with what the engine bills.
    Turning it on is the what-if: the split optimizer then sees shared
    base-table join state as free, which shifts sharing benefits.
    """

    __slots__ = ("execution_overhead", "minmax_rescan_factor", "state_factor",
                 "arranged_state")

    def __init__(self, execution_overhead=1.0, minmax_rescan_factor=0.5,
                 state_factor=0.3, arranged_state=False):
        self.execution_overhead = float(execution_overhead)
        self.minmax_rescan_factor = float(minmax_rescan_factor)
        self.state_factor = float(state_factor)
        self.arranged_state = bool(arranged_state)


DEFAULT_COST_CONFIG = CostConfig()


def expected_touched(universe, n):
    """Expected distinct bins hit by ``n`` balls thrown into ``universe`` bins."""
    if universe <= 0 or n <= 0:
        return 0.0
    if universe <= 1:
        return min(1.0, n)
    # universe * (1 - (1 - 1/universe)^n), computed stably
    return -universe * math.expm1(n * math.log1p(-1.0 / universe))


def emissions(universe, seen, n):
    """Aggregate emissions for ``n`` new records after ``seen`` prior ones.

    Returns ``(emitted, retracted)``: groups touched for the first time
    emit one insert; groups that already emitted a row emit a retract +
    insert pair.
    """
    if n <= 0:
        return 0.0, 0.0
    before = expected_touched(universe, seen)
    after = expected_touched(universe, seen + n)
    new_groups = max(0.0, after - before)
    touched_now = expected_touched(universe, n)
    touched_existing = max(0.0, min(touched_now - new_groups, before))
    return new_groups + 2.0 * touched_existing, touched_existing


def _window_bounds(index, pace, granularity):
    """Progress interval ``[t0, t1]`` of one consumer execution.

    Consumers cannot observe finer granularity than the producer's pace:
    window boundaries are quantized down to the producer's execution grid.
    ``granularity=None`` means a continuous stream (base-table arrival).
    """
    if pace < 1:
        raise ValueError("consumer pace must be >= 1, got %r" % (pace,))
    if granularity is None:
        return (index - 1) / pace, index / pace
    if granularity < 1:
        raise ValueError(
            "producer granularity must be >= 1, got %r" % (granularity,)
        )
    lo = (index - 1) * granularity // pace
    hi = index * granularity // pace
    return lo / granularity, hi / granularity


class UniformProfile:
    """A churn-free output stream: records spread uniformly over the window."""

    __slots__ = ("stat", "granularity")

    def __init__(self, stat, granularity=None):
        self.stat = stat
        self.granularity = granularity

    def window(self, index, pace):
        t0, t1 = _window_bounds(index, pace, self.granularity)
        return self.stat.scaled(t1 - t0)

    def total_stat(self):
        return self.stat

    def __repr__(self):
        return "UniformProfile(%r, granularity=%r)" % (self.stat, self.granularity)


class LedgerProfile:
    """Output stream recorded per producer execution (no self-cancellation).

    Join-rooted subplans emit *non-uniformly* over the window -- a fact
    row only matches dimension rows that have already arrived, so output
    arrives superlinearly and the final windows carry well over a uniform
    share.  The ledger keeps the simulated per-execution output stats and
    serves consumer windows by summing the producer executions they
    cover (quantized to the producer's grid).
    """

    __slots__ = ("exec_stats", "granularity", "_cumulative")

    def __init__(self, exec_stats, granularity):
        self.exec_stats = list(exec_stats)
        self.granularity = granularity
        self._cumulative = None

    def window(self, index, pace):
        g = self.granularity
        lo = (index - 1) * g // pace
        hi = index * g // pace
        acc = EdgeStat()
        for position in range(lo, hi):
            acc.add(self.exec_stats[position])
        return acc

    def total_stat(self):
        acc = EdgeStat()
        for stat in self.exec_stats:
            acc.add(stat)
        return acc

    def __repr__(self):
        return "LedgerProfile(%d executions)" % len(self.exec_stats)


class CollapsingProfile:
    """Output stream of a subplan whose churn stems from an aggregate.

    When consumed through a compacted buffer at pace ``k``, the stream
    looks like the anchoring aggregate had emitted at granularity ``k``:
    per window the aggregate's group-touch model is re-applied, so a lazy
    consumer sees (almost) only net rows while an eager one sees the full
    retract/insert churn.  The anchor's *cumulative input series* (one
    entry per producer execution) preserves the non-uniform arrival of
    join-produced input; ``scale_total`` / ``scale_per_q`` account for the
    operators between the aggregate and the subplan's output.
    """

    __slots__ = (
        "universe",
        "series",
        "per_q",
        "scale_total",
        "scale_per_q",
        "granularity",
    )

    def __init__(self, universe, series, per_q, scale_total, scale_per_q,
                 granularity):
        self.universe = max(universe, 1.0)
        #: cumulative anchor input after each producer execution; series[0]=0
        self.series = list(series)
        #: {qid: (universe_q, cumulative_series_q)}
        self.per_q = dict(per_q)
        self.scale_total = scale_total
        self.scale_per_q = dict(scale_per_q)
        self.granularity = granularity

    def window(self, index, pace):
        g = self.granularity
        lo = (index - 1) * g // pace
        hi = index * g // pace
        if hi <= lo:
            return EdgeStat()
        seen = self.series[lo]
        fresh = self.series[hi] - seen
        emitted, retracted = emissions(self.universe, seen, fresh)
        total = emitted * self.scale_total
        deletes = retracted * self.scale_total
        per_q = {}
        for qid, (universe_q, series_q) in self.per_q.items():
            seen_q = series_q[lo]
            fresh_q = series_q[hi] - seen_q
            emitted_q, _ = emissions(universe_q, seen_q, fresh_q)
            card = emitted_q * self.scale_per_q.get(qid, self.scale_total)
            if card > 0:
                per_q[qid] = min(card, total) if total > 0 else card
        return EdgeStat(total, deletes, per_q)

    def total_stat(self):
        """The whole-run flow at the producer's own granularity."""
        acc = EdgeStat()
        for index in range(1, self.granularity + 1):
            acc.add(self.window(index, self.granularity))
        return acc

    def __repr__(self):
        return "CollapsingProfile(U=%.0f, in=%.0f, granularity=%d)" % (
            self.universe,
            self.series[-1] if self.series else 0.0,
            self.granularity,
        )


class SubplanSimResult:
    """Result of simulating one subplan under one pace."""

    __slots__ = ("private_total", "private_final", "out_stat", "out_profile", "works")

    def __init__(self, private_total, private_final, out_stat, out_profile, works):
        self.private_total = private_total
        self.private_final = private_final
        self.out_stat = out_stat
        self.out_profile = out_profile
        self.works = works

    def __repr__(self):
        return "SubplanSimResult(total=%.1f, final=%.1f)" % (
            self.private_total,
            self.private_final,
        )


class _JoinSimState:
    __slots__ = ("left_net", "right_net", "left_q", "right_q")

    def __init__(self):
        self.left_net = 0.0
        self.right_net = 0.0
        self.left_q = {}
        self.right_q = {}


class _AggSimState:
    __slots__ = ("n_union", "n_q", "net_union")

    def __init__(self):
        self.n_union = 0.0
        self.n_q = {}
        self.net_union = 0.0


def simulate_subplan(subplan, pace, input_stats, config=None, query_subset=None):
    """Simulate ``pace`` incremental executions of ``subplan``.

    Parameters
    ----------
    input_stats:
        ``{source_ref_key: EmissionProfile}`` -- the output streams of the
        subplan's source buffers over the whole trigger window.
    query_subset:
        restrict the simulation to these query ids (used by the
        decomposition's local optimization, section 4.1); ``None`` means
        the subplan's full query set.
    """
    config = config or DEFAULT_COST_CONFIG
    if pace < 1:
        # a zero/negative pace would silently simulate zero executions and
        # report a free subplan; fail loudly instead
        raise ValueError(
            "subplan %d pace must be >= 1, got %r" % (subplan.sid, pace)
        )
    mask_queries = set(subplan.query_ids())
    if query_subset is not None:
        mask_queries &= set(query_subset)
    mask_queries = sorted(mask_queries)

    anchor = next(
        (node for node in subplan.root.walk() if node.kind == "aggregate"), None
    )
    anchor_raw = EdgeStat()

    node_states = {}
    works = []
    out_stat = EdgeStat()
    work_box = [0.0]
    exec_box = [0]

    def charge(units):
        work_box[0] += units

    def decorate(node, stat):
        if node.filters:
            stats = require_stats(node)
            charge(stat.total)
            per_q = {}
            for qid in mask_queries:
                card = stat.query_card(qid)
                if card <= 0:
                    continue
                per_q[qid] = card * stats.filter_selectivity(qid)
            total = union_estimate(stat.total, per_q.values())
            delete_ratio = stat.deletes / stat.total if stat.total > 0 else 0.0
            stat = EdgeStat(total, total * delete_ratio, per_q)
        if node.projections:
            charge(stat.total)
        return stat

    def eval_node(node, pace_count):
        if node.kind == "source":
            profile = input_stats.get(node.ref.key())
            if profile is None:
                raise KeyError("no input stats for source %r" % (node.ref,))
            window = profile.window(exec_box[0], pace_count)
            charge(window.total)  # scanning every (compacted) buffer record
            kept = window.restricted(mask_queries)
            return decorate(node, kept)
        if node.kind == "join":
            left = eval_node(node.children[0], pace_count)
            right = eval_node(node.children[1], pace_count)
            return decorate(node, _join_model(node, left, right))
        child = eval_node(node.children[0], pace_count)
        raw = _aggregate_model(node, child)
        if node is anchor:
            anchor_raw.add(raw)
        return decorate(node, raw)

    def _join_model(node, left, right):
        stats = require_stats(node)
        state = node_states.get(node.uid)
        if state is None:
            state = node_states[node.uid] = _JoinSimState()
        charge(left.total + right.total)
        sel_union = stats.join_selectivity()
        base = sel_union * (
            left.total * state.right_net
            + (state.left_net + left.total) * right.total
        )
        per_q = {}
        for qid in mask_queries:
            sel_q = stats.join_selectivity(qid)
            if sel_q <= 0:
                continue
            l_new = left.query_card(qid)
            r_new = right.query_card(qid)
            l_old = state.left_q.get(qid, 0.0)
            r_old = state.right_q.get(qid, 0.0)
            out_q = sel_q * (l_new * r_old + (l_old + l_new) * r_new)
            if out_q > 0:
                per_q[qid] = out_q
        total = max(base, max(per_q.values(), default=0.0))
        total = min(total, sum(per_q.values())) if per_q else total
        # contribution-weighted delete fraction
        f_left = left.deletes / left.total if left.total > 0 else 0.0
        f_right = right.deletes / right.total if right.total > 0 else 0.0
        left_part = left.total * (state.right_net + right.total)
        right_part = state.left_net * right.total
        parts = left_part + right_part
        if parts > 0:
            delete_fraction = (left_part * f_left + right_part * f_right) / parts
        else:
            delete_fraction = 0.0
        charge(total)
        # install the new deltas into the simulated hash tables (net sizes)
        left_keep = left.net() / left.total if left.total > 0 else 0.0
        right_keep = right.net() / right.total if right.total > 0 else 0.0
        state.left_net += left.net()
        state.right_net += right.net()
        for qid in mask_queries:
            state.left_q[qid] = (
                state.left_q.get(qid, 0.0) + left.query_card(qid) * left_keep
            )
            state.right_q[qid] = (
                state.right_q.get(qid, 0.0) + right.query_card(qid) * right_keep
            )
        return EdgeStat(total, total * delete_fraction, per_q)

    def _aggregate_model(node, child):
        stats = require_stats(node)
        state = node_states.get(node.uid)
        if state is None:
            state = node_states[node.uid] = _AggSimState()
        charge(child.total)
        universe = stats.group_universe(mask_queries)
        n = child.total
        emit_union, retract_union = emissions(universe, state.n_union, n)
        per_q = {}
        for qid in mask_queries:
            n_q = child.query_card(qid)
            if n_q <= 0:
                continue
            universe_q = max(1.0, stats.groups_per_q.get(qid, stats.groups_union))
            agg_universes[(node.uid, qid)] = universe_q
            emit_q, _ = emissions(universe_q, state.n_q.get(qid, 0.0), n_q)
            per_q[qid] = min(emit_q, emit_union) if emit_union > 0 else emit_q
            state.n_q[qid] = state.n_q.get(qid, 0.0) + n_q
        charge(emit_union)
        if stats.has_minmax and child.deletes > 0:
            # A deletion that removes the current extremum of its group
            # forces a rescan of the group's stored value multiset.  With
            # monotone update streams the extremum-holding group is hit in
            # nearly every execution, so we charge one rescan per group
            # that receives deletions, over the *net* values stored so far
            # (retract/insert pairs cancel in the multiset).
            groups_hit = expected_touched(universe, child.deletes)
            net_values = max(state.net_union + child.net(), 0.0)
            # group_universe clamps to >= 1.0, but guard explicitly so a
            # future stats change cannot reintroduce a division by zero
            values_per_group = net_values / universe if universe > 0 else 0.0
            charge(config.minmax_rescan_factor * groups_hit * values_per_group)
        state.n_union += n
        state.net_union += child.net()
        return EdgeStat(emit_union, retract_union, per_q)

    agg_universes = {}

    arranged_sides = {}
    if config.arranged_state and config.state_factor:
        from ..engine.arrangements import arrangeable_side

        for node in subplan.root.walk():
            if node.kind == "join":
                arranged_sides[node.uid] = (
                    arrangeable_side(node, 0) is not None,
                    arrangeable_side(node, 1) is not None,
                )

    def _state_charge():
        """Per-execution state-store maintenance (mirrors the engine)."""
        if not config.state_factor:
            return 0.0
        entries = 0.0
        for uid, state in node_states.items():
            if isinstance(state, _JoinSimState):
                left_shared, right_shared = arranged_sides.get(
                    uid, (False, False)
                )
                if not left_shared:
                    entries += state.left_net
                if not right_shared:
                    entries += state.right_net
            else:
                # one state entry per (group, query) pair, like the engine
                for qid, n_q in state.n_q.items():
                    universe_q = agg_universes.get((uid, qid), 1.0)
                    entries += expected_touched(universe_q, n_q)
        return config.state_factor * entries

    exec_outputs = []
    anchor_series = [0.0]
    anchor_series_q = {}
    latency_work = 0.0
    for index in range(1, pace + 1):
        exec_box[0] = index
        work_box[0] = 0.0
        execution_out = eval_node(subplan.root, pace)
        out_stat.add(execution_out)
        exec_outputs.append(execution_out)
        latency_work = work_box[0] + config.execution_overhead
        works.append(latency_work + _state_charge())
        if anchor is not None and anchor.uid in node_states:
            anchor_state = node_states[anchor.uid]
            anchor_series.append(anchor_state.n_union)
            for qid, n_q in anchor_state.n_q.items():
                anchor_series_q.setdefault(qid, [0.0] * index)
                anchor_series_q[qid].append(n_q)
            for qid, series in anchor_series_q.items():
                while len(series) < index + 1:
                    series.append(series[-1])

    out_profile = _build_profile(
        subplan, pace, anchor, anchor_raw, node_states, out_stat, mask_queries,
        exec_outputs, anchor_series, anchor_series_q,
    )
    return SubplanSimResult(
        sum(works), latency_work, out_stat, out_profile, works
    )


def _build_profile(subplan, pace, anchor, anchor_raw, node_states, out_stat,
                   mask_queries, exec_outputs, anchor_series, anchor_series_q):
    """Derive the output emission profile of a simulated subplan."""
    if anchor is None or anchor.uid not in node_states or anchor_raw.total <= 0:
        return LedgerProfile(exec_outputs, pace)
    state = node_states[anchor.uid]
    stats = anchor.stats
    universe = stats.group_universe(mask_queries)
    per_q = {}
    scale_per_q = {}
    scale_total = out_stat.total / anchor_raw.total
    for qid in mask_queries:
        in_q = state.n_q.get(qid, 0.0)
        if in_q <= 0:
            continue
        universe_q = max(1.0, stats.groups_per_q.get(qid, stats.groups_union))
        series_q = anchor_series_q.get(qid, [0.0] * (pace + 1))
        per_q[qid] = (universe_q, series_q)
        raw_q = anchor_raw.per_q.get(qid, 0.0)
        if raw_q > 0:
            scale_per_q[qid] = out_stat.per_q.get(qid, 0.0) / raw_q
    return CollapsingProfile(
        universe, anchor_series, per_q, scale_total, scale_per_q, pace
    )
