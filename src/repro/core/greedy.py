"""Greedy pace-configuration search (paper sections 3.2 and 4.2).

The *ascending* search starts at batch execution ``P_1`` and repeatedly
raises the pace of the subplan with the highest incrementability until
every query meets its final-work constraint or every pace hits the max
pace ``J``.  Candidate moves that would make a parent subplan eagerer
than one of its children are filtered out.

``groups`` ties several subplans to a single pace: Share-Uniform assigns
one pace per connected shared plan, and NoShare-Uniform one pace per
query, both expressed as groups over the same search.

The *descending* search is the corrected-pace algorithm of section 4.2:
starting from a configuration at least as eager as the original, it
repeatedly lowers the pace of the subplan with the *lowest*
incrementability -- the one whose eagerness buys the least -- as long as
all constraints remain satisfied.
"""

from ..errors import OptimizationError
from ..obs import OBS
from .incrementability import INFINITE, constraints_met, incrementability, unmet_queries
from .pace import batch_configuration, with_pace


def _score_field(score):
    """JSON-safe incrementability value (infinity degrades to a string)."""
    return "inf" if score == INFINITE else round(score, 6)


class PaceSearchResult:
    """Outcome of a greedy search."""

    __slots__ = ("pace_config", "evaluation", "iterations", "met_constraints")

    def __init__(self, pace_config, evaluation, iterations, met_constraints):
        self.pace_config = pace_config
        self.evaluation = evaluation
        self.iterations = iterations
        self.met_constraints = met_constraints

    def __repr__(self):
        return "PaceSearchResult(total=%.1f, iterations=%d, met=%s)" % (
            self.evaluation.total_work,
            self.iterations,
            self.met_constraints,
        )


class PaceSearch:
    """Greedy ascending pace search over one plan's cost model."""

    def __init__(self, cost_model, constraints, max_pace, groups=None):
        self.cost_model = cost_model
        self.plan = cost_model.plan
        self.constraints = dict(constraints)
        self.max_pace = max_pace
        if groups is None:
            groups = [[subplan.sid] for subplan in self.plan.subplans]
        self.groups = [tuple(group) for group in groups]
        self._validate_groups()
        self._children = {
            subplan.sid: [child.sid for child in subplan.child_subplans()]
            for subplan in self.plan.subplans
        }
        self._group_queries = []
        for group in self.groups:
            mask = 0
            for sid in group:
                mask |= self.plan.subplan_by_id(sid).query_mask
            self._group_queries.append(mask)

    def _validate_groups(self):
        covered = [sid for group in self.groups for sid in group]
        expected = sorted(subplan.sid for subplan in self.plan.subplans)
        if sorted(covered) != expected:
            raise OptimizationError(
                "pace groups must partition the subplans: %r vs %r"
                % (sorted(covered), expected)
            )

    def _candidate(self, pace_config, group_index):
        """``(config, None)`` with ``group``'s pace raised, or ``(None, reason)``."""
        group = self.groups[group_index]
        candidate = dict(pace_config)
        for sid in group:
            new_pace = candidate[sid] + 1
            if new_pace > self.max_pace:
                return None, "at_max_pace"
            candidate[sid] = new_pace
        for sid in group:
            for child_sid in self._children[sid]:
                if candidate[child_sid] < candidate[sid]:
                    return None, "parent_order"
        return candidate, None

    def find(self, initial=None):
        """Run the greedy loop; returns a :class:`PaceSearchResult`."""
        pace_config = dict(initial) if initial else batch_configuration(self.plan)
        evaluation = self.cost_model.evaluate(pace_config)
        iterations = 0
        declog = OBS.declog if OBS.enabled else None
        start_us = OBS.tracer.now_us() if OBS.enabled else 0.0
        while True:
            if constraints_met(evaluation, self.constraints):
                return self._finish(
                    pace_config, evaluation, iterations, True, declog, start_us
                )
            if all(pace_config[sid] >= self.max_pace for sid in pace_config):
                return self._finish(
                    pace_config, evaluation, iterations, False, declog, start_us
                )
            unmet = unmet_queries(evaluation, self.constraints)
            unmet_mask = 0
            for qid in unmet:
                unmet_mask |= 1 << qid
            best = None
            best_index = None
            candidates = []  # (index, score, extra) of evaluated neighbours
            skipped = {"met_queries": 0, "at_max_pace": 0, "parent_order": 0}
            for index in range(len(self.groups)):
                # only eagerness that can still help an unmet query is
                # worth buying; groups whose queries all meet their
                # constraints are left at their current pace
                if not self._group_queries[index] & unmet_mask:
                    skipped["met_queries"] += 1
                    continue
                candidate, reason = self._candidate(pace_config, index)
                if candidate is None:
                    skipped[reason] += 1
                    continue
                candidate_eval = self.cost_model.evaluate(candidate)
                inc = incrementability(candidate_eval, evaluation, self.constraints)
                extra = candidate_eval.total_work - evaluation.total_work
                score = (inc, -extra)
                if declog is not None:
                    candidates.append((index, score, extra))
                if best is None or score > best[0]:
                    best = (score, candidate, candidate_eval)
                    best_index = index
            if best is None:
                if declog is not None:
                    declog.log(
                        "pace_exhausted", iteration=iterations,
                        unmet_queries=list(unmet), skipped=dict(skipped),
                    )
                return self._finish(
                    pace_config, evaluation, iterations, False, declog, start_us
                )
            score, pace_config, evaluation = best
            iterations += 1
            if declog is not None:
                self._log_move(
                    declog, iterations, best_index, score, pace_config,
                    evaluation, unmet, candidates, skipped,
                )

    def _log_move(self, declog, iteration, group_index, score, pace_config,
                  evaluation, unmet, candidates, skipped):
        """One accepted ascending move plus its outscored alternatives."""
        group = self.groups[group_index]
        for index, cand_score, extra in candidates:
            if index == group_index:
                continue
            declog.log(
                "pace_reject", iteration=iteration, reason="outscored",
                group=list(self.groups[index]),
                incrementability=_score_field(cand_score[0]),
                extra_work=round(extra, 4),
            )
        declog.log(
            "pace_move", iteration=iteration, group=list(group),
            pace=pace_config[group[0]],
            incrementability=_score_field(score[0]),
            extra_work=round(-score[1], 4),
            total_work=round(evaluation.total_work, 4),
            unmet_queries=list(unmet), skipped=dict(skipped),
        )

    def _finish(self, pace_config, evaluation, iterations, met, declog, start_us):
        if declog is not None:
            declog.log(
                "pace_search_done", iterations=iterations, met=met,
                total_work=round(evaluation.total_work, 4),
                paces=dict(pace_config),
            )
        if OBS.enabled:
            OBS.tracer.complete("optimize.pace_search", start_us, {
                "iterations": iterations, "met": met,
                "groups": len(self.groups),
            })
        return PaceSearchResult(pace_config, evaluation, iterations, met)


def decrease_paces(cost_model, constraints, initial, keep_met=True):
    """Descending correction of an eager configuration (section 4.2).

    Repeatedly lowers the pace of the subplan with the lowest
    incrementability -- i.e. the subplan whose laziness saves the most
    total work per unit of final work given up -- while every query keeps
    meeting its constraint (when ``keep_met``; if the initial
    configuration already misses constraints, moves may not increase the
    missed final work of any unmet query).
    """
    plan = cost_model.plan
    parents = {
        subplan.sid: [parent.sid for parent in plan.parents_of(subplan)]
        for subplan in plan.subplans
    }
    pace_config = dict(initial)
    evaluation = cost_model.evaluate(pace_config)
    initially_met = constraints_met(evaluation, constraints)
    declog = OBS.declog if OBS.enabled else None
    while True:
        best = None
        for subplan in plan.subplans:
            sid = subplan.sid
            new_pace = pace_config[sid] - 1
            if new_pace < 1:
                continue
            if any(pace_config[p] > new_pace for p in parents[sid]):
                continue
            candidate = with_pace(pace_config, sid, new_pace)
            candidate_eval = cost_model.evaluate(candidate)
            saved = evaluation.total_work - candidate_eval.total_work
            if saved <= 0:
                continue
            if keep_met and initially_met:
                if not constraints_met(candidate_eval, constraints):
                    continue
            else:
                # never make any query's missed final work worse
                worse = any(
                    candidate_eval.query_final_work.get(q, 0.0)
                    > max(constraints[q], evaluation.query_final_work.get(q, 0.0))
                    for q in constraints
                )
                if worse:
                    continue
            # lowest incrementability of the *current* config relative to
            # the lazier candidate: benefit lost per work saved
            inc = incrementability(evaluation, candidate_eval, constraints)
            score = (inc, -saved)
            if best is None or score < best[0]:
                best = (score, candidate, candidate_eval, sid)
        if best is None:
            if declog is not None:
                declog.log(
                    "pace_decrease_done",
                    total_work=round(evaluation.total_work, 4),
                    paces=dict(pace_config),
                )
            return pace_config, evaluation
        score, pace_config, evaluation, moved_sid = best
        if declog is not None:
            declog.log(
                "pace_decrease", sid=moved_sid, pace=pace_config[moved_sid],
                incrementability=_score_field(score[0]),
                work_saved=round(-score[1], 4),
                total_work=round(evaluation.total_work, 4),
            )
