"""iShare core: incrementability, pace search, subplan decomposition."""

from .pace import (
    batch_configuration,
    uniform_configuration,
    with_pace,
    is_eagerer_or_equal,
    validate_parent_child,
    can_increase,
    can_decrease,
)
from .incrementability import (
    benefit,
    incrementability,
    bounded_final_work,
    constraints_met,
    unmet_queries,
)
from .greedy import PaceSearch, PaceSearchResult, decrease_paces
from .split import LocalSplitOptimizer, SplitDecision, set_partitions
from .regenerate import apply_split
from .partial import partial_cut_candidates, bfs_order
from .decompose import decompose_full_plan, DecompositionOutcome, DecompositionAction
from .optimizer import (
    OptimizerConfig,
    OptimizationResult,
    optimize_ishare,
    optimize_noshare_uniform,
    optimize_noshare_nonuniform,
    optimize_share_uniform,
    reference_absolute_constraints,
)

__all__ = [
    "batch_configuration",
    "uniform_configuration",
    "with_pace",
    "is_eagerer_or_equal",
    "validate_parent_child",
    "can_increase",
    "can_decrease",
    "benefit",
    "incrementability",
    "bounded_final_work",
    "constraints_met",
    "unmet_queries",
    "PaceSearch",
    "PaceSearchResult",
    "decrease_paces",
    "LocalSplitOptimizer",
    "SplitDecision",
    "set_partitions",
    "apply_split",
    "partial_cut_candidates",
    "bfs_order",
    "decompose_full_plan",
    "DecompositionOutcome",
    "DecompositionAction",
    "OptimizerConfig",
    "OptimizationResult",
    "optimize_ishare",
    "optimize_noshare_uniform",
    "optimize_noshare_nonuniform",
    "optimize_share_uniform",
    "reference_absolute_constraints",
]
