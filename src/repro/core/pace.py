"""Pace configurations.

A *pace configuration* maps every subplan id to its pace: the number of
incremental executions over the trigger window (section 2.2).  ``P_1``
(all ones) is batch execution.  The engine requires a parent subplan's
pace to be no larger than any of its children's.
"""

from ..errors import OptimizationError


def batch_configuration(plan):
    """``P_1``: every subplan at pace 1 (pure batch execution)."""
    return {subplan.sid: 1 for subplan in plan.subplans}


def uniform_configuration(plan, pace):
    """Every subplan at the same pace."""
    return {subplan.sid: pace for subplan in plan.subplans}


def with_pace(pace_config, sid, pace):
    """A copy of ``pace_config`` with subplan ``sid`` set to ``pace``."""
    updated = dict(pace_config)
    updated[sid] = pace
    return updated


def is_eagerer_or_equal(eager, lazy):
    """True iff every pace in ``eager`` is >= the matching pace in ``lazy``."""
    return all(eager[sid] >= pace for sid, pace in lazy.items())


def validate_parent_child(plan, pace_config):
    """Raise unless parent paces never exceed child paces."""
    for subplan in plan.subplans:
        pace = pace_config[subplan.sid]
        for child in subplan.child_subplans():
            if pace_config[child.sid] < pace:
                raise OptimizationError(
                    "parent subplan %d pace %d exceeds child %d pace %d"
                    % (subplan.sid, pace, child.sid, pace_config[child.sid])
                )


def can_increase(plan, pace_config, sid, max_pace):
    """True if raising ``sid``'s pace by one keeps the configuration legal."""
    subplan = plan.subplan_by_id(sid)
    new_pace = pace_config[sid] + 1
    if new_pace > max_pace:
        return False
    return all(
        pace_config[child.sid] >= new_pace for child in subplan.child_subplans()
    )


def can_decrease(plan, pace_config, sid):
    """True if lowering ``sid``'s pace by one keeps the configuration legal."""
    new_pace = pace_config[sid] - 1
    if new_pace < 1:
        return False
    subplan = plan.subplan_by_id(sid)
    return all(
        pace_config[parent.sid] <= new_pace for parent in plan.parents_of(subplan)
    )
