"""Pace configurations.

A *pace configuration* maps every subplan id to its pace: the number of
incremental executions over the trigger window (section 2.2).  ``P_1``
(all ones) is batch execution.  The engine requires a parent subplan's
pace to be no larger than any of its children's.

Pace configurations are only comparable when they describe the *same*
plan: after decomposition the subplan-id set changes, so helpers that
look paces up by sid raise a descriptive
:class:`~repro.errors.OptimizationError` (instead of a bare ``KeyError``)
when asked about a subplan the configuration does not cover.
"""

from ..errors import OptimizationError


def batch_configuration(plan):
    """``P_1``: every subplan at pace 1 (pure batch execution)."""
    return {subplan.sid: 1 for subplan in plan.subplans}


def uniform_configuration(plan, pace):
    """Every subplan at the same pace."""
    return {subplan.sid: pace for subplan in plan.subplans}


def _pace_of(pace_config, sid, what="pace configuration"):
    """Look up one pace; descriptive error on a missing subplan id."""
    try:
        return pace_config[sid]
    except KeyError:
        raise OptimizationError(
            "%s has no pace for subplan %r (covers sids %s); "
            "was it built for a different (e.g. pre-decomposition) plan?"
            % (what, sid, sorted(pace_config) or "<none>")
        ) from None


def with_pace(pace_config, sid, pace):
    """A copy of ``pace_config`` with subplan ``sid`` set to ``pace``.

    ``sid`` must already be covered -- silently *adding* a subplan would
    mask a configuration built for the wrong plan.
    """
    if sid not in pace_config:
        raise OptimizationError(
            "cannot set pace for unknown subplan %r (configuration covers "
            "sids %s)" % (sid, sorted(pace_config) or "<none>")
        )
    updated = dict(pace_config)
    updated[sid] = pace
    return updated


def is_eagerer_or_equal(eager, lazy):
    """True iff every pace in ``eager`` is >= the matching pace in ``lazy``.

    Raises :class:`OptimizationError` when the two configurations cover
    different subplan-id sets (e.g. comparing a pre-decomposition
    configuration with a post-decomposition one) -- such configurations
    describe different plans and are not comparable pace-by-pace.
    """
    if set(eager) != set(lazy):
        only_eager = sorted(set(eager) - set(lazy))
        only_lazy = sorted(set(lazy) - set(eager))
        raise OptimizationError(
            "pace configurations cover different subplan-id sets and are "
            "not comparable (only in eager: %s; only in lazy: %s); did a "
            "decomposition change the plan between them?"
            % (only_eager or "-", only_lazy or "-")
        )
    return all(eager[sid] >= pace for sid, pace in lazy.items())


def validate_parent_child(plan, pace_config):
    """Raise unless parent paces never exceed child paces."""
    for subplan in plan.subplans:
        pace = _pace_of(pace_config, subplan.sid)
        for child in subplan.child_subplans():
            if _pace_of(pace_config, child.sid) < pace:
                raise OptimizationError(
                    "parent subplan %d pace %d exceeds child %d pace %d"
                    % (subplan.sid, pace, child.sid, pace_config[child.sid])
                )


def _subplan_of(plan, sid):
    """Resolve a subplan id; descriptive error when the plan lacks it."""
    try:
        return plan.subplan_by_id(sid)
    except Exception:
        raise OptimizationError(
            "plan has no subplan %r (has sids %s); pace helpers must be "
            "called with the plan the configuration was built for"
            % (sid, sorted(s.sid for s in plan.subplans))
        ) from None


def can_increase(plan, pace_config, sid, max_pace):
    """True if raising ``sid``'s pace by one keeps the configuration legal."""
    subplan = _subplan_of(plan, sid)
    new_pace = _pace_of(pace_config, sid) + 1
    if new_pace > max_pace:
        return False
    return all(
        _pace_of(pace_config, child.sid) >= new_pace
        for child in subplan.child_subplans()
    )


def can_decrease(plan, pace_config, sid):
    """True if lowering ``sid``'s pace by one keeps the configuration legal."""
    new_pace = _pace_of(pace_config, sid) - 1
    if new_pace < 1:
        return False
    subplan = _subplan_of(plan, sid)
    return all(
        _pace_of(pace_config, parent.sid) <= new_pace
        for parent in plan.parents_of(subplan)
    )
