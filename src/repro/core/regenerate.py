"""Plan regeneration after decomposing a shared subplan (section 4.2).

Replacing a shared subplan with per-partition copies can break the
engine's requirement that a subplan's query set subsume its parents':
a parent spanning two partitions cannot consume either partition's buffer
alone.  Such parents are split along the partition boundaries, recursively
upward, until the requirement holds (Figure 8, middle).  Afterwards,
newly created subplans left with exactly one consumer are merged into
that consumer, removing the now-pointless materialization (Figure 8,
right: Subplan_1b + Subplan_4b -> Subplan_14b).

The function also derives the *initial* pace configuration of the new
plan per section 4.2: every new subplan inherits the pace of the subplan
it derives from, and merged subplans take the larger of the two -- a
configuration at least as eager as the original, which the descending
search then corrects.
"""

from ..errors import OptimizationError
from ..mqo.nodes import SharedQueryPlan, Subplan, SubplanRef
from ..obs import OBS
from ..relational import bitvec


class SplitLineage:
    """Correspondence from post-surgery subplan ids back to the originals.

    ``origin`` maps every sid the surgery created to the sid of the
    input-plan subplan whose operators it carries; untouched sids are
    absent (look up with ``origin.get(sid, sid)``).  ``tainted`` collects
    original sids whose measured work can no longer be attributed
    one-to-one: a single-consumer merge folds a child's operators into
    its parent's piece, so both originals are tainted.  Seeding
    ``origin`` before :func:`apply_split` (partial cuts pre-map their
    top/bottom pieces) makes the surgery compose through the seed.
    """

    __slots__ = ("origin", "tainted")

    def __init__(self, origin=None, tainted=None):
        self.origin = dict(origin or {})
        self.tainted = set(tainted or ())

    def resolve(self, sid):
        return self.origin.get(sid, sid)

    def compose(self, step):
        """Lineage of ``self`` (original -> mid) followed by ``step``
        (mid -> new), both read new-to-old."""
        merged = SplitLineage(self.origin, self.tainted)
        for new_sid, mid_sid in step.origin.items():
            merged.origin[new_sid] = self.resolve(mid_sid)
        merged.tainted |= {self.resolve(sid) for sid in step.tainted}
        return merged


def apply_split(plan, old_paces, target_sid, partitions, lineage=None):
    """Decompose subplan ``target_sid`` into ``partitions`` (qid tuples).

    Returns ``(new_plan, initial_paces)``.  The input ``plan`` is left
    untouched; all surgery happens on a clone.  When a
    :class:`SplitLineage` is passed, every piece the surgery creates and
    every single-consumer merge it performs is recorded there.
    """
    target_check = plan.subplan_by_id(target_sid)
    covered = sorted(qid for part in partitions for qid in part)
    if covered != sorted(target_check.query_ids()):
        raise OptimizationError(
            "partitions %r do not cover subplan %d's queries %r"
            % (partitions, target_sid, target_check.query_ids())
        )
    if len(partitions) < 2:
        raise OptimizationError("a split needs at least two partitions")

    work = plan.clone()
    initial_paces = dict(old_paces)
    state = _RewriteState(work, initial_paces, lineage)
    state.split(
        work.subplan_by_id(target_sid), [tuple(part) for part in partitions],
        reason="decomposition",
    )
    _merge_single_consumer_chains(work, initial_paces, lineage)
    new_plan = SharedQueryPlan(work.catalog, work.subplans, work.query_roots, work.queries)
    return new_plan, initial_paces


class _RewriteState:
    """Carries the mutable plan and pace bookkeeping through the recursion."""

    def __init__(self, work, initial_paces, lineage=None):
        self.work = work
        self.initial_paces = initial_paces
        self.lineage = lineage

    def split(self, subplan, partitions, reason="parent_subsumption"):
        """Split ``subplan`` along ``partitions``; returns aligned pieces."""
        work = self.work
        parents = work.parents_of(subplan)
        inherited_pace = self.initial_paces.pop(subplan.sid)
        if OBS.enabled:
            OBS.declog.log(
                "repair_split", sid=subplan.sid, reason=reason,
                partitions=[list(part) for part in partitions],
                inherited_pace=inherited_pace,
            )

        pieces = []
        for part in partitions:
            keep = set(part)
            piece = Subplan(
                work.next_sid(),
                subplan.root.clone(keep_queries=keep),
                bitvec.mask_of(part),
                label="%s/%s" % (subplan.label, "+".join("q%d" % q for q in part)),
            )
            self.initial_paces[piece.sid] = inherited_pace
            if self.lineage is not None:
                self.lineage.origin[piece.sid] = self.lineage.resolve(subplan.sid)
            pieces.append((keep, piece))

        work.subplans.remove(subplan)
        work.subplans.extend(piece for _, piece in pieces)
        for qid, root in list(work.query_roots.items()):
            if root is subplan:
                work.query_roots[qid] = next(
                    piece for keep, piece in pieces if qid in keep
                )

        for parent in parents:
            parent_qids = set(parent.query_ids())
            overlaps = [
                (keep & parent_qids, piece)
                for keep, piece in pieces
                if keep & parent_qids
            ]
            if len(overlaps) == 1:
                _retarget_refs(parent.root, subplan.sid, overlaps[0][1])
            else:
                parent_parts = [tuple(sorted(qids)) for qids, _ in overlaps]
                parent_pieces = self.split(parent, parent_parts)
                for (_, source_piece), (_, parent_piece) in zip(overlaps, parent_pieces):
                    _retarget_refs(parent_piece.root, subplan.sid, source_piece)
        return pieces


def _retarget_refs(root, old_sid, new_subplan):
    for node in root.walk():
        if node.kind == "source" and isinstance(node.ref, SubplanRef):
            if node.ref.subplan.sid == old_sid:
                node.ref = SubplanRef(new_subplan)


def _merge_single_consumer_chains(work, initial_paces, lineage=None):
    """Inline subplans whose buffer has exactly one consumer.

    Mergeable when: not a query root, exactly one parent, equal query
    masks, referenced by exactly one undecorated source leaf of that
    parent.  The merged subplan keeps the larger of the two paces
    (section 4.2, step 2).
    """
    changed = True
    while changed:
        changed = False
        for child in list(work.subplans):
            if any(root is child for root in work.query_roots.values()):
                continue
            parents = work.parents_of(child)
            if len(parents) != 1:
                continue
            parent = parents[0]
            if parent.query_mask != child.query_mask:
                continue
            leaves = [
                node
                for node in parent.root.source_nodes()
                if isinstance(node.ref, SubplanRef) and node.ref.subplan is child
            ]
            if len(leaves) != 1:
                continue
            leaf = leaves[0]
            if leaf.filters or leaf.projections:
                continue
            if leaf is parent.root:
                parent.root = child.root
            else:
                _replace_child(parent.root, leaf, child.root)
            work.subplans.remove(child)
            child_pace = initial_paces.pop(child.sid)
            initial_paces[parent.sid] = max(initial_paces[parent.sid], child_pace)
            if lineage is not None:
                lineage.tainted.add(lineage.resolve(child.sid))
                lineage.tainted.add(lineage.resolve(parent.sid))
            if OBS.enabled:
                OBS.declog.log(
                    "repair_merge", child_sid=child.sid, parent_sid=parent.sid,
                    merged_pace=initial_paces[parent.sid],
                )
            changed = True
            break


def _replace_child(root, old_node, new_node):
    for node in root.walk():
        for index, child in enumerate(node.children):
            if child is old_node:
                node.children[index] = new_node
                return
    raise OptimizationError("node to replace not found in subplan tree")
