"""Applying decomposition to the full plan (paper section 4.4).

After the greedy search fixes a nonuniform pace configuration, iShare
walks the shared subplans from parents to children and, for each one,
proposes a split (greedy clustering or brute force over the local
optimization of section 4.1), regenerates the plan (section 4.2), derives
a corrected, lazier pace configuration with the descending search, and
adopts the new plan iff its estimated total work is lower.  When the full
split is rejected, partial decomposition candidates (section 4.3) are
tried as a fallback.
"""

import logging

from ..cost.memo import PlanCostModel
from ..obs import OBS
from ..relational import bitvec
from .greedy import decrease_paces
from .partial import partial_cut_candidates
from .regenerate import SplitLineage, apply_split
from .split import LocalSplitOptimizer

logger = logging.getLogger(__name__)


def total_missed_final_work(evaluation, constraints):
    """Sum of constraint violations: how infeasible a configuration is."""
    return sum(
        max(0.0, evaluation.query_final_work.get(qid, 0.0) - bound)
        for qid, bound in constraints.items()
    )


def _improves(new_eval, old_eval, constraints, epsilon=1e-6):
    """Feasibility-first acceptance (the paper's optimization objective).

    The problem statement minimizes total work *subject to* the final-work
    constraints, so a candidate that reduces the total missed final work
    is adopted even at higher total work; with equal feasibility, lower
    total work wins.
    """
    new_missed = total_missed_final_work(new_eval, constraints)
    old_missed = total_missed_final_work(old_eval, constraints)
    if new_missed < old_missed - epsilon:
        return True
    if new_missed > old_missed + epsilon:
        return False
    return new_eval.total_work < old_eval.total_work - epsilon


class DecompositionAction:
    """Record of one adopted decomposition step (for diagnostics)."""

    __slots__ = ("target_sid", "kind", "partitions", "work_before", "work_after")

    def __init__(self, target_sid, kind, partitions, work_before, work_after):
        self.target_sid = target_sid
        self.kind = kind
        self.partitions = partitions
        self.work_before = work_before
        self.work_after = work_after

    def __repr__(self):
        return "DecompositionAction(sp%d %s %s: %.1f -> %.1f)" % (
            self.target_sid,
            self.kind,
            [list(p) for p in self.partitions],
            self.work_before,
            self.work_after,
        )


class DecompositionOutcome:
    """The final plan, paces and evaluation after full-plan decomposition.

    ``sid_origin`` maps each sid of the (possibly rewritten) output plan
    to the input-plan sid whose operators it carries (identity entries
    omitted; look up with ``sid_origin.get(sid, sid)``), composed across
    every adopted surgery step.  ``tainted_origins`` holds input sids
    whose work can no longer be attributed one-to-one because a
    regeneration merge combined two originals' operators.  Together they
    let measured per-subplan work on the output plan be folded back onto
    the input plan's sids (:func:`repro.cost.memo.fold_run_for_feedback`).
    """

    __slots__ = ("plan", "pace_config", "evaluation", "cost_model", "actions",
                 "sid_origin", "tainted_origins")

    def __init__(self, plan, pace_config, evaluation, cost_model, actions,
                 sid_origin=None, tainted_origins=None):
        self.plan = plan
        self.pace_config = pace_config
        self.evaluation = evaluation
        self.cost_model = cost_model
        self.actions = actions
        self.sid_origin = dict(sid_origin or {})
        self.tainted_origins = set(tainted_origins or ())


def decompose_full_plan(plan, pace_config, absolute_constraints, max_pace,
                        cost_config=None, use_brute_force=False,
                        enable_partial=True, cost_model=None):
    """Run section 4.4 over the whole plan.

    ``cost_model`` may pass in the model already built for the greedy
    search so its memo tables are reused for the initial evaluation.
    """
    current_plan = plan
    current_paces = dict(pace_config)
    model = cost_model or PlanCostModel(current_plan, cost_config)
    evaluation = model.evaluate(current_paces)
    actions = []
    lineage = SplitLineage()  # cumulative, relative to the input plan
    declog = OBS.declog if OBS.enabled else None
    start_us = OBS.tracer.now_us() if OBS.enabled else 0.0

    worklist = [
        subplan.sid
        for subplan in reversed(current_plan.topological_order())
        if bitvec.popcount(subplan.query_mask) > 1
    ]
    while worklist:
        sid = worklist.pop(0)
        target = _find_subplan(current_plan, sid)
        if target is None or bitvec.popcount(target.query_mask) < 2:
            continue
        candidate = _try_subplan(
            current_plan, current_paces, model, evaluation, sid,
            absolute_constraints, max_pace, cost_config,
            use_brute_force, enable_partial,
        )
        if candidate is None:
            if declog is not None:
                declog.log("decompose_reject", sid=sid, reason="no_split")
            continue
        new_plan, new_paces, new_model, new_eval, action, step_lineage = candidate
        if not _improves(new_eval, evaluation, absolute_constraints):
            if declog is not None:
                declog.log(
                    "decompose_reject", sid=sid, reason="not_improving",
                    kind=action.kind,
                    work_before=round(evaluation.total_work, 4),
                    work_after=round(new_eval.total_work, 4),
                )
            continue
        action.work_before = evaluation.total_work
        action.work_after = new_eval.total_work
        actions.append(action)
        logger.debug(
            "decomposition adopted: subplan %d %s, work %.1f -> %.1f",
            sid, action.kind, action.work_before, action.work_after,
        )
        if declog is not None:
            declog.log(
                "decompose_adopt", sid=sid, kind=action.kind,
                partitions=[list(p) for p in action.partitions],
                work_before=round(action.work_before, 4),
                work_after=round(action.work_after, 4),
            )
        current_plan, current_paces = new_plan, new_paces
        model, evaluation = new_model, new_eval
        lineage = lineage.compose(step_lineage)
        # newly created shared pieces may decompose further
        fresh = [
            subplan.sid
            for subplan in reversed(current_plan.topological_order())
            if bitvec.popcount(subplan.query_mask) > 1
            and subplan.sid not in worklist
            and subplan.sid != sid
        ]
        worklist = fresh + [s for s in worklist if s in {p.sid for p in current_plan.subplans}]
    if OBS.enabled:
        OBS.tracer.complete("optimize.decompose", start_us, {
            "adopted": len(actions),
            "total_work": round(evaluation.total_work, 2),
        })
    return DecompositionOutcome(
        current_plan, current_paces, evaluation, model, actions,
        sid_origin=lineage.origin, tainted_origins=lineage.tainted,
    )


def _find_subplan(plan, sid):
    for subplan in plan.subplans:
        if subplan.sid == sid:
            return subplan
    return None


def _try_subplan(plan, paces, model, evaluation, sid, absolute_constraints,
                 max_pace, cost_config, use_brute_force, enable_partial):
    """Best decomposition candidate for one subplan, or None."""
    target = plan.subplan_by_id(sid)
    inputs_eval = model.evaluate(paces, collect_inputs=True)
    input_stats = inputs_eval.subplan_inputs[sid]
    local = model.local_constraints(target, absolute_constraints)
    splitter = LocalSplitOptimizer(target, input_stats, local, max_pace, cost_config)
    decision = splitter.brute_force() if use_brute_force else splitter.cluster()

    if decision.is_split():
        parts = [part for part, _ in decision.partitions]
        lineage = SplitLineage()
        new_plan, initial = apply_split(plan, paces, sid, parts, lineage=lineage)
        new_model = PlanCostModel(new_plan, cost_config)
        new_paces, new_eval = decrease_paces(
            new_model, absolute_constraints, initial
        )
        action = DecompositionAction(sid, "unshare", parts, 0.0, 0.0)
        return new_plan, new_paces, new_model, new_eval, action, lineage

    if not enable_partial:
        return None
    return _try_partial(
        plan, paces, sid, absolute_constraints, max_pace, cost_config,
        use_brute_force, evaluation,
    )


def _try_partial(plan, paces, sid, absolute_constraints, max_pace,
                 cost_config, use_brute_force, evaluation):
    """Partial-decomposition fallback (section 4.3)."""
    best = None
    for cut_plan, top_sid, bottom_sids in partial_cut_candidates(plan, sid):
        cut_paces = dict(paces)
        for bottom_sid in bottom_sids:
            cut_paces[bottom_sid] = paces[sid]
        cut_model = PlanCostModel(cut_plan, cost_config)
        cut_eval = cut_model.evaluate(cut_paces, collect_inputs=True)
        top = cut_plan.subplan_by_id(top_sid)
        local = cut_model.local_constraints(top, absolute_constraints)
        splitter = LocalSplitOptimizer(
            top, cut_eval.subplan_inputs[top_sid], local, max_pace, cost_config
        )
        decision = splitter.brute_force() if use_brute_force else splitter.cluster()
        if not decision.is_split():
            continue
        parts = [part for part, _ in decision.partitions]
        # the vertical cut carved sid into top + bottoms: pre-seed the
        # lineage so pieces of the top piece resolve back to sid
        lineage = SplitLineage(
            origin={top_sid: sid, **{b: sid for b in bottom_sids}}
        )
        new_plan, initial = apply_split(
            cut_plan, cut_paces, top_sid, parts, lineage=lineage
        )
        new_model = PlanCostModel(new_plan, cost_config)
        new_paces, new_eval = decrease_paces(new_model, absolute_constraints, initial)
        if not _improves(new_eval, evaluation, absolute_constraints):
            continue
        if best is None or _improves(new_eval, best[3], absolute_constraints):
            action = DecompositionAction(sid, "partial", parts, 0.0, 0.0)
            best = (new_plan, new_paces, new_model, new_eval, action, lineage)
    return best
