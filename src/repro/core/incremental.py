"""Incremental re-optimization of a live shared plan under query churn.

The paper optimizes a fixed batch of scheduled queries once; a
long-running service (:mod:`repro.service`) sees queries register and
deregister at runtime.  Rebuilding and recalibrating the whole plan on
every churn event wastes exactly the work sharing is supposed to save, so
this module re-runs the MQO merge and then *carries over* everything the
churn did not invalidate:

1. :func:`match_subplans` pairs the freshly merged plan's subplans with
   the previous plan's wherever the operator tree, decorations and query
   set are identical (children matched first, so the pairing respects the
   DAG).  Registering or deregistering one query only perturbs the
   subplans serving that query; everything else matches.
2. :func:`merge_with_carry` transfers calibrated node statistics onto
   matched subplans, scopes fresh calibration to the *unmatched* ones
   (the downward closure executes as a temporary plan, exactly the
   plan-repair trick :mod:`repro.core.regenerate` uses for surgery), and
   warm-starts the new cost model's memo, feedback and solo state via
   :meth:`repro.cost.memo.PlanCostModel.carry_state_from`.
3. :func:`carry_paces` + :func:`incremental_pace_search` seed the greedy
   ascending search with the previous configuration (matched subplans
   keep their pace, fresh ones start at batch pace) and let the
   descending correction relax what churn made too eager -- a
   subplan-scoped re-search instead of a from-scratch rebuild.
"""

from ..cost.cache import _node_signature, _remap_mask
from ..cost.memo import PlanCostModel
from ..engine.calibrate import calibrate_plan
from ..mqo.merge import MQOOptimizer
from ..mqo.nodes import SharedQueryPlan
from ..obs import OBS
from .greedy import PaceSearch, decrease_paces


class MergeOutcome:
    """A freshly merged plan plus everything carried over from its
    predecessor."""

    __slots__ = ("plan", "model", "matched", "fresh_sids", "memo_rows_carried")

    def __init__(self, plan, model, matched, fresh_sids, memo_rows_carried):
        self.plan = plan
        self.model = model
        #: {new sid: previous-plan sid} for structurally identical subplans
        self.matched = matched
        #: new sids with no predecessor (scoped calibration ran for these)
        self.fresh_sids = fresh_sids
        self.memo_rows_carried = memo_rows_carried

    def __repr__(self):
        return "MergeOutcome(%d subplans, %d matched, %d fresh)" % (
            len(self.plan.subplans), len(self.matched), len(self.fresh_sids)
        )


def match_subplans(old_plan, new_plan, qid_map=None):
    """``{new_sid: old_sid}`` for subplans identical across a re-merge.

    Two subplans match when their operator trees -- structure,
    decorations *and* query sets -- are identical and all their child
    subplans matched (child-first traversal).  The node signature is the
    calibration cache's (:func:`repro.cost.cache._node_signature`), with
    the new plan's child refs rewritten through the matches found so far
    so sid renumbering across merges cannot break the comparison.

    ``qid_map`` translates *new*-plan query ids into old-plan ones; the
    service renumbers external queries onto dense bitvector slots, so a
    deregistration shifts every later query's slot even though the
    queries themselves are unchanged.  New subplans whose ids all map are
    compared in the old id space; a subplan serving an unmapped (newly
    arrived) query matches nothing, which is exactly right -- its query
    set did change.
    """
    old_identity = {subplan.sid: subplan.sid for subplan in old_plan.subplans}
    old_index = {}
    for subplan in old_plan.topological_order():
        key = (subplan.query_mask, _node_signature(subplan.root, old_identity))
        old_index.setdefault(key, []).append(subplan.sid)
    matches = {}
    for subplan in new_plan.topological_order():
        child_map = {}
        unmatched_child = False
        for child in subplan.child_subplans():
            mapped = matches.get(child.sid)
            if mapped is None:
                unmatched_child = True
                break
            child_map[child.sid] = mapped
        if unmatched_child:
            continue
        key = (
            _remap_mask(subplan.query_mask, qid_map),
            _node_signature(subplan.root, child_map, qid_map),
        )
        bucket = old_index.get(key)
        if bucket:
            matches[subplan.sid] = bucket.pop(0)
    return matches


def _transfer_stats(new_root, old_root):
    """Copy calibrated statistics between structurally identical trees."""
    new_root.stats = old_root.stats
    for new_child, old_child in zip(new_root.children, old_root.children):
        _transfer_stats(new_child, old_child)


def scoped_calibration_plan(plan, fresh_sids):
    """A temporary plan over the downward closure of ``fresh_sids``.

    The subset shares ``plan``'s actual :class:`Subplan` objects, so
    calibrating it attaches statistics to the real nodes; query roots are
    empty because only per-node statistics are wanted, and matched
    descendants are included only as inputs of the fresh subplans.
    Returns ``None`` when nothing is fresh.
    """
    if not fresh_sids:
        return None
    needed = set()

    def need(subplan):
        if subplan.sid not in needed:
            needed.add(subplan.sid)
            for child in subplan.child_subplans():
                need(child)

    for subplan in plan.subplans:
        if subplan.sid in fresh_sids:
            need(subplan)
    subset = [s for s in plan.subplans if s.sid in needed]
    return SharedQueryPlan(plan.catalog, subset, {}, {})


def merge_with_carry(catalog, queries, config, old_plan=None, old_model=None,
                     qid_map=None):
    """Merge ``queries`` into a shared plan, carrying prior optimizer state.

    ``qid_map`` translates the new batch's query ids to the old plan's
    (see :func:`match_subplans`); omit it when ids are stable.  Returns a
    :class:`MergeOutcome`; with no prior plan this degrades to a plain
    build + full calibration (the bootstrap path).
    """
    plan = MQOOptimizer(catalog, config.min_shared_operators).build_shared_plan(
        queries
    )
    matched = {} if old_plan is None else match_subplans(old_plan, plan, qid_map)
    fresh = sorted(s.sid for s in plan.subplans if s.sid not in matched)
    if matched:
        old_by_sid = {s.sid: s for s in old_plan.subplans}
        for new_sid, old_sid in matched.items():
            _transfer_stats(
                plan.subplan_by_id(new_sid).root, old_by_sid[old_sid].root
            )
    scope = scoped_calibration_plan(plan, set(fresh))
    if scope is not None:
        calibrate_plan(scope, config.stream_config)
    model = PlanCostModel(
        plan, config.cost_config, use_memo=config.use_memo,
        time_budget=config.time_budget,
    )
    carried = (
        model.carry_state_from(old_model, matched, qid_map)
        if old_model else 0
    )
    if OBS.enabled:
        OBS.declog.log(
            "service_plan_update",
            subplans=len(plan.subplans),
            reused=sorted(matched),
            recalibrated=list(fresh),
            memo_rows_carried=carried,
        )
    return MergeOutcome(plan, model, matched, fresh, carried)


def carry_paces(plan, matched, old_paces, max_pace):
    """Initial pace configuration after churn: matched subplans keep their
    previous pace, fresh ones start at batch pace 1.

    The mix can violate the parent-order invariant (a carried-over eager
    parent above a fresh batch-pace child), so parents are lowered to
    their children's pace in child-first order before the search sees the
    configuration.
    """
    old_paces = old_paces or {}
    paces = {}
    for subplan in plan.subplans:
        old_sid = matched.get(subplan.sid)
        pace = old_paces.get(old_sid, 1) if old_sid is not None else 1
        paces[subplan.sid] = max(1, min(int(pace), max_pace))
    for subplan in plan.topological_order():  # children fixed before parents
        for child in subplan.child_subplans():
            paces[subplan.sid] = min(paces[subplan.sid], paces[child.sid])
    return paces


def incremental_pace_search(model, constraints, initial, max_pace):
    """Warm-started ascending search plus descending correction.

    Starting from ``initial`` (see :func:`carry_paces`) the ascending
    search only touches groups serving still-unmet queries -- the
    subplan-scoped part -- and the descending pass then gives back
    eagerness the departed or arrived queries no longer justify.
    Returns ``(pace_config, evaluation, iterations)``.
    """
    search = PaceSearch(model, constraints, max_pace)
    found = search.find(initial=initial)
    paces, evaluation = decrease_paces(model, constraints, found.pace_config)
    return paces, evaluation, found.iterations
