"""End-to-end optimizers: iShare and the section 5.2 baselines.

Every optimizer takes the query batch plus per-query *relative* final-work
constraints, builds its plan shape, calibrates statistics (one batch run,
standing in for the historical statistics of recurring queries), and
searches a pace configuration:

* **NoShare-Uniform** -- each query is one separate subplan with one pace.
* **NoShare-Nonuniform** -- each query cut at blocking operators, one pace
  per part (Tang et al. [44] adapted).
* **Share-Uniform** -- the MQO shared plan, one pace per connected shared
  plan (the whole plan moves to meet its lowest constraint).
* **iShare** -- the MQO shared plan with per-subplan paces (section 3) and
  optional subplan decomposition (section 4).

For apples-to-apples comparisons all approaches should receive the same
``absolute_constraints`` (computed once from a reference cost model);
otherwise each computes its own from its calibrated statistics.
"""

import logging
import time

from ..cost.memo import PlanCostModel
from ..cost.model import CostConfig
from ..engine.calibrate import calibrate_plan
from ..engine.stream import StreamConfig
from ..mqo.merge import MQOOptimizer, build_blocking_cut_plan, build_unshared_plan
from ..obs import OBS
from .decompose import decompose_full_plan
from .greedy import PaceSearch

logger = logging.getLogger(__name__)


class OptimizerConfig:
    """Shared knobs of all optimizers."""

    def __init__(self, max_pace=100, stream_config=None, cost_config=None,
                 use_memo=True, enable_unshare=True, enable_partial=True,
                 brute_force_split=False, min_shared_operators=1,
                 time_budget=None, stats_noise_seed=None):
        self.max_pace = max_pace
        self.stream_config = stream_config or StreamConfig()
        self.cost_config = cost_config or CostConfig(
            execution_overhead=self.stream_config.execution_overhead,
            state_factor=self.stream_config.state_factor,
        )
        self.use_memo = use_memo
        self.enable_unshare = enable_unshare
        self.enable_partial = enable_partial
        self.brute_force_split = brute_force_split
        self.min_shared_operators = min_shared_operators
        self.time_budget = time_budget
        #: when set, calibrated statistics are perturbed with this seed --
        #: the paper's (omitted) inaccurate-cardinality-estimation test
        self.stats_noise_seed = stats_noise_seed

    def replace(self, **overrides):
        """A copy of this config with ``overrides`` applied.

        Every attribute is carried over verbatim before the overrides, so
        a field added to ``__init__`` is never silently dropped (the
        hazard of hand-copied reconstructions).  Unknown names raise
        :class:`TypeError`.
        """
        unknown = [name for name in overrides if name not in self.__dict__]
        if unknown:
            raise TypeError(
                "unknown OptimizerConfig field(s): %s" % ", ".join(sorted(unknown))
            )
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone.__dict__.update(overrides)
        return clone


class OptimizationResult:
    """A chosen plan + pace configuration, with optimizer diagnostics."""

    def __init__(self, approach, plan, pace_config, evaluation, cost_model,
                 absolute_constraints, optimization_seconds, diagnostics=None):
        self.approach = approach
        self.plan = plan
        self.pace_config = pace_config
        self.evaluation = evaluation
        self.cost_model = cost_model
        self.absolute_constraints = absolute_constraints
        self.optimization_seconds = optimization_seconds
        self.diagnostics = diagnostics or {}

    def __repr__(self):
        return "OptimizationResult(%s, est_total=%.1f, opt=%.2fs)" % (
            self.approach,
            self.evaluation.total_work,
            self.optimization_seconds,
        )


def _report(result):
    """Shared logging/metrics epilogue of every optimizer."""
    logger.info(
        "%s optimized in %.3fs: est. total work %.1f, %d subplans",
        result.approach, result.optimization_seconds,
        result.evaluation.total_work, len(result.plan.subplans),
    )
    if OBS.enabled:
        OBS.metrics.counter("optimizer.runs", approach=result.approach).inc()
        OBS.metrics.histogram("optimizer.seconds").observe(
            result.optimization_seconds
        )
    return result


def _prepare(plan, config):
    """Calibrate a plan's statistics and build its cost model."""
    calibrate_plan(plan, config.stream_config)
    if config.stats_noise_seed is not None:
        from ..cost.stats import perturb_stats

        perturb_stats(plan, seed=config.stats_noise_seed)
    return PlanCostModel(
        plan,
        config.cost_config,
        use_memo=config.use_memo,
        time_budget=config.time_budget,
    )


def _resolve_constraints(cost_model, relative_constraints, absolute_constraints):
    if absolute_constraints is not None:
        return dict(absolute_constraints)
    return cost_model.absolute_constraints(relative_constraints)


def reference_absolute_constraints(catalog, queries, relative_constraints, config):
    """Canonical absolute constraints from the unshared plan's estimates.

    The paper defines the relative constraint against "the final work of
    separately executing the query in one batch"; computing it once and
    handing the same absolute numbers to every approach keeps the
    comparison fair.
    """
    plan = build_unshared_plan(catalog, queries)
    cost_model = _prepare(plan, config)
    return cost_model.absolute_constraints(relative_constraints)


def optimize_noshare_uniform(catalog, queries, relative_constraints, config,
                             absolute_constraints=None):
    """One subplan per query, one pace per query (section 5.2)."""
    plan = build_unshared_plan(catalog, queries)
    cost_model = _prepare(plan, config)
    constraints = _resolve_constraints(cost_model, relative_constraints,
                                       absolute_constraints)
    start = time.monotonic()
    cost_model.reset_deadline()
    search = PaceSearch(cost_model, constraints, config.max_pace)
    result = search.find()
    elapsed = time.monotonic() - start
    return _report(OptimizationResult(
        "NoShare-Uniform", plan, result.pace_config, result.evaluation,
        cost_model, constraints, elapsed,
        {"iterations": result.iterations, "met": result.met_constraints},
    ))


def optimize_noshare_nonuniform(catalog, queries, relative_constraints, config,
                                absolute_constraints=None):
    """Per-query subplans at blocking operators, one pace per part."""
    plan = build_blocking_cut_plan(catalog, queries)
    cost_model = _prepare(plan, config)
    constraints = _resolve_constraints(cost_model, relative_constraints,
                                       absolute_constraints)
    start = time.monotonic()
    cost_model.reset_deadline()
    search = PaceSearch(cost_model, constraints, config.max_pace)
    result = search.find()
    elapsed = time.monotonic() - start
    return _report(OptimizationResult(
        "NoShare-Nonuniform", plan, result.pace_config, result.evaluation,
        cost_model, constraints, elapsed,
        {"iterations": result.iterations, "met": result.met_constraints},
    ))


def optimize_share_uniform(catalog, queries, relative_constraints, config,
                           absolute_constraints=None):
    """The MQO shared plan with a single pace per connected shared plan."""
    plan = MQOOptimizer(catalog, config.min_shared_operators).build_shared_plan(queries)
    cost_model = _prepare(plan, config)
    constraints = _resolve_constraints(cost_model, relative_constraints,
                                       absolute_constraints)
    groups = _component_groups(plan)
    start = time.monotonic()
    cost_model.reset_deadline()
    search = PaceSearch(cost_model, constraints, config.max_pace, groups=groups)
    result = search.find()
    elapsed = time.monotonic() - start
    return _report(OptimizationResult(
        "Share-Uniform", plan, result.pace_config, result.evaluation,
        cost_model, constraints, elapsed,
        {"iterations": result.iterations, "met": result.met_constraints,
         "components": len(groups)},
    ))


def _component_groups(plan):
    """Group subplans by the connected component of their query sets."""
    components = plan.connected_components()
    component_of = {}
    for index, component in enumerate(components):
        for qid in component:
            component_of[qid] = index
    groups = {}
    for subplan in plan.subplans:
        index = component_of[subplan.query_ids()[0]]
        groups.setdefault(index, []).append(subplan.sid)
    return list(groups.values())


def optimize_ishare(catalog, queries, relative_constraints, config,
                    absolute_constraints=None):
    """The full iShare pipeline: nonuniform paces + subplan decomposition."""
    plan = MQOOptimizer(catalog, config.min_shared_operators).build_shared_plan(queries)
    cost_model = _prepare(plan, config)
    constraints = _resolve_constraints(cost_model, relative_constraints,
                                       absolute_constraints)
    start = time.monotonic()
    cost_model.reset_deadline()
    search = PaceSearch(cost_model, constraints, config.max_pace)
    result = search.find()
    diagnostics = {
        "iterations": result.iterations,
        "met": result.met_constraints,
        "simulations": cost_model.simulation_count,
        "actions": [],
    }
    plan_out, paces_out, eval_out, model_out = (
        plan, result.pace_config, result.evaluation, cost_model
    )
    if config.enable_unshare:
        outcome = decompose_full_plan(
            plan, result.pace_config, constraints, config.max_pace,
            cost_config=config.cost_config,
            use_brute_force=config.brute_force_split,
            enable_partial=config.enable_partial,
            cost_model=cost_model,
        )
        plan_out, paces_out = outcome.plan, outcome.pace_config
        eval_out, model_out = outcome.evaluation, outcome.cost_model
        diagnostics["actions"] = outcome.actions
    elapsed = time.monotonic() - start
    name = "iShare" if config.enable_unshare else "iShare (w/o unshare)"
    if config.brute_force_split and config.enable_unshare:
        name = "iShare (Brute-Force)"
    return _report(OptimizationResult(
        name, plan_out, paces_out, eval_out, model_out, constraints,
        elapsed, diagnostics,
    ))
