"""The local split optimization of a shared subplan (paper section 4.1).

Given one shared subplan, its estimated input flow under the current pace
configuration, and per-query *local final-work constraints* (each query's
absolute constraint scaled by the share of the query's one-batch work
this subplan performs), find a partitioning ("split") of the subplan's
query set -- plus a pace per partition -- that minimizes the subplan's
*local total work* while each partition's local final work meets the
lowest constraint among its queries.

Key notions (section 4.1.2):

* **selected pace** ``R*`` of a partition: the smallest pace meeting the
  partition's constraint; the laziest legal execution.  Merging two
  partitions can only raise the selected pace (monotonicity), which lets
  the clustering grow paces monotonically while merging bottom-up.
* **sharing benefit** (Eq. 4): the partial-local-total-work saved by
  merging two partitions at their selected paces.

Both the greedy clustering and the exponential brute-force splitter
(every set partition) are provided; Figures 14 and 16 compare them.
"""

from ..cost.model import simulate_subplan
from ..errors import OptimizationError
from ..obs import OBS


class SplitDecision:
    """A chosen split: partitions with their selected paces."""

    __slots__ = ("partitions", "local_total_work", "pairs_evaluated")

    def __init__(self, partitions, local_total_work, pairs_evaluated=0):
        #: list of (sorted qid tuple, selected pace)
        self.partitions = partitions
        self.local_total_work = local_total_work
        self.pairs_evaluated = pairs_evaluated

    def is_split(self):
        """True if the subplan actually decomposes (more than 1 partition)."""
        return len(self.partitions) > 1

    def __repr__(self):
        return "SplitDecision(%s, W=%.1f)" % (
            [(list(p), r) for p, r in self.partitions],
            self.local_total_work,
        )


class LocalSplitOptimizer:
    """Solves the section 4.1 local optimization for one shared subplan."""

    def __init__(self, subplan, input_stats, local_constraints, max_pace,
                 cost_config=None, verify_warm_start=False):
        self.subplan = subplan
        self.input_stats = input_stats
        self.local_constraints = dict(local_constraints)
        self.max_pace = max_pace
        self.cost_config = cost_config
        self.queries = tuple(sorted(subplan.query_ids()))
        self._cost_cache = {}
        self.simulations = 0
        #: re-run every warm-started selected-pace search from pace 1 and
        #: assert the answers match (tests; guards the monotonicity
        #: argument the warm starts rely on)
        self.verify_warm_start = verify_warm_start

    # -- primitive costs ------------------------------------------------------

    def partition_cost(self, partition, pace):
        """``(W_PT, W_F)`` of one partition at one pace (cached)."""
        key = (frozenset(partition), pace)
        cached = self._cost_cache.get(key)
        if cached is None:
            sim = simulate_subplan(
                self.subplan,
                pace,
                self.input_stats,
                self.cost_config,
                query_subset=partition,
            )
            self.simulations += 1
            cached = (sim.private_total, sim.private_final)
            self._cost_cache[key] = cached
        return cached

    def partition_constraint(self, partition):
        """The lowest local constraint among the partition's queries."""
        return min(self.local_constraints.get(qid, float("inf")) for qid in partition)

    def selected_pace(self, partition, start=1):
        """Smallest pace >= ``start`` meeting the partition's constraint.

        Returns ``(pace, W_PT)``.  If even the max pace misses the
        constraint, the max pace is selected (the laziest among the
        equally-infeasible options is never chosen -- eagerest remaining).
        """
        bound = self.partition_constraint(partition)
        for pace in range(start, self.max_pace + 1):
            total, final = self.partition_cost(partition, pace)
            if final <= bound:
                return pace, total
        total, _ = self.partition_cost(partition, self.max_pace)
        return self.max_pace, total

    def is_feasible(self, partition, pace):
        """True if the partition meets its constraint at ``pace``."""
        _, final = self.partition_cost(partition, pace)
        return final <= self.partition_constraint(partition)

    def _selected_pace_warm(self, partition, start):
        """:meth:`selected_pace` from a warm start, optionally verified.

        Monotonicity (section 4.1.2) guarantees a merged partition's
        selected pace is at least each part's selected pace, so scanning
        from ``start = max(parts' paces)`` skips paces that cannot win.
        With :attr:`verify_warm_start` on, the scan is repeated from
        pace 1 and any divergence raises — the assertion that the skip
        changed nothing.
        """
        pace, total = self.selected_pace(partition, start)
        if self.verify_warm_start and start > 1:
            cold = self.selected_pace(partition, 1)
            if cold != (pace, total):
                raise OptimizationError(
                    "warm-started selected pace diverged for %s: "
                    "warm(start=%d) -> %s, cold -> %s"
                    % (list(partition), start, (pace, total), cold)
                )
        return pace, total

    def sharing_benefit(self, part_i, selected_i, part_j, selected_j):
        """Eq. 4: work saved by merging two partitions.

        ``selected_*`` are ``(pace, W_PT)`` pairs; the merged partition's
        selected-pace search starts at the larger of the two paces
        (monotonicity observation, section 4.1.2).
        """
        merged = tuple(sorted(set(part_i) | set(part_j)))
        start = max(selected_i[0], selected_j[0])
        merged_pace, merged_total = self._selected_pace_warm(merged, start)
        gain = selected_i[1] + selected_j[1] - merged_total
        return gain, merged, (merged_pace, merged_total)

    # -- the greedy clustering (section 4.1.2) ---------------------------------

    def cluster(self):
        """Bottom-up clustering by maximal positive sharing benefit."""
        declog = OBS.declog if OBS.enabled else None
        partitions = [(qid,) for qid in self.queries]
        selected = {part: self.selected_pace(part, 1) for part in partitions}
        pairs = 0
        while len(partitions) > 1:
            best = None
            for i in range(len(partitions)):
                for j in range(i + 1, len(partitions)):
                    pairs += 1
                    part_i, part_j = partitions[i], partitions[j]
                    gain, merged, merged_sel = self.sharing_benefit(
                        part_i, selected[part_i], part_j, selected[part_j],
                    )
                    if gain <= 0:
                        continue
                    # feasibility first: never merge a feasible partition
                    # into an infeasible union (the local constraints are
                    # the optimization problem's subject-to clause)
                    either_feasible = self.is_feasible(
                        part_i, selected[part_i][0]
                    ) or self.is_feasible(part_j, selected[part_j][0])
                    if either_feasible and not self.is_feasible(
                        merged, merged_sel[0]
                    ):
                        if declog is not None:
                            declog.log(
                                "cluster_reject", sid=self.subplan.sid,
                                left=list(part_i), right=list(part_j),
                                sharing_benefit=round(gain, 4),
                                reason="merged_infeasible",
                            )
                        continue
                    if best is None or gain > best[0]:
                        best = (gain, i, j, merged, merged_sel)
            if best is None:
                break
            gain, i, j, merged, merged_sel = best
            if declog is not None:
                declog.log(
                    "cluster_merge", sid=self.subplan.sid,
                    left=list(partitions[i]), right=list(partitions[j]),
                    sharing_benefit=round(gain, 4),
                    selected_pace=merged_sel[0],
                )
            removed = {partitions[i], partitions[j]}
            partitions = [p for p in partitions if p not in removed]
            partitions.append(merged)
            selected[merged] = merged_sel
        result = [(part, selected[part][0]) for part in partitions]
        total = sum(selected[part][1] for part in partitions)
        decision = SplitDecision(result, total, pairs)
        self._log_decision(declog, decision, "cluster")
        return decision

    def _log_decision(self, declog, decision, method):
        if declog is not None:
            declog.log(
                "split_decision", sid=self.subplan.sid, method=method,
                partitions=[(list(p), r) for p, r in decision.partitions],
                local_total_work=round(decision.local_total_work, 4),
                pairs_evaluated=decision.pairs_evaluated,
                is_split=decision.is_split(),
            )

    # -- exhaustive splitter (the Brute-force baseline) -------------------------

    def brute_force(self, max_queries=9):
        """Search every set partition of the query set (exponential).

        The Bell number explodes quickly (the point of Figure 16); above
        ``max_queries`` queries the search falls back to the greedy
        clustering so the ablation stays runnable on large shared
        subplans.
        """
        if len(self.queries) > max_queries:
            return self.cluster()
        # every block contains some singleton, and monotonicity puts the
        # block's selected pace at or above each member's singleton pace:
        # warm-start each block's scan from the max member pace instead
        # of re-scanning from pace 1 (``selected_pace(part, 1)``) on
        # every one of the Bell-number partition sets
        singleton_pace = {
            qid: self.selected_pace((qid,), 1)[0] for qid in self.queries
        }
        best = None
        count = 0
        for partition_set in set_partitions(self.queries):
            count += 1
            total = 0.0
            entries = []
            for part in partition_set:
                start = max(singleton_pace[qid] for qid in part)
                pace, work = self._selected_pace_warm(part, start)
                total += work
                entries.append((part, pace))
            if best is None or total < best.local_total_work:
                best = SplitDecision(entries, total, count)
        self._log_decision(OBS.declog if OBS.enabled else None, best, "brute_force")
        return best


def set_partitions(items):
    """Yield every partition of ``items`` as a list of sorted tuples.

    Standard recursive construction: the first item starts a block; each
    later item either joins an existing block or opens a new one.  The
    count is the Bell number -- exponential, which is the point of the
    Figure 16 comparison.
    """
    items = list(items)
    if not items:
        yield []
        return

    def extend(index, blocks):
        if index == len(items):
            yield [tuple(sorted(block)) for block in blocks]
            return
        item = items[index]
        for block in blocks:
            block.append(item)
            yield from extend(index + 1, blocks)
            block.pop()
        blocks.append([item])
        yield from extend(index + 1, blocks)
        blocks.pop()

    yield from extend(1, [[items[0]]])
