"""Incrementability for shared plans (paper section 3.1).

Incrementability quantifies the cost-effectiveness of eager execution:
how much *useful* query-latency reduction an extra unit of total work
buys.  iShare redefines the benefit side for shared execution: once a
query already meets its final-work constraint, further reducing its final
work yields no benefit.  With bounded final work

    C'_F(P, q) = max(L(q), C_F(P, q))

the benefit of moving from configuration ``P_B`` to an eagerer ``P_A`` is

    Benefit(P_A, P_B) = sum_q max(0, C_F(P_B, q) - C'_F(P_A, q))     (Eq. 1)

and incrementability is

    InC(P_A, P_B) = Benefit(P_A, P_B) / (C_T(P_A) - C_T(P_B))        (Eq. 2)
"""

INFINITE = float("inf")

#: work-unit differences below this are treated as zero extra work --
#: dividing by float noise would otherwise rank a no-op configuration as
#: an astronomically incrementable step
_EPSILON = 1e-12


def bounded_final_work(final_work, constraint):
    """``C'_F``: final work clamped from below by the query's constraint."""
    return max(constraint, final_work)


def benefit(eager_eval, lazy_eval, constraints):
    """Eq. 1: total reduction in *missed* final work across all queries."""
    total = 0.0
    for qid, constraint in constraints.items():
        lazy_final = lazy_eval.query_final_work.get(qid, 0.0)
        eager_final = eager_eval.query_final_work.get(qid, 0.0)
        total += max(0.0, lazy_final - bounded_final_work(eager_final, constraint))
    return total


def incrementability(eager_eval, lazy_eval, constraints):
    """Eq. 2 between a lazier configuration and an eagerer neighbour.

    Degenerate denominators are handled explicitly instead of raising:
    a non-positive (or float-noise-sized) work increase with positive
    benefit is a free improvement and scores infinite; with zero benefit
    it scores zero (also the empty-constraints / empty-plan case, where
    the benefit sum is vacuously zero).
    """
    gain = benefit(eager_eval, lazy_eval, constraints)
    extra_work = eager_eval.total_work - lazy_eval.total_work
    if extra_work <= _EPSILON:
        return INFINITE if gain > 0 else 0.0
    return gain / extra_work


def unmet_queries(evaluation, constraints):
    """Queries whose final work still exceeds their constraint."""
    return [
        qid
        for qid, constraint in constraints.items()
        if evaluation.query_final_work.get(qid, 0.0) > constraint
    ]


def constraints_met(evaluation, constraints):
    """True iff every query's final work is within its constraint."""
    return not unmet_queries(evaluation, constraints)
