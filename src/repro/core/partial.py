"""Partial decomposition: splitting only a root-sharing subtree (section 4.3).

Instead of unsharing an entire subplan, iShare can select a subtree that
contains the subplan's root, break the subplan at the subtree's frontier
(the excluded child subtrees become child subplans with the same query
set), and then split only the root subtree.  This keeps expensive lower
operators shared while the cheap-but-eager upper operators unshare.

Candidate subtrees are generated with a breadth-first expansion from the
root: each candidate adds the not-yet-included operator closest to the
root, so the number of candidates is bounded by the operator count of the
subplan (section 4.3).
"""

from collections import deque

from ..mqo.nodes import OpNode, SharedQueryPlan, Subplan, SubplanRef


def bfs_order(root):
    """Nodes of a subplan tree in breadth-first order (root first)."""
    order = []
    queue = deque([root])
    while queue:
        node = queue.popleft()
        order.append(node)
        queue.extend(node.children)
    return order


def partial_cut_candidates(plan, target_sid):
    """Yield ``(new_plan, initial_pace_hint, top_sid, bottom_sids)`` tuples.

    Each candidate is a clone of ``plan`` where the target subplan has
    been broken into a *top* subplan (a BFS prefix of its operators,
    keeping the original sid) and one *bottom* subplan per excluded
    maximal subtree.  ``initial_pace_hint`` maps the new bottom sids to
    the target sid whose pace they inherit.

    Prefixes equal to the whole tree reproduce the original subplan and
    are skipped; prefixes whose top would be a bare source node are
    skipped as degenerate.
    """
    original = plan.subplan_by_id(target_sid)
    operator_count = sum(1 for _ in original.root.walk())
    for prefix_size in range(1, operator_count):
        work = plan.clone()
        target = work.subplan_by_id(target_sid)
        order = bfs_order(target.root)
        prefix = set(id(node) for node in order[:prefix_size])
        if target.root.kind == "source":
            continue
        bottom_sids = []

        def cut(node):
            for index, child in enumerate(node.children):
                if id(child) in prefix:
                    cut(child)
                else:
                    bottom = Subplan(
                        work.next_sid(),
                        child,
                        target.query_mask,
                        label="%s.bottom%d" % (target.label, len(bottom_sids)),
                    )
                    work.subplans.append(bottom)
                    bottom_sids.append(bottom.sid)
                    node.children[index] = OpNode(
                        "source", ref=SubplanRef(bottom),
                        query_mask=target.query_mask,
                    )

        cut(target.root)
        if not bottom_sids:
            continue  # the prefix covered the whole tree: nothing was cut
        new_plan = SharedQueryPlan(
            work.catalog, work.subplans, work.query_roots, work.queries
        )
        yield new_plan, target_sid, bottom_sids
