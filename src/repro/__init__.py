"""repro -- reproduction of iShare (SIGMOD 2021).

Resource-efficient shared query execution via exploiting time slackness:
a shared incremental query engine plus the iShare optimizer that assigns
per-subplan execution paces and selectively decomposes ("unshares")
shared subplans under heterogeneous latency goals.

Quickstart
----------
>>> from repro import (
...     Catalog, Schema, col, agg_sum, PlanBuilder, MQOOptimizer,
...     StreamConfig, PlanExecutor, calibrate_plan,
... )

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

from .errors import (
    ReproError,
    SchemaError,
    ExpressionError,
    PlanError,
    ParseError,
    OptimizationError,
    ExecutionError,
    CostModelError,
)
from .relational import (
    Column,
    Schema,
    Table,
    Catalog,
    Delta,
    DeltaBatch,
    col,
    agg_sum,
    agg_count,
    agg_avg,
    agg_min,
    agg_max,
    INT,
    FLOAT,
    STR,
    DATE,
)
from .logical import PlanBuilder, Query, format_plan
from .mqo import (
    MQOOptimizer,
    SharedQueryPlan,
    Subplan,
    build_unshared_plan,
    build_blocking_cut_plan,
)
from .engine import (
    StreamConfig,
    PlanExecutor,
    calibrate_plan,
    MissedLatencySummary,
    missed_latency,
)
from .cost import PlanCostModel, CostConfig

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SchemaError",
    "ExpressionError",
    "PlanError",
    "ParseError",
    "OptimizationError",
    "ExecutionError",
    "CostModelError",
    "Column",
    "Schema",
    "Table",
    "Catalog",
    "Delta",
    "DeltaBatch",
    "col",
    "agg_sum",
    "agg_count",
    "agg_avg",
    "agg_min",
    "agg_max",
    "INT",
    "FLOAT",
    "STR",
    "DATE",
    "PlanBuilder",
    "Query",
    "format_plan",
    "MQOOptimizer",
    "SharedQueryPlan",
    "Subplan",
    "build_unshared_plan",
    "build_blocking_cut_plan",
    "StreamConfig",
    "PlanExecutor",
    "calibrate_plan",
    "MissedLatencySummary",
    "missed_latency",
    "PlanCostModel",
    "CostConfig",
    "__version__",
]
