"""Canonicalization of logical plans for sharing.

The MQO sharability rule (paper section 2.3) says two subplans are
sharable when they have the same structure and operators *except* that
select and project operators may differ: differing selects become marking
selects (they update the tuple's query bitvector instead of dropping it),
and differing projects are merged by unioning their expressions.

To make that rule mechanical we rewrite every per-query logical tree into
a *canonical tree* whose nodes are only the core operators (scan, join,
aggregate); the selects and projects that sat above each core operator are
folded into two decorations on that node:

``filter``
    a single conjunctive predicate over the core operator's output schema
    (selects above a project are rewritten through the projection by
    substituting column references), and
``projection``
    a single list of ``(alias, expression)`` outputs over the core
    operator's output schema (consecutive projects compose).

Two canonical trees then share exactly when their core structures match,
which is the paper's rule.
"""

from ..errors import PlanError
from ..logical.ops import Scan, Select, Project, Join, Aggregate
from ..relational.expressions import (
    And,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Contains,
    InList,
    Not,
    Or,
    StartsWith,
)


def substitute(expr, mapping):
    """Rewrite ``expr`` replacing each column ref per ``mapping``.

    ``mapping`` maps column names to replacement expressions.  Columns not
    present in the mapping are left untouched (used when pulling a select
    through a projection).
    """
    if isinstance(expr, Col):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping)
        )
    if isinstance(expr, Comparison):
        return Comparison(
            expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping)
        )
    if isinstance(expr, And):
        return And(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Or):
        return Or(substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Not):
        return Not(substitute(expr.child, mapping))
    if isinstance(expr, InList):
        return InList(substitute(expr.child, mapping), expr.values)
    if isinstance(expr, StartsWith):
        return StartsWith(substitute(expr.child, mapping), expr.prefix)
    if isinstance(expr, Contains):
        return Contains(substitute(expr.child, mapping), expr.needle)
    raise PlanError("cannot substitute into expression %r" % (expr,))


class CanonicalNode:
    """One core operator plus its folded select/project decorations.

    Attributes
    ----------
    kind:
        ``"scan"``, ``"join"`` or ``"aggregate"``.
    payload:
        kind-specific: table name for scans; ``(left_keys, right_keys)``
        for joins; ``(group_by, aggs)`` for aggregates.
    children:
        canonical child nodes (0, 1 or 2).
    core_schema:
        output schema of the core operator, before decorations.
    filter:
        optional predicate over ``core_schema`` (None means keep all).
    projection:
        optional ordered ``[(alias, expr)]`` over ``core_schema``
        (None means identity).
    """

    __slots__ = ("kind", "payload", "children", "core_schema", "filter", "projection")

    def __init__(self, kind, payload, children, core_schema, filter_=None, projection=None):
        self.kind = kind
        self.payload = payload
        self.children = tuple(children)
        self.core_schema = core_schema
        self.filter = filter_
        self.projection = projection

    @property
    def schema(self):
        """Output schema after decorations."""
        if self.projection is None:
            return self.core_schema
        from ..relational.schema import Schema, Column

        return Schema(tuple(Column(alias) for alias, _ in self.projection))

    def structure_key(self):
        """Hash-consing key: core structure only, decorations excluded."""
        child_keys = tuple(child.structure_key() for child in self.children)
        if self.kind == "scan":
            return ("scan", self.payload, child_keys)
        if self.kind == "join":
            left_keys, right_keys = self.payload
            return ("join", left_keys, right_keys, child_keys)
        group_by, aggs = self.payload
        agg_sig = tuple(spec.signature() for spec in aggs)
        return ("aggregate", group_by, agg_sig, child_keys)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        deco = []
        if self.filter is not None:
            deco.append("filter")
        if self.projection is not None:
            deco.append("project")
        suffix = ("+" + "+".join(deco)) if deco else ""
        return "CanonicalNode(%s%s)" % (self.kind, suffix)


def _merge_filter(existing, extra):
    if existing is None:
        return extra
    if extra is None:
        return existing
    return And(existing, extra)


def canonicalize(op):
    """Rewrite a logical tree into a canonical tree.

    Selects and projects are folded onto the core operator below them; the
    rewrite preserves semantics exactly (selects commute with projects via
    substitution of projected expressions into the predicate).
    """
    if isinstance(op, Select):
        node = canonicalize(op.child)
        if node.projection is None:
            predicate = op.predicate
        else:
            mapping = {alias: expr for alias, expr in node.projection}
            predicate = substitute(op.predicate, mapping)
        return CanonicalNode(
            node.kind,
            node.payload,
            node.children,
            node.core_schema,
            _merge_filter(node.filter, predicate),
            node.projection,
        )
    if isinstance(op, Project):
        node = canonicalize(op.child)
        if node.projection is None:
            projection = tuple(op.exprs)
        else:
            mapping = {alias: expr for alias, expr in node.projection}
            projection = tuple(
                (alias, substitute(expr, mapping)) for alias, expr in op.exprs
            )
        return CanonicalNode(
            node.kind,
            node.payload,
            node.children,
            node.core_schema,
            node.filter,
            projection,
        )
    if isinstance(op, Scan):
        return CanonicalNode("scan", op.table_name, (), op.schema)
    if isinstance(op, Join):
        left = canonicalize(op.left)
        right = canonicalize(op.right)
        core_schema = left.schema.concat(right.schema)
        return CanonicalNode(
            "join", (op.left_keys, op.right_keys), (left, right), core_schema
        )
    if isinstance(op, Aggregate):
        child = canonicalize(op.child)
        return CanonicalNode(
            "aggregate", (op.group_by, op.aggs), (child,), op.schema
        )
    raise PlanError("cannot canonicalize operator %r" % (op,))


def split_conjuncts(expr):
    """Flatten an AND tree into its conjuncts."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _and_all(conjuncts):
    result = None
    for conjunct in conjuncts:
        result = conjunct if result is None else And(result, conjunct)
    return result


def _absorb_filter(node, conjunct):
    """Merge a predicate (over the node's decorated output) into its filter.

    The node's filter applies over its *core* schema (before the
    projection), so predicates arriving from above are rewritten through
    the projection mapping first.
    """
    if node.projection is not None:
        mapping = {alias: expr for alias, expr in node.projection}
        conjunct = substitute(conjunct, mapping)
    node.filter = _merge_filter(node.filter, conjunct)


def push_down_filters(node):
    """Push filter conjuncts towards the scans (standard pushdown).

    * At a join, a conjunct referencing only one child's output columns
      moves into that child (inner joins commute with selections).
    * At an aggregate, a conjunct referencing only group-by columns moves
      below the aggregate (groups are partitioned by those columns).

    The paper's Spark substrate performs this via Catalyst; without it,
    per-query plans would join unfiltered inputs and the solo-vs-shared
    work disparity that drives the evaluation would disappear.
    """
    if node.filter is not None and node.kind == "join":
        left, right = node.children
        left_width = len(left.schema)
        names = node.core_schema.names()
        left_cols = set(names[:left_width])
        right_cols = set(names[left_width:])
        kept = []
        for conjunct in split_conjuncts(node.filter):
            columns = conjunct.columns()
            if columns <= left_cols:
                _absorb_filter(left, conjunct)
            elif columns <= right_cols:
                _absorb_filter(right, conjunct)
            else:
                kept.append(conjunct)
        node.filter = _and_all(kept)
    elif node.filter is not None and node.kind == "aggregate":
        child = node.children[0]
        group_by, _ = node.payload
        group_cols = set(group_by)
        kept = []
        for conjunct in split_conjuncts(node.filter):
            if conjunct.columns() <= group_cols:
                _absorb_filter(child, conjunct)
            else:
                kept.append(conjunct)
        node.filter = _and_all(kept)
    for child in node.children:
        push_down_filters(child)
    return node


def canonicalize_optimized(op):
    """Canonicalize and push filters down -- the frontend's standard path."""
    return push_down_filters(canonicalize(op))
