"""Shared-plan data structures: operator nodes, subplans, the plan DAG.

A :class:`SharedQueryPlan` is a DAG of :class:`Subplan` objects.  Each
subplan owns a tree of :class:`OpNode` operators; the tree's leaves are
*source* nodes referencing either a base table (:class:`TableRef`) or a
child subplan's materialization buffer (:class:`SubplanRef`).  Subplan
boundaries sit exactly where an operator's output is consumed by more than
one parent (paper section 2.2), and the engine requires the query set of a
subplan to subsume the query sets of its parents.

Per the SharedDB execution model, every node carries per-query decorations:

* ``filters`` -- ``{query_id: predicate}``; a query absent from the dict
  does not filter at this node.  In a shared subplan these act as *marking*
  selects (sigma-star in the paper's Figure 2): they clear the query's bit
  instead of dropping the tuple, unless no query wants the tuple at all.
* ``projections`` -- ``{query_id: ((alias, expr), ...)}``; the physical
  operator computes the *union* of all projections (merged projects union
  their expressions, section 2.3).
"""

from ..errors import PlanError
from ..relational import bitvec
from ..relational.schema import Schema, Column

_NODE_COUNTER = [0]


def _next_uid():
    _NODE_COUNTER[0] += 1
    return _NODE_COUNTER[0]


class TableRef:
    """A source leaf reading a base table's delta log."""

    __slots__ = ("name", "schema")

    def __init__(self, name, schema):
        self.name = name
        self.schema = schema

    def key(self):
        return ("table", self.name)

    def __repr__(self):
        return "TableRef(%r)" % self.name


class SubplanRef:
    """A source leaf reading a child subplan's materialization buffer."""

    __slots__ = ("subplan",)

    def __init__(self, subplan):
        self.subplan = subplan

    @property
    def schema(self):
        return self.subplan.output_schema

    def key(self):
        return ("subplan", self.subplan.sid)

    def __repr__(self):
        return "SubplanRef(subplan=%d)" % self.subplan.sid


class OpNode:
    """One core operator with per-query filter/projection decorations."""

    __slots__ = (
        "uid",
        "kind",
        "ref",
        "left_keys",
        "right_keys",
        "group_by",
        "aggs",
        "children",
        "filters",
        "projections",
        "stats",
        "query_mask",
    )

    def __init__(self, kind, children=(), ref=None, left_keys=None, right_keys=None,
                 group_by=None, aggs=None, filters=None, projections=None, stats=None,
                 query_mask=0):
        if kind not in ("source", "join", "aggregate"):
            raise PlanError("unknown OpNode kind %r" % (kind,))
        self.uid = _next_uid()
        self.kind = kind
        self.children = list(children)
        self.ref = ref
        self.left_keys = tuple(left_keys) if left_keys else None
        self.right_keys = tuple(right_keys) if right_keys else None
        self.group_by = tuple(group_by) if group_by is not None else None
        self.aggs = tuple(aggs) if aggs is not None else None
        self.filters = dict(filters) if filters else {}
        self.projections = dict(projections) if projections else {}
        self.stats = stats
        # the queries this operator serves; decides whether the union
        # projection must keep identity columns for non-projecting queries
        self.query_mask = query_mask or self.node_mask()
        if kind == "source" and ref is None:
            raise PlanError("source node needs a ref")
        if kind == "join" and (len(self.children) != 2 or not self.left_keys):
            raise PlanError("join node needs two children and key lists")
        if kind == "aggregate" and (len(self.children) != 1 or not self.aggs):
            raise PlanError("aggregate node needs one child and agg specs")

    # -- schemas -----------------------------------------------------------

    @property
    def core_schema(self):
        """Schema produced by the core operator, before decorations."""
        if self.kind == "source":
            return self.ref.schema
        if self.kind == "join":
            return self.children[0].out_schema.concat(self.children[1].out_schema)
        child_schema = self.children[0].out_schema
        columns = [child_schema.column(name) for name in self.group_by]
        columns += [Column(spec.alias) for spec in self.aggs]
        return Schema(tuple(columns))

    @property
    def out_schema(self):
        """Schema after the union projection (input schema of the parent)."""
        union = self.union_projection()
        if union is None:
            return self.core_schema
        return Schema(tuple(Column(alias) for alias, _ in union))

    def union_projection(self):
        """The ordered union of per-query projections, or None for identity.

        If any participating query has no projection at this node, the
        union must keep every core column (identity) and append the extra
        computed aliases of the projecting queries.  Conflicting aliases
        (same name, different expression signature) raise
        :class:`~repro.errors.PlanError`; the MQO merge avoids creating
        them by splitting incompatible queries apart.
        """
        if not self.projections:
            return None
        entries = []
        seen = {}

        def add(alias, expr):
            signature = expr.signature()
            if alias in seen:
                if seen[alias] != signature:
                    raise PlanError(
                        "conflicting projection alias %r at node %d" % (alias, self.uid)
                    )
                return
            seen[alias] = signature
            entries.append((alias, expr))

        from ..relational.expressions import col

        all_queries_project = all(
            qid in self.projections for qid in bitvec.iter_bits(self.query_mask)
        )
        if not all_queries_project:
            for column in self.core_schema:
                add(column.name, col(column.name))
        for qid in sorted(self.projections):
            for alias, expr in self.projections[qid]:
                add(alias, expr)
        return tuple(entries)

    def node_mask(self):
        """Union of query ids appearing in decorations (may be 0).

        The authoritative query set of a node is its owning subplan's
        ``query_mask``; this helper only reports which queries decorate.
        """
        mask = bitvec.mask_of(self.filters.keys())
        mask |= bitvec.mask_of(self.projections.keys())
        return mask

    # -- structure ---------------------------------------------------------

    def walk(self):
        """This node and all descendants within the subplan, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def source_nodes(self):
        """All source leaves of this tree."""
        return [node for node in self.walk() if node.kind == "source"]

    def structure_key(self):
        """Core structure key (decorations excluded); mirrors canonical trees."""
        child_keys = tuple(child.structure_key() for child in self.children)
        if self.kind == "source":
            return ("source", self.ref.key(), child_keys)
        if self.kind == "join":
            return ("join", self.left_keys, self.right_keys, child_keys)
        agg_sig = tuple(spec.signature() for spec in self.aggs)
        return ("aggregate", self.group_by, agg_sig, child_keys)

    # -- copying / restriction ----------------------------------------------

    def clone(self, ref_mapping=None, keep_queries=None):
        """Deep-copy this tree.

        ``ref_mapping`` remaps :class:`SubplanRef` targets (old subplan ->
        new subplan).  ``keep_queries`` restricts decorations to a query-id
        set (used when decomposing a shared subplan into partitions).
        Statistics objects are shared by reference: a decomposed copy of an
        operator keeps the calibrated statistics of the original.
        """
        ref = self.ref
        if ref is not None and isinstance(ref, SubplanRef) and ref_mapping:
            target = ref_mapping.get(ref.subplan.sid)
            if target is not None:
                ref = SubplanRef(target)
        filters = self.filters
        projections = self.projections
        query_mask = self.query_mask
        if keep_queries is not None:
            filters = {q: p for q, p in filters.items() if q in keep_queries}
            projections = {q: p for q, p in projections.items() if q in keep_queries}
            query_mask &= bitvec.mask_of(keep_queries)
        return OpNode(
            self.kind,
            children=[c.clone(ref_mapping, keep_queries) for c in self.children],
            ref=ref,
            left_keys=self.left_keys,
            right_keys=self.right_keys,
            group_by=self.group_by,
            aggs=self.aggs,
            filters=filters,
            projections=projections,
            stats=self.stats,
            query_mask=query_mask,
        )

    def __repr__(self):
        if self.kind == "source":
            return "OpNode(source %r)" % (self.ref,)
        if self.kind == "join":
            return "OpNode(join %s=%s)" % (list(self.left_keys), list(self.right_keys))
        return "OpNode(aggregate by=%s)" % (list(self.group_by),)


class Subplan:
    """A pace-schedulable unit: an operator tree between buffer boundaries."""

    __slots__ = ("sid", "root", "query_mask", "label")

    def __init__(self, sid, root, query_mask, label=""):
        self.sid = sid
        self.root = root
        self.query_mask = query_mask
        self.label = label or ("subplan%d" % sid)

    @property
    def output_schema(self):
        return self.root.out_schema

    def source_refs(self):
        """The (deduplicated, ordered) refs of this subplan's source leaves."""
        seen = set()
        refs = []
        for node in self.root.source_nodes():
            key = node.ref.key()
            if key not in seen:
                seen.add(key)
                refs.append(node.ref)
        return refs

    def child_subplans(self):
        """Child subplans this subplan consumes from."""
        return [ref.subplan for ref in self.source_refs() if isinstance(ref, SubplanRef)]

    def base_tables(self):
        """Names of base tables this subplan scans."""
        return [ref.name for ref in self.source_refs() if isinstance(ref, TableRef)]

    def operator_count(self):
        return sum(1 for _ in self.root.walk())

    def query_ids(self):
        return bitvec.to_ids(self.query_mask)

    def __repr__(self):
        return "Subplan(%d, %s, queries=%s)" % (
            self.sid,
            self.label,
            bitvec.format_mask(self.query_mask),
        )


class SharedQueryPlan:
    """The full DAG of subplans for a batch of scheduled queries."""

    def __init__(self, catalog, subplans, query_roots, queries=None):
        self.catalog = catalog
        self.subplans = list(subplans)
        self.query_roots = dict(query_roots)
        self.queries = dict(queries) if queries else {}
        self._sid_counter = max((s.sid for s in self.subplans), default=-1) + 1
        self.validate()

    # -- identity / lookup ---------------------------------------------------

    def next_sid(self):
        sid = self._sid_counter
        self._sid_counter += 1
        return sid

    def subplan_by_id(self, sid):
        for subplan in self.subplans:
            if subplan.sid == sid:
                return subplan
        raise PlanError("no subplan with id %d" % sid)

    def query_ids(self):
        return sorted(self.query_roots)

    # -- DAG structure --------------------------------------------------------

    def parents_of(self, subplan):
        """Subplans that consume ``subplan``'s buffer."""
        parents = []
        for candidate in self.subplans:
            if candidate is subplan:
                continue
            if any(child is subplan for child in candidate.child_subplans()):
                parents.append(candidate)
        return parents

    def consumer_count(self, subplan):
        """Number of consumers: parent subplans plus query outputs."""
        count = len(self.parents_of(subplan))
        count += sum(1 for root in self.query_roots.values() if root is subplan)
        return count

    def topological_order(self):
        """Subplans ordered child-first (leaves before parents)."""
        order = []
        visited = set()

        def visit(subplan):
            if subplan.sid in visited:
                return
            visited.add(subplan.sid)
            for child in subplan.child_subplans():
                visit(child)
            order.append(subplan)

        for subplan in self.subplans:
            visit(subplan)
        return order

    def shared_subplans(self):
        """Subplans whose query set has more than one query."""
        return [s for s in self.subplans if bitvec.popcount(s.query_mask) > 1]

    def connected_components(self):
        """Group query ids by shared-subplan connectivity.

        Share-Uniform assigns one pace per connected shared plan; two
        queries are connected when some subplan serves both.
        """
        parent = {qid: qid for qid in self.query_roots}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a, b):
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for subplan in self.subplans:
            ids = subplan.query_ids()
            for other in ids[1:]:
                union(ids[0], other)
        groups = {}
        for qid in self.query_roots:
            groups.setdefault(find(qid), []).append(qid)
        return [sorted(group) for group in groups.values()]

    def subplans_of_query(self, query_id):
        """All subplans participating in ``query_id``, child-first order."""
        return [
            s for s in self.topological_order() if s.query_mask & (1 << query_id)
        ]

    # -- validation ------------------------------------------------------------

    def validate(self):
        """Check the structural invariants of the execution engine.

        * every query root exists and covers its query;
        * the query set of every subplan subsumes the query sets of all of
          its parent subplans (engine requirement, section 2.2);
        * the DAG is acyclic (guaranteed by tree-of-refs construction but
          re-checked after decomposition rewrites).
        """
        sids = [s.sid for s in self.subplans]
        if len(set(sids)) != len(sids):
            raise PlanError("duplicate subplan ids: %r" % (sids,))
        known = {s.sid for s in self.subplans}
        for qid, root in self.query_roots.items():
            if root.sid not in known:
                raise PlanError("query %d roots at unknown subplan %d" % (qid, root.sid))
            if not root.query_mask & (1 << qid):
                raise PlanError(
                    "query %d not in its root subplan's query set %s"
                    % (qid, bitvec.format_mask(root.query_mask))
                )
        for subplan in self.subplans:
            for child in subplan.child_subplans():
                if child.sid not in known:
                    raise PlanError(
                        "subplan %d consumes unknown subplan %d" % (subplan.sid, child.sid)
                    )
                if not bitvec.subsumes(child.query_mask, subplan.query_mask):
                    raise PlanError(
                        "subsumption violated: subplan %d %s consumes %d %s"
                        % (
                            subplan.sid,
                            bitvec.format_mask(subplan.query_mask),
                            child.sid,
                            bitvec.format_mask(child.query_mask),
                        )
                    )
        # acyclicity: topological_order visits every subplan exactly once
        # unless a ref cycle makes visit() recurse forever; detect by depth.
        self._check_acyclic()

    def _check_acyclic(self):
        state = {}

        def visit(subplan):
            mark = state.get(subplan.sid)
            if mark == "done":
                return
            if mark == "active":
                raise PlanError("cycle through subplan %d" % subplan.sid)
            state[subplan.sid] = "active"
            for child in subplan.child_subplans():
                visit(child)
            state[subplan.sid] = "done"

        for subplan in self.subplans:
            visit(subplan)

    # -- copying ---------------------------------------------------------------

    def clone(self):
        """Deep copy the plan (fresh Subplan/OpNode objects, same sids).

        Statistics references on nodes are shared with the original, so a
        cloned plan can be re-costed without recalibration.
        """
        mapping = {}
        for subplan in self.topological_order():
            new_root = subplan.root.clone(ref_mapping=mapping)
            mapping[subplan.sid] = Subplan(
                subplan.sid, new_root, subplan.query_mask, subplan.label
            )
        new_subplans = [mapping[s.sid] for s in self.subplans]
        new_roots = {qid: mapping[root.sid] for qid, root in self.query_roots.items()}
        return SharedQueryPlan(self.catalog, new_subplans, new_roots, self.queries)

    def describe(self):
        """Multi-line human-readable plan summary."""
        lines = []
        for subplan in self.topological_order():
            children = ", ".join(
                "%s" % (ref.name if isinstance(ref, TableRef) else "sp%d" % ref.subplan.sid)
                for ref in subplan.source_refs()
            )
            lines.append(
                "subplan %d %s queries=%s ops=%d <- [%s]"
                % (
                    subplan.sid,
                    subplan.label,
                    bitvec.format_mask(subplan.query_mask),
                    subplan.operator_count(),
                    children,
                )
            )
        for qid in sorted(self.query_roots):
            lines.append("query q%d -> subplan %d" % (qid, self.query_roots[qid].sid))
        return "\n".join(lines)

    def __repr__(self):
        return "SharedQueryPlan(%d subplans, %d queries)" % (
            len(self.subplans),
            len(self.query_roots),
        )
