"""Multi-query optimization: canonicalization, merging, shared-plan DAG."""

from .canonical import (
    CanonicalNode,
    canonicalize,
    canonicalize_optimized,
    push_down_filters,
    split_conjuncts,
    substitute,
)
from .nodes import OpNode, SharedQueryPlan, Subplan, SubplanRef, TableRef
from .merge import MQOOptimizer, build_unshared_plan, build_blocking_cut_plan
from .dot import plan_to_dot

__all__ = [
    "CanonicalNode",
    "canonicalize",
    "canonicalize_optimized",
    "push_down_filters",
    "split_conjuncts",
    "substitute",
    "OpNode",
    "SharedQueryPlan",
    "Subplan",
    "SubplanRef",
    "TableRef",
    "MQOOptimizer",
    "build_unshared_plan",
    "plan_to_dot",
    "build_blocking_cut_plan",
]
