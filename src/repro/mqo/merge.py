"""The input MQO optimizer: merging queries into a shared plan.

This reproduces the role of the shared-workload optimizer the paper uses
as its black-box input (Giannikis et al. [17], with the materialization-
cost extension of Roy et al. [40]): queries are canonicalized, common
sub-expressions are identified by structural signature, and matching
subtrees are merged into shared operators whose select/project
decorations are tracked per query (SharedDB bitvector execution).

The merged DAG is then cut into :class:`~repro.mqo.nodes.Subplan` units at
operators with more than one consumer; those operators materialize their
output into buffers that each parent consumes at its own offset.  Base
relations are buffers themselves, so *source* nodes are never shared --
they are replicated into each consuming subplan (paper section 2.2).

The module also provides the two baseline plan shapes of section 5.2:

* :func:`build_unshared_plan` -- one subplan per query (NoShare-Uniform);
* :func:`build_blocking_cut_plan` -- each query cut into subplans at
  blocking (aggregate) operators (NoShare-Nonuniform).
"""

from ..errors import PlanError
from ..logical.builder import validate_query_ids
from ..relational import bitvec
from .canonical import canonicalize_optimized
from .nodes import OpNode, SharedQueryPlan, Subplan, SubplanRef, TableRef


class _MergedNode:
    """A node of the merged (pre-cut) DAG."""

    __slots__ = ("canonical_kind", "payload", "children", "filters",
                 "projections", "query_mask", "schema_source")

    def __init__(self, canonical_kind, payload, children, schema_source):
        self.canonical_kind = canonical_kind
        self.payload = payload
        self.children = children
        self.filters = {}
        self.projections = {}
        self.query_mask = 0
        # a representative CanonicalNode, used for core schema information
        self.schema_source = schema_source

    def add_query(self, query_id, canonical_node):
        self.query_mask |= 1 << query_id
        if canonical_node.filter is not None:
            self.filters[query_id] = canonical_node.filter
        if canonical_node.projection is not None:
            self.projections[query_id] = canonical_node.projection

    def projection_conflicts_with(self, projection):
        """True if adding ``projection`` would assign an alias two meanings."""
        if projection is None:
            return False
        incoming = {alias: expr.signature() for alias, expr in projection}
        for existing in self.projections.values():
            for alias, expr in existing:
                if alias in incoming and incoming[alias] != expr.signature():
                    return True
        return False


class MQOOptimizer:
    """Signature-based multi-query optimizer producing a shared plan.

    Parameters
    ----------
    catalog:
        the table catalog scans resolve against.
    min_shared_operators:
        a sharing gate approximating the materialization-cost check of
        [40]: a common sub-expression is only materialized as a shared
        subplan if it contains at least this many core operators (sharing
        a lone scan or trivial expression costs more in buffer
        materialization than it saves).  Default 1 shares everything
        sharable, matching the paper's aggressive sharing input.
    """

    def __init__(self, catalog, min_shared_operators=1):
        self.catalog = catalog
        self.min_shared_operators = min_shared_operators

    def build_shared_plan(self, queries):
        """Merge ``queries`` (a list of :class:`~repro.logical.ops.Query`)."""
        validate_query_ids(queries)
        merged_roots, merge_table = self._merge(queries)
        return self._cut(queries, merged_roots, merge_table)

    # -- phase 1: hash-consing merge ---------------------------------------

    def _merge(self, queries):
        merge_table = {}
        merged_roots = {}

        def intern(canonical_node, query_id):
            children = tuple(
                intern(child, query_id) for child in canonical_node.children
            )
            base_key = (
                canonical_node.structure_key(),
                tuple(id(child) for child in children),
            )
            variant = 0
            while True:
                key = (base_key, variant)
                node = merge_table.get(key)
                if node is None:
                    node = _MergedNode(
                        canonical_node.kind,
                        canonical_node.payload,
                        children,
                        canonical_node,
                    )
                    merge_table[key] = node
                    break
                if not node.projection_conflicts_with(canonical_node.projection):
                    break
                variant += 1
            node.add_query(query_id, canonical_node)
            return node

        for query in queries:
            canonical = canonicalize_optimized(query.root)
            merged_roots[query.query_id] = intern(canonical, query.query_id)
        return merged_roots, list(merge_table.values())

    # -- phase 2: cutting into subplans --------------------------------------

    def _cut(self, queries, merged_roots, merged_nodes):
        consumers = {id(node): 0 for node in merged_nodes}
        for node in merged_nodes:
            for child in node.children:
                consumers[id(child)] += 1
        root_ids = set()
        for root in merged_roots.values():
            consumers[id(root)] += 1
            root_ids.add(id(root))

        def is_cut(node):
            if id(node) in root_ids:
                return True
            if node.canonical_kind == "scan":
                return False  # base relations are buffers; scans replicate
            if consumers[id(node)] <= 1:
                return False
            return self._operator_weight(node) >= self.min_shared_operators

        cut_nodes = [node for node in merged_nodes if is_cut(node)]
        cut_ids = {id(node) for node in cut_nodes}

        # Build subplans bottom-up so SubplanRef targets exist.
        order = self._topological(cut_nodes, cut_ids)
        subplan_of = {}
        subplans = []
        next_sid = [0]

        def convert(node, region_mask, region_root):
            if id(node) in cut_ids and node is not region_root:
                return OpNode(
                    "source",
                    ref=SubplanRef(subplan_of[id(node)]),
                    query_mask=region_mask,
                )
            keep = set(bitvec.iter_bits(region_mask))
            filters = {q: p for q, p in node.filters.items() if q in keep}
            projections = {q: p for q, p in node.projections.items() if q in keep}
            if node.canonical_kind == "scan":
                table = self.catalog.get(node.payload)
                return OpNode(
                    "source",
                    ref=TableRef(table.name, table.schema),
                    filters=filters,
                    projections=projections,
                    query_mask=region_mask,
                )
            children = [convert(child, region_mask, region_root) for child in node.children]
            if node.canonical_kind == "join":
                left_keys, right_keys = node.payload
                return OpNode(
                    "join",
                    children=children,
                    left_keys=left_keys,
                    right_keys=right_keys,
                    filters=filters,
                    projections=projections,
                    query_mask=region_mask,
                )
            group_by, aggs = node.payload
            return OpNode(
                "aggregate",
                children=children,
                group_by=group_by,
                aggs=aggs,
                filters=filters,
                projections=projections,
                query_mask=region_mask,
            )

        for node in order:
            root_op = convert(node, node.query_mask, node)
            subplan = Subplan(next_sid[0], root_op, node.query_mask)
            next_sid[0] += 1
            subplan_of[id(node)] = subplan
            subplans.append(subplan)

        query_root_subplans = {
            qid: subplan_of[id(root)] for qid, root in merged_roots.items()
        }
        query_meta = {q.query_id: q for q in queries}
        return SharedQueryPlan(self.catalog, subplans, query_root_subplans, query_meta)

    @staticmethod
    def _operator_weight(node):
        """Core-operator count of the subtree rooted at ``node``."""
        weight = 0 if node.canonical_kind == "scan" else 1
        return weight + sum(
            MQOOptimizer._operator_weight(child) for child in node.children
        )

    @staticmethod
    def _topological(cut_nodes, cut_ids):
        order = []
        done = set()

        def depends_on(node, acc):
            for child in node.children:
                if id(child) in cut_ids:
                    acc.append(child)
                else:
                    depends_on(child, acc)

        def visit(node):
            if id(node) in done:
                return
            done.add(id(node))
            dependencies = []
            depends_on(node, dependencies)
            for dependency in dependencies:
                visit(dependency)
            order.append(node)

        for node in cut_nodes:
            visit(node)
        return order


def _tree_to_opnode(catalog, canonical_node, query_id, cut_at_aggregates, out):
    """Convert one query's canonical tree to OpNodes, optionally cutting.

    ``out`` is a list collecting ``(OpNode_root, is_aggregate_cut)`` pairs
    for the blocking-cut builder; the returned value is the OpNode for the
    current position (a SubplanRef placeholder is installed later).
    """
    filters = {}
    projections = {}
    if canonical_node.filter is not None:
        filters[query_id] = canonical_node.filter
    if canonical_node.projection is not None:
        projections[query_id] = canonical_node.projection
    mask = 1 << query_id
    if canonical_node.kind == "scan":
        table = catalog.get(canonical_node.payload)
        return OpNode(
            "source",
            ref=TableRef(table.name, table.schema),
            filters=filters,
            projections=projections,
            query_mask=mask,
        )
    children = []
    for child in canonical_node.children:
        child_op = _tree_to_opnode(catalog, child, query_id, cut_at_aggregates, out)
        if cut_at_aggregates and child.kind == "aggregate":
            out.append(child_op)
            child_op = OpNode("source", ref=_PendingRef(child_op), query_mask=mask)
        children.append(child_op)
    if canonical_node.kind == "join":
        left_keys, right_keys = canonical_node.payload
        return OpNode(
            "join",
            children=children,
            left_keys=left_keys,
            right_keys=right_keys,
            filters=filters,
            projections=projections,
            query_mask=mask,
        )
    group_by, aggs = canonical_node.payload
    return OpNode(
        "aggregate",
        children=children,
        group_by=group_by,
        aggs=aggs,
        filters=filters,
        projections=projections,
        query_mask=mask,
    )


class _PendingRef:
    """Placeholder ref resolved to a SubplanRef once subplans exist."""

    def __init__(self, root_op):
        self.root_op = root_op

    @property
    def schema(self):
        return self.root_op.out_schema

    def key(self):
        return ("pending", id(self.root_op))


def build_unshared_plan(catalog, queries):
    """One subplan per query: the NoShare-Uniform plan shape."""
    validate_query_ids(queries)
    subplans = []
    query_roots = {}
    for sid, query in enumerate(queries):
        canonical = canonicalize_optimized(query.root)
        root_op = _tree_to_opnode(catalog, canonical, query.query_id, False, [])
        subplan = Subplan(sid, root_op, 1 << query.query_id, label=query.name)
        subplans.append(subplan)
        query_roots[query.query_id] = subplan
    query_meta = {q.query_id: q for q in queries}
    return SharedQueryPlan(catalog, subplans, query_roots, query_meta)


def build_blocking_cut_plan(catalog, queries):
    """Per-query subplans cut at blocking (aggregate) operators.

    This is the NoShare-Nonuniform plan shape of section 5.2: "The root of
    a subplan is either a blocking operator or the root of the query", and
    each subplan extends downward until another blocking operator or a
    base relation.
    """
    validate_query_ids(queries)
    subplans = []
    query_roots = {}
    sid = 0
    for query in queries:
        canonical = canonicalize_optimized(query.root)
        inner_roots = []
        root_op = _tree_to_opnode(catalog, canonical, query.query_id, True, inner_roots)
        mask = 1 << query.query_id
        built = {}
        for op in inner_roots:  # collected bottom-up: children precede parents
            subplan = Subplan(sid, op, mask, label="%s.part%d" % (query.name, sid))
            sid += 1
            built[id(op)] = subplan
            subplans.append(subplan)
        root_subplan = Subplan(sid, root_op, mask, label=query.name)
        sid += 1
        subplans.append(root_subplan)
        for subplan in subplans:
            _resolve_pending(subplan.root, built)
        query_roots[query.query_id] = root_subplan
    query_meta = {q.query_id: q for q in queries}
    return SharedQueryPlan(catalog, subplans, query_roots, query_meta)


def _resolve_pending(op, built):
    if op.kind == "source" and isinstance(op.ref, _PendingRef):
        target = built.get(id(op.ref.root_op))
        if target is None:
            raise PlanError("unresolved pending subplan reference")
        op.ref = SubplanRef(target)
    for child in op.children:
        _resolve_pending(child, built)
