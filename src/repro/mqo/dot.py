"""Graphviz export of shared plans.

``plan_to_dot`` renders the subplan DAG -- one cluster per subplan with
its operator tree, buffer edges between subplans, and query-output
edges -- for debugging decompositions and documenting plans::

    from repro.mqo.dot import plan_to_dot
    open("plan.dot", "w").write(plan_to_dot(plan))
    # dot -Tsvg plan.dot -o plan.svg

With observability enabled (:mod:`repro.obs`), ``run_annotations`` turns
a metrics snapshot + pace configuration into per-subplan annotations
(work units, executions, pace) that ``plan_to_dot`` renders into each
subplan's cluster label.
"""

from ..relational import bitvec
from .nodes import SubplanRef, TableRef


def _node_label(node):
    if node.kind == "source":
        ref = node.ref
        base = "scan %s" % (ref.name if isinstance(ref, TableRef)
                            else "buffer sp%d" % ref.subplan.sid)
    elif node.kind == "join":
        base = "join %s=%s" % (",".join(node.left_keys), ",".join(node.right_keys))
    else:
        group = ",".join(node.group_by) if node.group_by else "()"
        aggs = ",".join("%s->%s" % (s.func, s.alias) for s in node.aggs)
        base = "agg[%s] %s" % (group, aggs)
    marks = []
    if node.filters:
        marks.append("σ*{%s}" % ",".join("q%d" % q for q in sorted(node.filters)))
    if node.projections:
        marks.append("π{%s}" % ",".join("q%d" % q for q in sorted(node.projections)))
    if marks:
        base += r"\n" + " ".join(marks)
    return base


def run_annotations(metrics_snapshot, pace_config=None):
    """Per-subplan annotations from a metrics snapshot (``repro.obs``).

    Reads the ``engine.subplan.work_units{kind=...,sid=N}`` counters that
    :class:`~repro.engine.executor.PlanExecutor` records and, when a pace
    configuration is given, each subplan's pace.  Returns the
    ``{sid: {label: value}}`` mapping ``plan_to_dot`` accepts.
    """
    annotations = {}
    for key, metric in metrics_snapshot.items():
        name, _, labels = key.partition("{")
        if not labels or name not in (
            "engine.subplan.work_units", "engine.subplan.executions"
        ):
            continue
        fields = dict(
            part.split("=", 1) for part in labels.rstrip("}").split(",")
        )
        sid = int(fields["sid"])
        entry = annotations.setdefault(sid, {})
        if name == "engine.subplan.executions":
            entry["executions"] = "%g" % metric["value"]
        else:
            entry["work[%s]" % fields["kind"]] = "%g" % metric["value"]
    for sid, entry in annotations.items():
        total = sum(float(v) for k, v in entry.items() if k.startswith("work["))
        entry["work"] = "%g" % total
    if pace_config:
        for sid, pace in pace_config.items():
            annotations.setdefault(sid, {})["pace"] = str(pace)
    return annotations


def plan_to_dot(plan, title=None, annotations=None):
    """Render a :class:`~repro.mqo.nodes.SharedQueryPlan` as DOT text.

    ``annotations`` optionally maps subplan sid to a ``{label: value}``
    dict (see :func:`run_annotations`); matching entries are rendered as
    an extra line of the subplan's cluster label.
    """
    lines = ["digraph shared_plan {", '  rankdir="BT";', '  node [shape=box, fontsize=10];']
    if title:
        lines.append('  label="%s";' % title)

    buffer_edges = []
    for subplan in plan.topological_order():
        lines.append('  subgraph "cluster_sp%d" {' % subplan.sid)
        label = 'subplan %d  %s  queries=%s' % (
            subplan.sid, subplan.label, bitvec.format_mask(subplan.query_mask)
        )
        extra = (annotations or {}).get(subplan.sid)
        if extra:
            label += r"\n" + "  ".join(
                "%s=%s" % (key, extra[key]) for key in sorted(extra)
            )
        lines.append('    label="%s";' % label)
        for node in subplan.root.walk():
            lines.append('    n%d [label="%s"];' % (node.uid, _node_label(node)))
            for child in node.children:
                lines.append("    n%d -> n%d;" % (child.uid, node.uid))
            if node.kind == "source" and isinstance(node.ref, SubplanRef):
                buffer_edges.append((node.ref.subplan, node))
        lines.append("  }")

    for child_subplan, consumer_node in buffer_edges:
        lines.append(
            '  n%d -> n%d [style=dashed, label="buffer"];'
            % (child_subplan.root.uid, consumer_node.uid)
        )
    for qid in sorted(plan.query_roots):
        root = plan.query_roots[qid]
        lines.append('  q%d [shape=ellipse, label="q%d output"];' % (qid, qid))
        lines.append("  n%d -> q%d;" % (root.root.uid, qid))
    lines.append("}")
    return "\n".join(lines)
