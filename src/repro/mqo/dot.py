"""Graphviz export of shared plans.

``plan_to_dot`` renders the subplan DAG -- one cluster per subplan with
its operator tree, buffer edges between subplans, and query-output
edges -- for debugging decompositions and documenting plans::

    from repro.mqo.dot import plan_to_dot
    open("plan.dot", "w").write(plan_to_dot(plan))
    # dot -Tsvg plan.dot -o plan.svg
"""

from ..relational import bitvec
from .nodes import SubplanRef, TableRef


def _node_label(node):
    if node.kind == "source":
        ref = node.ref
        base = "scan %s" % (ref.name if isinstance(ref, TableRef)
                            else "buffer sp%d" % ref.subplan.sid)
    elif node.kind == "join":
        base = "join %s=%s" % (",".join(node.left_keys), ",".join(node.right_keys))
    else:
        group = ",".join(node.group_by) if node.group_by else "()"
        aggs = ",".join("%s->%s" % (s.func, s.alias) for s in node.aggs)
        base = "agg[%s] %s" % (group, aggs)
    marks = []
    if node.filters:
        marks.append("σ*{%s}" % ",".join("q%d" % q for q in sorted(node.filters)))
    if node.projections:
        marks.append("π{%s}" % ",".join("q%d" % q for q in sorted(node.projections)))
    if marks:
        base += r"\n" + " ".join(marks)
    return base


def plan_to_dot(plan, title=None):
    """Render a :class:`~repro.mqo.nodes.SharedQueryPlan` as DOT text."""
    lines = ["digraph shared_plan {", '  rankdir="BT";', '  node [shape=box, fontsize=10];']
    if title:
        lines.append('  label="%s";' % title)

    buffer_edges = []
    for subplan in plan.topological_order():
        lines.append('  subgraph "cluster_sp%d" {' % subplan.sid)
        lines.append(
            '    label="subplan %d  %s  queries=%s";'
            % (subplan.sid, subplan.label,
               bitvec.format_mask(subplan.query_mask))
        )
        for node in subplan.root.walk():
            lines.append('    n%d [label="%s"];' % (node.uid, _node_label(node)))
            for child in node.children:
                lines.append("    n%d -> n%d;" % (child.uid, node.uid))
            if node.kind == "source" and isinstance(node.ref, SubplanRef):
                buffer_edges.append((node.ref.subplan, node))
        lines.append("  }")

    for child_subplan, consumer_node in buffer_edges:
        lines.append(
            '  n%d -> n%d [style=dashed, label="buffer"];'
            % (child_subplan.root.uid, consumer_node.uid)
        )
    for qid in sorted(plan.query_roots):
        root = plan.query_roots[qid]
        lines.append('  q%d [shape=ellipse, label="q%d output"];' % (qid, qid))
        lines.append("  n%d -> q%d;" % (root.root.uid, qid))
    lines.append("}")
    return "\n".join(lines)
