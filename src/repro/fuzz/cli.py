"""Fuzz campaign driver and ``python -m repro.fuzz`` entry point.

Usage::

    python -m repro.fuzz --seed 0 --cases 200             # smoke campaign
    python -m repro.fuzz --seed 7 --cases 0 --minutes 5   # time-budgeted
    python -m repro.fuzz --seed 3 --cases 500 --shrink    # minimize failures
    python -m repro.fuzz --replay tests/fuzz_corpus/x.json

Each case runs through every differential oracle
(:mod:`repro.fuzz.oracles`); failures are written as self-contained JSON
files under ``--failures-dir`` (default ``fuzz-failures/``) together
with the exact replay command.  ``--shrink`` delta-debugs each failing
case down to a minimal repro before saving.  Exit status is 0 for a
green campaign, 1 when any case failed.

Observability: ``--trace FILE`` / ``--metrics FILE`` enable
:mod:`repro.obs` collection; the campaign emits per-case spans and
``fuzz.cases`` / ``fuzz.failures`` / ``fuzz.rejected`` counters.
"""

import argparse
import json
import os
import sys
import time

from .. import obs
from ..errors import ReproError
from ..obs import OBS, trace
from . import corpus, grammar, oracles, shrinker


class CaseFailure:
    """One failing case: raw + minimized forms, verdict text, saved paths."""

    __slots__ = ("case", "minimized", "failures", "path", "minimized_path")

    def __init__(self, case, failures):
        self.case = case
        self.minimized = None
        self.failures = failures
        self.path = None
        self.minimized_path = None


class CampaignResult:
    """Summary of one fuzz campaign."""

    __slots__ = ("seed", "cases_run", "rejected", "failures", "wall_seconds")

    def __init__(self, seed):
        self.seed = seed
        self.cases_run = 0
        self.rejected = 0
        self.failures = []
        self.wall_seconds = 0.0

    @property
    def ok(self):
        return not self.failures


def case_verdict(case, case_path=None):
    """Run one case; returns ``(report_or_None, failure_lines)``.

    Any exception escaping the oracles -- ReproError divergence handled
    inside :func:`~repro.fuzz.oracles.run_case`, so what escapes here is
    a crash -- becomes a failure line instead of aborting the campaign.
    """
    try:
        report = oracles.run_case(case, case_path=case_path)
    except Exception as exc:  # crashes are findings, not campaign aborts
        return None, ["crash: %s: %s" % (type(exc).__name__, exc)]
    if report.status == "fail":
        return report, list(report.failures)
    return report, []


def _is_failing(case):
    """Shrinker predicate: does this case still fail (or crash)?"""
    try:
        report = oracles.run_case(case)
    except Exception:
        return True
    return report.status == "fail"


def run_campaign(seed, cases, minutes=None, shrink=False, failures_dir=None,
                 shrink_budget=400, progress=None):
    """Run a fuzz campaign; returns a :class:`CampaignResult`.

    ``cases`` may be 0 with ``minutes`` set for a purely time-budgeted
    run.  When ``failures_dir`` is set, raw (and minimized) failing
    cases are saved there.
    """
    started = time.monotonic()
    deadline = started + minutes * 60.0 if minutes else None
    result = CampaignResult(seed)
    index = 0
    while True:
        if cases and index >= cases:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        if not cases and deadline is None:
            break
        case = grammar.generate_case(seed, index)
        with trace.span("fuzz.case", seed=seed, index=index):
            report, failure_lines = case_verdict(case)
        result.cases_run += 1
        if OBS.enabled:
            OBS.metrics.counter("fuzz.cases").inc()
        if report is not None and report.status == "rejected":
            result.rejected += 1
            if OBS.enabled:
                OBS.metrics.counter("fuzz.rejected").inc()
        if failure_lines:
            failure = CaseFailure(case, failure_lines)
            if OBS.enabled:
                OBS.metrics.counter("fuzz.failures").inc()
            if shrink:
                with trace.span("fuzz.shrink", seed=seed, index=index):
                    failure.minimized = shrinker.shrink(
                        case, _is_failing, budget=shrink_budget
                    )
            if failures_dir:
                _save_failure(failure, failures_dir)
            result.failures.append(failure)
        if progress is not None:
            progress(index, result)
        index += 1
    result.wall_seconds = time.monotonic() - started
    return result


def _save_failure(failure, directory):
    name = corpus.case_filename(failure.case)
    failure.path = corpus.save_case(
        failure.case, os.path.join(directory, name), failures=failure.failures
    )
    if failure.minimized is not None:
        failure.minimized_path = corpus.save_case(
            failure.minimized,
            os.path.join(directory, corpus.case_filename(
                failure.minimized, prefix="minimized"
            )),
            failures=failure.failures,
            note="minimized from %s" % name,
        )


def replay(path):
    """Replay a saved case; returns its :class:`~.oracles.CaseReport`.

    ReproErrors raised during the replay carry the case path and seed
    (:meth:`~repro.errors.ReproError.attach_fuzz_context`).
    """
    case = corpus.load_case(path)
    try:
        return oracles.run_case(case, case_path=path)
    except ReproError as exc:
        raise exc.attach_fuzz_context(seed=case.get("seed"), case_path=path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzer for the shared-execution engine.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--cases", type=int, default=200,
                        help="number of cases to run (default 200; 0 = "
                             "unbounded, requires --minutes)")
    parser.add_argument("--minutes", type=float, default=None,
                        help="wall-clock budget; stops early when exceeded")
    parser.add_argument("--shrink", action="store_true",
                        help="delta-debug failing cases to minimal repros")
    parser.add_argument("--shrink-budget", type=int, default=400,
                        help="max oracle evaluations per shrink (default 400)")
    parser.add_argument("--failures-dir", default="fuzz-failures",
                        help="directory for failing-case JSON dumps "
                             "(default fuzz-failures/)")
    parser.add_argument("--replay", metavar="PATH", action="append",
                        default=[],
                        help="replay saved case(s) instead of generating "
                             "new ones (repeatable)")
    parser.add_argument("--progress-every", type=int, default=50,
                        help="print progress every N cases (0 = quiet)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the run")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="write the final metrics snapshot as JSON")
    args = parser.parse_args(argv)

    if args.trace or args.metrics:
        obs.enable(process_name="repro-fuzz")

    status = 0
    if args.replay:
        for path in args.replay:
            report = replay(path)
            print(report.describe())
            if report.status == "fail":
                status = 1
    else:
        if not args.cases and not args.minutes:
            parser.error("--cases 0 requires --minutes")

        def progress(index, result):
            if args.progress_every and (index + 1) % args.progress_every == 0:
                print(
                    "[fuzz] %d cases (%d rejected, %d failures)"
                    % (index + 1, result.rejected, len(result.failures))
                )

        result = run_campaign(
            args.seed, args.cases, minutes=args.minutes, shrink=args.shrink,
            failures_dir=args.failures_dir, shrink_budget=args.shrink_budget,
            progress=progress,
        )
        print(
            "[fuzz] seed %d: %d cases in %.1fs, %d rejected, %d failure(s)"
            % (result.seed, result.cases_run, result.wall_seconds,
               result.rejected, len(result.failures))
        )
        for failure in result.failures:
            print("\n".join("  " + line for line in failure.failures))
            if failure.path:
                print("  saved: %s" % failure.path)
                print("  replay: %s" % corpus.replay_command(failure.path))
            if failure.minimized_path:
                print("  minimized: %s" % failure.minimized_path)
        status = 0 if result.ok else 1

    if OBS.enabled:
        if args.trace:
            OBS.tracer.export(args.trace)
            print("[trace: %d events -> %s]"
                  % (len(OBS.tracer.events), args.trace))
        if args.metrics:
            with open(args.metrics, "w") as handle:
                json.dump(OBS.metrics.snapshot(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print("[metrics -> %s]" % args.metrics)
    return status


if __name__ == "__main__":
    sys.exit(main())
