"""On-disk fuzz cases: save, load, replay, regression corpus.

A saved case is a self-contained JSON file: the case dict itself plus a
``replay`` command line, so a failure in CI or a teammate's terminal is
reproducible with one copy-paste.  Minimized repros of every bug the
fuzzer has found live in ``tests/fuzz_corpus/`` and are replayed by
``tests/test_fuzz_regressions.py`` on every pytest run.
"""

import json
import os

#: keys of the wrapper document (everything else is the case itself)
_META_KEYS = ("replay", "note", "failures")


def save_case(case, path, failures=None, note=None):
    """Write ``case`` (plus replay command and failure text) to ``path``."""
    document = dict(case)
    document["replay"] = replay_command(path)
    if failures:
        document["failures"] = list(failures)
    if note:
        document["note"] = note
    directory = os.path.dirname(os.path.abspath(path))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_case(path):
    """Load a saved case, stripping the wrapper metadata."""
    with open(path) as handle:
        document = json.load(handle)
    for key in _META_KEYS:
        document.pop(key, None)
    return document


def replay_command(path):
    return "python -m repro.fuzz --replay %s" % path


def iter_corpus(directory):
    """Yield ``(path, case)`` for every JSON case under ``directory``."""
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            path = os.path.join(directory, name)
            yield path, load_case(path)


def case_filename(case, prefix="case"):
    return "%s-seed%s-idx%s.json" % (
        prefix, case.get("seed", "x"), case.get("index", "x")
    )
