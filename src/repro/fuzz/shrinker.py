"""Delta-debugging shrinker: reduce a failing case to a minimal repro.

Greedy reduction to a fixpoint: each pass proposes structurally smaller
variants of the case (drop a query, drop an operator, halve a table,
drop churn, lower paces, disable decomposition/SQL); a variant is kept
iff the failure predicate still holds.  Passes repeat until a full sweep
accepts nothing, or the checker budget runs out.

The predicate is caller-supplied (usually "run_case reports a failure
*or* raises"), so the shrinker works unchanged for result divergences,
invariant violations, and crashes.  All reductions are deterministic --
same failing case, same predicate, same minimal repro.
"""

import copy


def shrink(case, is_failing, budget=400):
    """Return a minimal failing variant of ``case``.

    ``is_failing(case) -> bool`` must be true for the input case.
    ``budget`` caps the number of predicate evaluations.
    """
    state = _Shrink(is_failing, budget)
    current = copy.deepcopy(case)
    progress = True
    while progress and state.budget > 0:
        progress = False
        for reduction in _REDUCTIONS:
            while state.budget > 0:
                candidate = None
                for candidate in reduction(current):
                    if state.check(candidate):
                        current = candidate
                        progress = True
                        break
                else:
                    break  # no candidate of this pass helped; next pass
    return current


class _Shrink:
    def __init__(self, is_failing, budget):
        self.is_failing = is_failing
        self.budget = budget

    def check(self, candidate):
        if self.budget <= 0:
            return False
        self.budget -= 1
        try:
            return bool(self.is_failing(candidate))
        except Exception:
            # a candidate that breaks the *checker* differently is not a
            # reduction of the original failure
            return False


def _variant(case, mutate):
    candidate = copy.deepcopy(case)
    mutate(candidate)
    return candidate


# -- reduction passes (each yields candidate cases, smallest bite first) ---------


def _drop_queries(case):
    if len(case["queries"]) <= 1:
        return
    for position in range(len(case["queries"]) - 1, -1, -1):
        def cut(candidate, position=position):
            del candidate["queries"][position]
        yield _variant(case, cut)


def _drop_query_parts(case):
    for position, spec in enumerate(case["queries"]):
        if spec.get("second"):
            yield _variant(
                case, lambda c, p=position: c["queries"][p].update(second=None)
            )
        if len(spec.get("aggs", ())) > 1:
            yield _variant(
                case,
                lambda c, p=position: c["queries"][p].update(
                    aggs=c["queries"][p]["aggs"][:1], second=None
                ),
            )
        if spec.get("group_by"):
            yield _variant(
                case,
                lambda c, p=position: c["queries"][p].update(
                    group_by=[], second=None
                ),
            )
        for findex in range(len(spec.get("filters", ())) - 1, -1, -1):
            def cut_filter(candidate, p=position, f=findex):
                del candidate["queries"][p]["filters"][f]
            yield _variant(case, cut_filter)
        for jindex in range(len(spec.get("joins", ())) - 1, -1, -1):
            def cut_join(candidate, p=position, j=jindex):
                qspec = candidate["queries"][p]
                dim = qspec["joins"].pop(j)
                prefix = "d%d_" % dim
                qspec["filters"] = [
                    f for f in qspec["filters"] if not f[0].startswith(prefix)
                ]
                qspec["group_by"] = [
                    g for g in qspec["group_by"] if not g.startswith(prefix)
                ]
                qspec["project"] = [
                    c for c in qspec["project"]
                    if not c.startswith(prefix) and c != "f_k%d" % dim
                ] or ["f_i"]
            yield _variant(case, cut_join)
        if len(spec.get("project", ())) > 1:
            yield _variant(
                case,
                lambda c, p=position: c["queries"][p].update(
                    project=c["queries"][p]["project"][:1]
                ),
            )


def _drop_tables(case):
    """Drop dimension tables no query joins any more."""
    used = {d for spec in case["queries"] for d in spec["joins"]}
    for position in range(len(case["tables"]) - 1, 0, -1):
        name = case["tables"][position]["name"]
        dim = int(name[3:])
        if dim in used:
            continue

        def cut(candidate, position=position, dim=dim):
            del candidate["tables"][position]
            fact = candidate["tables"][0]
            columns = [c for c, _ in fact["columns"]]
            if "f_k%d" % dim in columns:
                at = columns.index("f_k%d" % dim)
                del fact["columns"][at]
                for row in fact["rows"]:
                    del row[at]
                for old, new in fact["updates"]:
                    del old[at]
                    del new[at]
                for row in fact["deletes"]:
                    del row[at]

        yield _variant(case, cut)


def _drop_churn(case):
    for position, table in enumerate(case["tables"]):
        if table["updates"] or table["deletes"]:
            yield _variant(
                case,
                lambda c, p=position: c["tables"][p].update(
                    updates=[], deletes=[]
                ),
            )
    for position, table in enumerate(case["tables"]):
        for key in ("updates", "deletes"):
            if len(table[key]) > 1:
                yield _variant(
                    case,
                    lambda c, p=position, k=key: c["tables"][p].update(
                        **{k: c["tables"][p][k][:1]}
                    ),
                )
            if len(table[key]) == 1 and table["updates"] and table["deletes"]:
                yield _variant(
                    case,
                    lambda c, p=position, k=key: c["tables"][p].update(**{k: []}),
                )


def _halve_rows(case):
    for position, table in enumerate(case["tables"]):
        n = len(table["rows"])
        if n <= 1:
            continue
        for keep_front in (False, True):
            def cut(candidate, position=position, keep_front=keep_front, n=n):
                table = candidate["tables"][position]
                kept = table["rows"][: n // 2] if keep_front else table["rows"][n // 2:]
                _restrict_rows(table, kept)
            yield _variant(case, cut)


def _drop_single_rows(case):
    for position, table in enumerate(case["tables"]):
        if not 1 < len(table["rows"]) <= 8:
            continue
        for rindex in range(len(table["rows"]) - 1, -1, -1):
            def cut(candidate, position=position, rindex=rindex):
                table = candidate["tables"][position]
                kept = [
                    row for at, row in enumerate(table["rows"]) if at != rindex
                ]
                _restrict_rows(table, kept)
            yield _variant(case, cut)


def _restrict_rows(table, kept):
    """Replace a table's rows, pruning churn events that lost their target."""
    table["rows"] = kept
    keys = {tuple(row) for row in kept}
    table["updates"] = [
        [old, new] for old, new in table["updates"] if tuple(old) in keys
    ]
    table["deletes"] = [
        row for row in table["deletes"] if tuple(row) in keys
    ]


def _simplify_config(case):
    if case.get("decompose") is not None:
        yield _variant(case, lambda c: c.update(decompose=None))
    if case.get("use_sql"):
        yield _variant(case, lambda c: c.update(use_sql=False))
    ceiling = case.get("pace_ceiling", 1)
    if ceiling > 1:
        yield _variant(case, lambda c: c.update(pace_ceiling=2 if ceiling > 2 else 1))
    stream = case.get("stream", {})
    if stream.get("execution_overhead") or stream.get("state_factor"):
        yield _variant(
            case,
            lambda c: c["stream"].update(execution_overhead=0.0, state_factor=0.0),
        )
    if not stream.get("compact_buffers", True):
        yield _variant(case, lambda c: c["stream"].update(compact_buffers=True))


_REDUCTIONS = [
    _drop_queries,
    _drop_churn,
    _halve_rows,
    _drop_query_parts,
    _drop_tables,
    _drop_single_rows,
    _simplify_config,
]
