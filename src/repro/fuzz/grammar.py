"""Seeded grammar for random shared-execution workloads.

A *case* is a plain-JSON dict that fully determines one differential-fuzz
run: a star-schema catalog (fact table plus 0..2 dimensions, with an
optional explicit churn log of updates/deletes), a batch of queries
(joins, filters, group-bys, aggregates including the non-incrementable
MIN/MAX and two-level Q15-style shapes, plus plain projections), a pace
ceiling + salt from which per-plan pace configurations are derived, a
stream configuration, and optional decomposition / SQL-roundtrip /
service-churn (register, then deregister ``dropouts`` mid-run) choices.

Everything in a case is a JSON-native value (lists, not tuples), so a
case survives ``json.dumps``/``loads`` bit-for-bit -- the property the
corpus (:mod:`repro.fuzz.corpus`) and the shrinker rely on.  Builders in
this module turn a case into live engine objects: :func:`build_catalog`,
:func:`build_queries`, :func:`render_sql`, :func:`derive_paces`.

Determinism: :func:`generate_case` derives every random choice from
``random.Random("<seed>:<index>:<label>")``, so the case stream for a
seed is reproducible across processes and platforms (string seeding
hashes via SHA-512, independent of ``PYTHONHASHSEED``).
"""

import random

from ..engine.stream import StreamConfig
from ..logical.builder import PlanBuilder
from ..relational.expressions import (
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    col,
)
from ..relational.schema import FLOAT, INT, STR, Schema
from ..relational.table import Catalog

CASE_VERSION = 1

#: (kind, input column) pool for first-level aggregates
_AGG_POOL = [
    ("sum", "f_v"),
    ("count", None),
    ("avg", "f_v"),
    ("min", "f_v"),
    ("max", "f_v"),
    ("sum", "f_i"),
    ("max", "f_i"),
]

_FILTER_OPS = ["<", "<=", ">", ">="]

_TYPE_NAMES = {INT: "int", FLOAT: "float", STR: "str"}
_NAME_TYPES = {"int": INT, "float": FLOAT, "str": STR}


def case_rng(seed, index, label=""):
    """Deterministic per-(seed, case, purpose) random stream."""
    return random.Random("%d:%d:%s" % (seed, index, label))


# -- generation ------------------------------------------------------------------


def generate_case(seed, index):
    """Generate case ``index`` of the stream for ``seed`` (JSON-native dict)."""
    rng = case_rng(seed, index, "case")
    n_dims = rng.choices([0, 1, 2], weights=[15, 50, 35])[0]
    dim_sizes = [rng.randint(3, 10) for _ in range(n_dims)]
    tables = [_generate_fact(rng, dim_sizes)]
    for d, size in enumerate(dim_sizes):
        tables.append(_generate_dim(rng, d, size))
    if rng.random() < 0.6:
        _generate_churn(rng, tables[0])
    if n_dims and rng.random() < 0.2:
        _generate_churn(rng, tables[1 + rng.randrange(n_dims)], light=True)

    # small per-case constant pools make queries collide (and share)
    fact_cuts = [rng.randint(1, 9) for _ in range(2)]
    dim_cuts = [rng.randint(1, 15) for _ in range(2)]
    n_queries = rng.randint(1, 5)
    queries = [
        _generate_query(rng, qid, n_dims, fact_cuts, dim_cuts)
        for qid in range(n_queries)
    ]

    case = {
        "version": CASE_VERSION,
        "seed": seed,
        "index": index,
        "tables": tables,
        "queries": queries,
        "pace_ceiling": rng.randint(1, 8),
        "pace_salt": rng.randrange(2 ** 16),
        "stream": {
            "execution_overhead": rng.choice([0.0, 1.0, 2.5]),
            "state_factor": rng.choice([0.0, 0.3]),
            "compact_buffers": rng.random() < 0.8,
        },
        "use_sql": rng.random() < 0.4,
        "decompose": (
            {"rank": rng.randrange(4), "salt": rng.randrange(2 ** 16)}
            if rng.random() < 0.35
            else None
        ),
        # register/deregister churn through the long-running service mode
        # (drawn last so adding the key left every earlier field's random
        # stream -- and thus the historical corpus -- untouched)
        "service": (
            {
                "windows": rng.randint(2, 3),
                "goal": rng.choice([5.0, 50.0]),
                "dropouts": (
                    sorted(rng.sample(
                        range(n_queries), rng.randint(1, n_queries - 1)
                    ))
                    if n_queries >= 2 and rng.random() < 0.6
                    else []
                ),
            }
            if rng.random() < 0.35
            else None
        ),
    }
    return case


def _generate_fact(rng, dim_sizes):
    columns = [["f_k%d" % d, "int"] for d in range(len(dim_sizes))]
    columns += [["f_v", "float"], ["f_i", "int"], ["f_s", "str"]]
    rows = []
    for _ in range(rng.randint(6, 60)):
        row = [rng.randrange(size) for size in dim_sizes]
        row += [
            float(rng.randint(1, 50)),
            rng.randrange(10),
            "t%d" % rng.randrange(4),
        ]
        rows.append(row)
    return {
        "name": "fact",
        "columns": columns,
        "rows": rows,
        "updates": [],
        "deletes": [],
        "churn_salt": 0,
    }


def _generate_dim(rng, d, size):
    rows = [
        [key, "g%d" % rng.randrange(4), float(rng.randint(1, 20))]
        for key in range(size)
    ]
    return {
        "name": "dim%d" % d,
        "columns": [
            ["d%d_id" % d, "int"],
            ["d%d_g" % d, "str"],
            ["d%d_w" % d, "float"],
        ],
        "rows": rows,
        "updates": [],
        "deletes": [],
        "churn_salt": 0,
    }


def _generate_query(rng, qid, n_dims, fact_cuts, dim_cuts):
    joins = [d for d in range(n_dims) if rng.random() < 0.7]
    filters = []
    if rng.random() < 0.5:
        filters.append(["f_i", rng.choice(_FILTER_OPS), rng.choice(fact_cuts)])
    for d in joins:
        if rng.random() < 0.4:
            filters.append(["d%d_w" % d, ">", rng.choice(dim_cuts)])

    fact_cols = ["f_v", "f_i", "f_s"] + ["f_k%d" % d for d in joins]
    dim_cols = [c for d in joins for c in ("d%d_g" % d, "d%d_w" % d)]
    spec = {
        "name": "q%d" % qid,
        "joins": joins,
        "filters": filters,
        "shape": "project" if rng.random() < 0.15 else "agg",
        "group_by": [],
        "aggs": [],
        "project": [],
        "second": None,
    }
    if spec["shape"] == "project":
        available = fact_cols + dim_cols
        k = rng.randint(1, min(3, len(available)))
        spec["project"] = rng.sample(available, k)
        return spec

    group_candidates = [[], ["f_i"], ["f_s"]] + [["d%d_g" % d] for d in joins]
    spec["group_by"] = list(rng.choice(group_candidates))
    picks = rng.sample(_AGG_POOL, rng.randint(1, 3))
    spec["aggs"] = [
        [kind, column, "a%d" % position]
        for position, (kind, column) in enumerate(picks)
    ]
    if spec["group_by"] and rng.random() < 0.25:
        spec["second"] = [rng.choice(["max", "min", "sum"]), "a0", "m0"]
    return spec


def _churn_candidates(table):
    """Row indexes safe to churn: unique-valued rows only.

    Splicing a DELETE after the *first* arrival of an equal row is only
    guaranteed valid when exactly one copy exists; duplicate-valued rows
    could transiently drive a multiset count negative mid-log.
    """
    counts = {}
    for row in table["rows"]:
        key = tuple(row)
        counts[key] = counts.get(key, 0) + 1
    return [
        position
        for position, row in enumerate(table["rows"])
        if counts[tuple(row)] == 1
    ]


def _generate_churn(rng, table, light=False):
    candidates = _churn_candidates(table)
    if not candidates:
        return
    rng.shuffle(candidates)
    n_updates = min(len(candidates), rng.randint(1, 2 if light else 6))
    taken = candidates[:n_updates]
    rest = candidates[n_updates:]
    n_deletes = min(len(rest), rng.randint(0, 1 if light else 3))

    updates = []
    for position in taken:
        old = list(table["rows"][position])
        new = list(old)
        _mutate_row(rng, table, new)
        updates.append([old, new])
    deletes = [list(table["rows"][position]) for position in rest[:n_deletes]]
    table["updates"] = updates
    table["deletes"] = deletes
    table["churn_salt"] = rng.randrange(2 ** 16)


def _mutate_row(rng, table, row):
    """Rewrite the row's value columns (never its key columns)."""
    for position, (name, kind) in enumerate(table["columns"]):
        if name.endswith("_id") or name.startswith("f_k"):
            continue
        if kind == "float":
            row[position] = float(rng.randint(1, 50))
        elif kind == "int":
            row[position] = rng.randrange(10)
        else:
            row[position] = "t%d" % rng.randrange(4)


# -- builders: case dict -> live engine objects ----------------------------------


def build_catalog(case):
    """Instantiate the case's tables (rows, churn log) into a Catalog."""
    catalog = Catalog()
    for spec in case["tables"]:
        schema = Schema.of(*[(name, _NAME_TYPES[kind]) for name, kind in spec["columns"]])
        table = catalog.create(spec["name"], schema)
        for row in spec["rows"]:
            table.append(tuple(row))
        _apply_churn(table, spec)
    return catalog


def _apply_churn(table, spec):
    updates = [
        (tuple(old), tuple(new)) for old, new in spec.get("updates", ())
    ]
    deletes = [tuple(row) for row in spec.get("deletes", ())]
    if not updates and not deletes:
        return
    rng = random.Random("churn:%d" % spec.get("churn_salt", 0))
    if updates:
        table.apply_updates(updates, rng)
        log = table.churn
    else:
        log = [(row, 1) for row in table.rows]
        table.churn = log
    for row in deletes:
        arrival = next(
            position
            for position, (logged, sign) in enumerate(log)
            if sign == 1 and logged == row
        )
        log.insert(rng.randint(arrival + 1, len(log)), (row, -1))


def _make_agg(kind, column, alias):
    if kind == "count":
        return agg_count(alias)
    factory = {
        "sum": agg_sum,
        "avg": agg_avg,
        "min": agg_min,
        "max": agg_max,
    }[kind]
    return factory(col(column), alias)


def _make_filter(name, op, value):
    column = col(name)
    if op == "<":
        return column < value
    if op == "<=":
        return column <= value
    if op == ">":
        return column > value
    if op == ">=":
        return column >= value
    raise ValueError("unknown filter op %r" % op)


def build_query(catalog, spec, query_id):
    """Build one query spec through :class:`PlanBuilder`."""
    builder = PlanBuilder.scan(catalog, "fact")
    dim_filters = {}
    for name, op, value in spec["filters"]:
        if name.startswith("f_"):
            builder = builder.where(_make_filter(name, op, value))
        else:
            dim_filters.setdefault(name[1], []).append((name, op, value))
    for d in spec["joins"]:
        builder = builder.join(
            PlanBuilder.scan(catalog, "dim%d" % d), "f_k%d" % d, "d%d_id" % d
        )
        for name, op, value in dim_filters.get(str(d), ()):
            builder = builder.where(_make_filter(name, op, value))
    if spec["shape"] == "project":
        builder = builder.project(list(spec["project"]))
    else:
        builder = builder.aggregate(
            list(spec["group_by"]),
            [_make_agg(kind, column, alias) for kind, column, alias in spec["aggs"]],
        )
        if spec["second"]:
            kind, column, alias = spec["second"]
            builder = builder.aggregate([], [_make_agg(kind, column, alias)])
    return builder.as_query(query_id, spec["name"])


def build_queries(catalog, case):
    return [
        build_query(catalog, spec, query_id)
        for query_id, spec in enumerate(case["queries"])
    ]


def derive_paces(plan, case, salt_extra=""):
    """Per-plan pace configuration (children at least as eager as parents).

    Paces are derived from the plan's own topology so the same case maps
    onto any plan shape (shared, unshared, decomposed) without storing
    sids -- which differ between plans -- in the case.
    """
    rng = random.Random(
        "paces:%d:%s" % (case.get("pace_salt", 0), salt_extra)
    )
    ceiling = max(1, int(case.get("pace_ceiling", 1)))
    paces = {}
    for subplan in plan.topological_order():
        upper = min(
            (paces[child.sid] for child in subplan.child_subplans()),
            default=ceiling,
        )
        paces[subplan.sid] = rng.randint(1, max(1, upper))
    return paces


def stream_config(case):
    spec = case.get("stream") or {}
    return StreamConfig(
        execution_overhead=spec.get("execution_overhead", 1.0),
        state_factor=spec.get("state_factor", 0.3),
        compact_buffers=spec.get("compact_buffers", True),
    )


# -- SQL rendering ----------------------------------------------------------------


def render_query_sql(spec):
    """Render a query spec into the SQL subset :mod:`repro.sqlparser` accepts."""
    source = "fact"
    for d in spec["joins"]:
        source += " JOIN dim%d ON f_k%d = d%d_id" % (d, d, d)
    where = ""
    if spec["filters"]:
        where = " WHERE " + " AND ".join(
            "%s %s %s" % (name, op, _sql_literal(value))
            for name, op, value in spec["filters"]
        )
    if spec["shape"] == "project":
        items = ", ".join(spec["project"])
        return "SELECT %s FROM %s%s" % (items, source, where)
    items = list(spec["group_by"])
    for kind, column, alias in spec["aggs"]:
        argument = column if column is not None else "f_v"
        items.append("%s(%s) AS %s" % (kind.upper(), argument, alias))
    sql = "SELECT %s FROM %s%s" % (", ".join(items), source, where)
    if spec["group_by"]:
        sql += " GROUP BY %s" % ", ".join(spec["group_by"])
    if spec["second"]:
        kind, column, alias = spec["second"]
        sql = "SELECT %s(%s) AS %s FROM (%s) AS t" % (
            kind.upper(), column, alias, sql,
        )
    return sql


def render_sql(case):
    return [render_query_sql(spec) for spec in case["queries"]]


def _sql_literal(value):
    if isinstance(value, bool):
        raise ValueError("boolean literals are not in the fuzz grammar")
    if isinstance(value, (int, float)):
        return repr(value)
    return "'%s'" % value
