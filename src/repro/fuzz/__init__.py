"""Grammar-driven differential fuzzer for the shared-execution engine.

See docs/FUZZING.md.  Entry points:

* ``python -m repro.fuzz --seed S --cases N [--shrink]`` -- campaign CLI
* :func:`repro.fuzz.run_campaign` -- the same loop, programmatically
* :func:`repro.fuzz.replay` -- re-run a saved case file
* :func:`repro.fuzz.grammar.generate_case` / :func:`repro.fuzz.oracles.run_case`
  -- one case at a time
"""

from .cli import CampaignResult, CaseFailure, main, replay, run_campaign
from .corpus import iter_corpus, load_case, replay_command, save_case
from .grammar import generate_case
from .oracles import CaseReport, run_case
from .shrinker import shrink

__all__ = [
    "CampaignResult",
    "CaseFailure",
    "CaseReport",
    "generate_case",
    "iter_corpus",
    "load_case",
    "main",
    "replay",
    "replay_command",
    "run_campaign",
    "run_case",
    "save_case",
    "shrink",
]
