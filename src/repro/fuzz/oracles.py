"""Differential oracles: one fuzz case, several independent executions.

Every case runs through multiple pipelines that must agree:

``unshared``
    each query as its own plan, everything at pace 1 -- the reference.
``shared-batched``
    the MQO-merged shared plan at a random (derived) pace configuration,
    batched hot path.
``shared-unbatched``
    the same plan and paces through the per-tuple reference path
    (``REPRO_ENGINE_UNBATCHED``); must be *bit-identical* to the batched
    run -- results, work, and every execution record.
``shared-pace1``
    the shared plan with every pace forced to 1 (one-shot batch
    recompute of every trigger).
``shared-columnar``
    the same plan and paces through the columnar vectorized backend
    (``engine_mode(columnar=True)``); results must be tolerance-close
    to the reference like every oracle, and *work accounting* must be
    exactly identical to the batched run (total work, every execution
    record, subplan final work).  Skipped when NumPy is unavailable or
    the kill switch is set.
``shared-columnar-vec``
    the columnar backend again with ``SCALAR_PROBE_MAX`` forced to 0, so
    the join's vectorized arange/repeat probe runs even on fuzz-sized
    batches (the default adaptive threshold would pick the scalar probe
    for them).  Same exactness contract as ``shared-columnar``.
``shared-columnar-nofuse``
    the columnar backend with fused kernel codegen disabled
    (``engine_mode(fusion=False)``), so every filter/projection/aggregate
    input runs through the per-expression closure chain that the
    generated kernels replace.  Must be *bit-identical* to the fused
    ``shared-columnar`` run -- results, work, every execution record --
    because fusion is a purely physical optimization
    (:mod:`repro.physical.fused`); also held to the same exact work
    identity against the batched run.
``shared-arranged`` / ``shared-private``
    the batched hot path with shared arrangements explicitly on and
    explicitly off (``engine_mode(arrangements=...)``).  The two runs
    must be *bit-identical* -- results, total work, every execution
    record and subplan final work -- because arrangements are a purely
    physical optimization (see :mod:`repro.engine.arrangements`).
``service-private``
    when the case exercises the service, the same register/churn/dropout
    sequence is replayed with arrangements off and the final window must
    be bit-identical to the ``service`` oracle's.
``decomposed``
    optionally, the shared plan after a random two-way decomposition
    (:func:`repro.core.regenerate.apply_split`) of one shared subplan,
    at the split's inherited paces.
``sql``
    optionally, the same queries rendered to SQL text, re-parsed through
    :mod:`repro.sqlparser`, and run unshared at pace 1.
``service``
    optionally, the whole batch registered into a long-running
    :class:`~repro.service.core.QueryService`, some queries deregistered
    after a trigger window (the case's ``dropouts``), and the *final*
    window's run compared against the reference for the surviving
    queries.  This fuzzes registration churn, incremental re-merge with
    dense-slot renumbering and the carry of calibrated state.

Divergence in net query results (tolerance-based multiset comparison,
:mod:`repro.engine.compare`), in WorkMeter invariants, or in the *class*
of raised :class:`~repro.errors.ReproError` is a failure.  A ReproError
raised consistently by every oracle is a *rejected* case (the generator
built something invalid) -- noted, but not a bug.  Exceptions outside
the ReproError hierarchy propagate to the campaign loop, which treats
them as crash failures.
"""

import random

from ..core import pace as pace_mod
from ..engine.compare import REL_TOL, ABS_TOL, result_diff, results_close
from ..engine.executor import PlanExecutor
from ..errors import OptimizationError, ReproError
from ..mqo.merge import MQOOptimizer, build_unshared_plan
from ..physical.hotpath import columnar_available, engine_mode
from . import grammar

#: relative slack allowed on total_work vs the sum of execution records
WORK_SUM_TOL = 1e-6


class OracleOutcome:
    """One oracle's execution: a run (plus its plan/paces) or an error."""

    __slots__ = ("name", "result", "plan", "paces", "error")

    def __init__(self, name, result=None, plan=None, paces=None, error=None):
        self.name = name
        self.result = result
        self.plan = plan
        self.paces = paces
        self.error = error

    def __repr__(self):
        state = "error=%r" % self.error if self.error is not None else "ok"
        return "OracleOutcome(%r, %s)" % (self.name, state)


class CaseReport:
    """Verdict for one case: ``ok`` / ``rejected`` / ``fail`` + details."""

    __slots__ = ("case", "status", "failures", "oracles")

    def __init__(self, case, status, failures, oracles):
        self.case = case
        self.status = status
        self.failures = failures
        self.oracles = oracles

    @property
    def ok(self):
        return self.status in ("ok", "rejected")

    def describe(self):
        lines = [
            "case seed=%s index=%s: %s"
            % (self.case.get("seed"), self.case.get("index"), self.status)
        ]
        lines.extend("  - %s" % failure for failure in self.failures)
        return "\n".join(lines)

    def __repr__(self):
        return "CaseReport(%s, %d failure(s))" % (self.status, len(self.failures))


def run_case(case, case_path=None, rel_tol=REL_TOL, abs_tol=ABS_TOL):
    """Execute every applicable oracle for ``case`` and compare them."""
    seed = case.get("seed")
    catalog = grammar.build_catalog(case)
    config = grammar.stream_config(case)
    try:
        queries = grammar.build_queries(catalog, case)
    except ReproError as exc:
        raise exc.attach_fuzz_context(seed=seed, case_path=case_path)

    outcomes = {}

    def attempt(name, fn):
        try:
            result, plan, paces = fn()
        except ReproError as exc:
            exc.attach_fuzz_context(seed=seed, case_path=case_path)
            outcomes[name] = OracleOutcome(name, error=exc)
        else:
            outcomes[name] = OracleOutcome(
                name, result=result, plan=plan, paces=paces
            )
        return outcomes[name]

    def run_unshared():
        plan = build_unshared_plan(catalog, queries)
        paces = {subplan.sid: 1 for subplan in plan.subplans}
        return PlanExecutor(plan, config).run(paces), plan, paces

    reference = attempt("unshared", run_unshared)

    shared_state = {}

    def run_shared(batched=None, pace1=False, columnar=False,
                   probe_max=None, arranged=None, fusion=None):
        def runner():
            if "plan" not in shared_state:
                shared_state["plan"] = MQOOptimizer(catalog).build_shared_plan(
                    queries
                )
                shared_state["paces"] = grammar.derive_paces(
                    shared_state["plan"], case
                )
            plan = shared_state["plan"]
            paces = (
                {subplan.sid: 1 for subplan in plan.subplans}
                if pace1
                else shared_state["paces"]
            )

            def execute():
                if columnar:
                    from ..physical import columnar as columnar_mod

                    saved = columnar_mod.SCALAR_PROBE_MAX
                    if probe_max is not None:
                        columnar_mod.SCALAR_PROBE_MAX = probe_max
                    try:
                        with engine_mode(batched=True, columnar=True,
                                         fusion=fusion):
                            return PlanExecutor(plan, config).run(paces)
                    finally:
                        columnar_mod.SCALAR_PROBE_MAX = saved
                if batched is None:
                    return PlanExecutor(plan, config).run(paces)
                with engine_mode(batched=batched):
                    return PlanExecutor(plan, config).run(paces)

            if arranged is None:
                result = execute()
            else:
                with engine_mode(arrangements=arranged):
                    result = execute()
            return result, plan, paces

        return runner

    attempt("shared-batched", run_shared(batched=True))
    attempt("shared-unbatched", run_shared(batched=False))
    attempt("shared-pace1", run_shared(pace1=True))
    attempt("shared-arranged", run_shared(batched=True, arranged=True))
    attempt("shared-private", run_shared(batched=True, arranged=False))
    if columnar_available():
        # default thresholds (scalar probe on fuzz-sized batches), plus a
        # forced-vectorized run so the arange/repeat probe is fuzzed too
        attempt("shared-columnar", run_shared(columnar=True))
        attempt("shared-columnar-vec",
                run_shared(columnar=True, probe_max=0))
        attempt("shared-columnar-nofuse",
                run_shared(columnar=True, fusion=False))

    if case.get("decompose") and "plan" in shared_state:
        target = _decomposition_target(shared_state["plan"], case["decompose"])
        if target is not None:

            def run_decomposed():
                from ..core.regenerate import apply_split

                sid, partitions = target
                new_plan, initial_paces = apply_split(
                    shared_state["plan"], shared_state["paces"], sid, partitions
                )
                pace_mod.validate_parent_child(new_plan, initial_paces)
                # pace configurations across a decomposition cover
                # different sid sets; the comparison must refuse cleanly
                # (this used to escape as a raw KeyError)
                try:
                    pace_mod.is_eagerer_or_equal(
                        initial_paces, shared_state["paces"]
                    )
                except OptimizationError:
                    pass
                result = PlanExecutor(new_plan, config).run(initial_paces)
                return result, new_plan, initial_paces

            attempt("decomposed", run_decomposed)

    if case.get("use_sql"):

        def run_sql():
            from ..sqlparser.lower import parse_query

            sql_queries = [
                parse_query(catalog, text, query_id, "s%d" % query_id)
                for query_id, text in enumerate(grammar.render_sql(case))
            ]
            plan = build_unshared_plan(catalog, sql_queries)
            paces = {subplan.sid: 1 for subplan in plan.subplans}
            return PlanExecutor(plan, config).run(paces), plan, paces

        attempt("sql", run_sql)

    service_slots = {}
    service_conservation = []
    if case.get("service"):

        def run_service(collect=True, arranged=None):
            def runner():
                from fractions import Fraction

                from ..core.optimizer import OptimizerConfig
                from ..service.core import QueryService

                spec = case["service"]
                svc = QueryService(
                    lambda window: grammar.build_catalog(case),
                    OptimizerConfig(
                        max_pace=max(1, int(case.get("pace_ceiling", 1))),
                        stream_config=config,
                    ),
                )

                def drive():
                    for query in queries:
                        svc.register(
                            query, "t%d" % (query.query_id % 2),
                            spec.get("goal", 50.0),
                        )
                    for _ in range(max(1, int(spec.get("windows", 2))) - 1):
                        svc.run_window()
                    for qid in spec.get("dropouts", ()):
                        # the shrinker mutates cases freely: only drop
                        # queries that are actually live, and never the
                        # last one
                        if qid in svc.registrations and len(svc.registrations) > 1:
                            svc.deregister(qid)
                    return svc.run_window(collect_results=True)

                if arranged is None:
                    outcome = drive()
                else:
                    with engine_mode(arrangements=arranged):
                        outcome = drive()
                if not collect:
                    return outcome.run, svc.plan, svc.paces
                service_slots.update(svc.slots)
                # attribution conservation oracle: the ledger's own exact
                # re-check, plus an independent rational re-sum of the final
                # window against the measured per-subplan WorkMeter totals --
                # the ledger can never silently leak or double-count work
                # across register/churn/dropout sequences
                service_conservation.extend(
                    "service attribution: " + failure
                    for failure in svc.attribution.check_conservation()
                )
                _, shares = svc.attribution.windows[-1]
                attributed = sum(shares.values(), Fraction(0))
                served = {
                    subplan.sid for subplan in svc.plan.subplans
                    if subplan.query_ids()
                }
                measured = sum(
                    (
                        Fraction(work)
                        for sid, work in outcome.run.subplan_total_work.items()
                        if sid in served
                    ),
                    Fraction(0),
                )
                if attributed != measured:
                    service_conservation.append(
                        "service attribution: final window attributed %s != "
                        "measured %s" % (attributed, measured)
                    )
                return outcome.run, svc.plan, svc.paces

            return runner

        attempt("service", run_service())
        attempt("service-private", run_service(collect=False, arranged=False))

    failures = _verdict(
        case, queries, outcomes, reference, rel_tol, abs_tol, service_slots
    )
    if failures is REJECTED:
        return CaseReport(case, "rejected", [], outcomes)
    failures = list(failures) + service_conservation
    status = "fail" if failures else "ok"
    return CaseReport(case, status, failures, outcomes)


REJECTED = object()


def _decomposition_target(plan, spec):
    """Pick (sid, two-way qid partition) for the case's decompose choice."""
    candidates = [
        subplan
        for subplan in sorted(plan.shared_subplans(), key=lambda s: s.sid)
        if len(subplan.query_ids()) >= 2
    ]
    if not candidates:
        return None
    subplan = candidates[spec.get("rank", 0) % len(candidates)]
    qids = sorted(subplan.query_ids())
    rng = random.Random("split:%d" % spec.get("salt", 0))
    rng.shuffle(qids)
    cut = rng.randint(1, len(qids) - 1)
    return subplan.sid, [tuple(sorted(qids[:cut])), tuple(sorted(qids[cut:]))]


def _verdict(case, queries, outcomes, reference, rel_tol, abs_tol,
             service_slots=None):
    failures = []
    if reference.error is not None:
        ref_class = type(reference.error)
        divergent = [
            "%s raised %s but the reference raised %s: %s"
            % (name, type(o.error).__name__ if o.error else "nothing",
               ref_class.__name__, reference.error)
            for name, o in sorted(outcomes.items())
            if name != "unshared"
            and (o.error is None or type(o.error) is not ref_class)
        ]
        if divergent:
            return divergent
        return REJECTED

    for name, outcome in sorted(outcomes.items()):
        if outcome.error is not None:
            failures.append(
                "oracle %s raised %s while the reference succeeded: %s"
                % (name, type(outcome.error).__name__, outcome.error)
            )
            continue
        failures.extend(_check_invariants(name, outcome))
        if name == "unshared":
            continue
        if name in ("service", "service-private"):
            # the service renumbers external ids onto dense slots and
            # deregistered queries have no final-window result: compare
            # only the survivors, through the slot map
            slots = service_slots or {}
            failures.extend(
                _compare_results(
                    name, outcome.result, reference.result,
                    [q for q in queries if q.query_id in slots],
                    rel_tol, abs_tol, qid_map=slots,
                )
            )
            continue
        failures.extend(
            _compare_results(
                name, outcome.result, reference.result, queries,
                rel_tol, abs_tol,
            )
        )

    batched = outcomes.get("shared-batched")
    unbatched = outcomes.get("shared-unbatched")
    if (
        batched is not None and unbatched is not None
        and batched.error is None and unbatched.error is None
    ):
        failures.extend(_check_bit_identity(batched.result, unbatched.result))

    for oracle in ("shared-columnar", "shared-columnar-vec",
                   "shared-columnar-nofuse"):
        columnar = outcomes.get(oracle)
        if (
            batched is not None and columnar is not None
            and batched.error is None and columnar.error is None
        ):
            failures.extend(
                _check_work_identity(columnar.result, batched.result)
            )

    # arrangements are a physical optimization: on vs off must be exact
    for left_name, right_name, pair_label in (
        ("shared-arranged", "shared-private", "arrangements"),
        ("shared-columnar", "shared-columnar-nofuse", "fusion"),
        ("service", "service-private", "arrangements"),
    ):
        left = outcomes.get(left_name)
        right = outcomes.get(right_name)
        if (
            left is not None and right is not None
            and left.error is None and right.error is None
        ):
            failures.extend(
                _check_bit_identity(
                    left.result, right.result, label=pair_label,
                    names=(left_name, right_name),
                )
            )
    return failures


def _check_invariants(name, outcome):
    """WorkMeter bookkeeping invariants every run must satisfy."""
    failures = []
    run, plan, paces = outcome.result, outcome.plan, outcome.paces
    record_sum = sum(record.work for record in run.records)
    slack = WORK_SUM_TOL * max(1.0, abs(run.total_work))
    if abs(run.total_work - record_sum) > slack:
        failures.append(
            "%s: total_work %.9g != sum of execution records %.9g"
            % (name, run.total_work, record_sum)
        )
    for record in run.records:
        if record.work < 0 or record.latency_work < 0:
            failures.append(
                "%s: negative work in record sid=%d (work=%.9g latency=%.9g)"
                % (name, record.sid, record.work, record.latency_work)
            )
            break
    sids = {subplan.sid for subplan in plan.subplans}
    if set(run.subplan_final_work) != sids:
        failures.append(
            "%s: final work recorded for sids %s, plan has %s"
            % (name, sorted(run.subplan_final_work), sorted(sids))
        )
    expected_records = sum(paces.values())
    if len(run.records) != expected_records:
        failures.append(
            "%s: %d execution records for %d scheduled executions"
            % (name, len(run.records), expected_records)
        )
    expected_qids = set(plan.query_ids())
    if set(run.query_results) != expected_qids:
        failures.append(
            "%s: results for qids %s, plan has %s"
            % (name, sorted(run.query_results), sorted(expected_qids))
        )
    return failures


def _compare_results(name, run, reference, queries, rel_tol, abs_tol,
                     qid_map=None):
    failures = []
    for query in queries:
        qid = query.query_id
        left_qid = qid_map[qid] if qid_map is not None else qid
        left = run.query_results.get(left_qid, {})
        right = reference.query_results.get(qid, {})
        if results_close(left, right, rel_tol=rel_tol, abs_tol=abs_tol):
            continue
        only_left, only_right = result_diff(
            left, right, rel_tol=rel_tol, abs_tol=abs_tol
        )
        failures.append(
            "%s: query %s (qid %d) diverges from reference: "
            "%d row(s) only in %s %r; %d row(s) only in reference %r"
            % (
                name, query.name, qid, len(only_left), name,
                only_left[:4], len(only_right), only_right[:4],
            )
        )
    return failures


def _check_bit_identity(batched, unbatched, label="hotpath",
                        names=("batched", "unbatched")):
    """Two runs that must match *exactly* (results, work, records)."""
    failures = []
    left_name, right_name = names
    if batched.query_results != unbatched.query_results:
        failures.append(
            "%s: %s and %s query results are not bit-identical"
            % (label, left_name, right_name)
        )
    if batched.total_work != unbatched.total_work:
        failures.append(
            "%s: total_work differs %s=%r %s=%r"
            % (label, left_name, batched.total_work,
               right_name, unbatched.total_work)
        )
    batched_records = [
        (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
        for r in batched.records
    ]
    unbatched_records = [
        (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
        for r in unbatched.records
    ]
    if batched_records != unbatched_records:
        failures.append(
            "%s: execution records differ between %s and %s"
            % (label, left_name, right_name)
        )
    if batched.subplan_final_work != unbatched.subplan_final_work:
        failures.append(
            "%s: subplan final work differs between %s and %s"
            % (label, left_name, right_name)
        )
    return failures


def _check_work_identity(columnar, batched):
    """Columnar work accounting must match the batched path *exactly*.

    Query results are compared against the reference with tolerance like
    any oracle (float segment sums may associate differently), but every
    WorkMeter-derived number is charged from array lengths that must
    equal the batched path's list lengths, so the slightest drift here
    means a dropped/duplicated delta or a divergent emission decision.
    """
    failures = []
    if columnar.total_work != batched.total_work:
        failures.append(
            "columnar: total_work differs columnar=%r batched=%r"
            % (columnar.total_work, batched.total_work)
        )
    columnar_records = [
        (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
        for r in columnar.records
    ]
    batched_records = [
        (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
        for r in batched.records
    ]
    if columnar_records != batched_records:
        failures.append(
            "columnar: execution records differ from the batched path"
        )
    if columnar.subplan_final_work != batched.subplan_final_work:
        failures.append(
            "columnar: subplan final work differs from the batched path"
        )
    return failures
