"""Observability: span tracing, metrics, and the optimizer decision log.

The optimizer pipeline (split -> greedy pace search -> decomposition ->
regenerate) and the incremental engine are instrumented with three
coordinated collectors:

* :mod:`repro.obs.trace` -- a span tracer whose export is Chrome
  trace-event JSON, so any run opens directly in Perfetto / chrome://tracing;
* :mod:`repro.obs.metrics` -- a registry of counters / gauges / histograms
  (memo hits, calibration-cache traffic, per-subplan work units, buffer
  occupancy);
* :mod:`repro.obs.declog` -- a structured JSON-lines log of every
  optimizer decision (pace moves with incrementability scores, clustering
  merges with sharing benefits, decomposition adoptions, plan repairs),
  each record stamped with a stable ``run`` id so shard-merged logs sort
  deterministically by ``(run, seq)``.

Three further modules build on the collectors without joining the
session: :mod:`repro.obs.slack` (the per-query deadline-headroom
ledger), :mod:`repro.obs.attribution` (exact shared-work attribution
with a rational-arithmetic conservation invariant) and
:mod:`repro.obs.export` (Prometheus text / JSON snapshot / HTML
dashboard / regret report, plus a small live HTTP endpoint).

All three hang off one process-wide :class:`ObservabilitySession`,
``OBS``.  Observability is **off by default**: every instrumented call
site is guarded by a single attribute check (``if OBS.enabled:``), so the
disabled path costs one dictionary-free boolean test and nothing is
allocated, formatted or recorded.  ``enable()`` switches the whole
session on; worker processes of the parallel harness ship their collected
events back to the driver, which merges them in deterministic submission
order (:func:`drain_worker_payload` / :func:`absorb_worker_payload`).

See ``docs/OBSERVABILITY.md`` for the span names, the metric catalog and
the decision-log schema.
"""

import logging

from .declog import DecisionLog
from .metrics import MetricsRegistry
from .trace import Tracer


class ObservabilitySession:
    """Process-wide holder of the tracer, registry and decision log.

    ``enabled`` is the single hot-path guard; when it is False the three
    collectors are None and instrumented code must not touch them.
    """

    __slots__ = ("enabled", "tracer", "metrics", "declog")

    def __init__(self):
        self.enabled = False
        self.tracer = None
        self.metrics = None
        self.declog = None

    def __repr__(self):
        if not self.enabled:
            return "ObservabilitySession(disabled)"
        return "ObservabilitySession(%d events, %d metrics, %d decisions)" % (
            len(self.tracer.events),
            len(self.metrics.snapshot()),
            len(self.declog.records),
        )


#: the process-wide session; import this and guard with ``if OBS.enabled:``
OBS = ObservabilitySession()


def enable(process_name=None):
    """Switch observability on (idempotent); returns the session.

    All three collectors are created together -- the export flags decide
    what gets written out, not what gets recorded, so one ``--trace`` run
    also carries its metrics block.
    """
    if not OBS.enabled:
        OBS.tracer = Tracer(process_name=process_name)
        OBS.metrics = MetricsRegistry()
        # run ids are stamped by the harness per unit of work (set_run);
        # the default stays "main" everywhere -- a process-derived id
        # would leak worker pids into records and break bit-identity
        OBS.declog = DecisionLog()
        OBS.enabled = True
    return OBS


def disable():
    """Switch observability off and drop everything collected."""
    OBS.enabled = False
    OBS.tracer = None
    OBS.metrics = None
    OBS.declog = None


def is_enabled():
    return OBS.enabled


def reset():
    """Clear collected data but keep the session enabled (per-benchmark scoping)."""
    if OBS.enabled:
        OBS.tracer.clear()
        OBS.metrics.clear()
        OBS.declog.clear()


# -- worker <-> driver shipping (repro.harness.parallel) -------------------------

def drain_worker_payload():
    """Collected observability data as one JSON-safe dict, then cleared.

    Worker processes call this after each cell so the driver can merge
    per-cell payloads in submission order -- which keeps the merged event
    sequence deterministic even though cells finish in any order.
    Returns None when observability is disabled.
    """
    if not OBS.enabled:
        return None
    payload = {
        "events": OBS.tracer.drain_events(),
        "metrics": OBS.metrics.snapshot(),
        "declog": OBS.declog.records[:],
    }
    OBS.metrics.clear()
    OBS.declog.clear()
    return payload


def absorb_worker_payload(payload):
    """Merge one worker payload into the driver session (order-preserving)."""
    if payload is None or not OBS.enabled:
        return
    OBS.tracer.add_events(payload.get("events", ()))
    OBS.metrics.merge_snapshot(payload.get("metrics", {}))
    OBS.declog.extend(payload.get("declog", ()))


# -- logging ---------------------------------------------------------------------

def configure_logging(level="info", stream=None):
    """Configure the ``repro`` logger hierarchy (the CLI's ``--log-level``).

    Accepts a level name ("debug", "info", ...) or a numeric level.
    Installs a single stderr handler on the ``repro`` root logger; calling
    again replaces the level, not the handler.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
        ))
        logger.addHandler(handler)
    return logger
