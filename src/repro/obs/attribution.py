"""Shared-work attribution: who pays for a shared subplan, exactly.

A shared subplan does its work once for all its beneficiary queries, so
per-tenant accounting has to *split* each subplan's measured WorkMeter
total across the queries it serves.  An even split ignores that a heavy
query shares an operator with a light one; this ledger splits
proportionally to each query's **calibrated solo cost** of that subplan
(:meth:`repro.cost.memo.PlanCostModel.solo_batch`'s per-subplan work) --
the same denominator the paper's relative constraints use -- so a bill
reflects what the query *would* have paid running alone.

Conservation is the invariant that makes bills trustworthy: the
attributed shares of one subplan must sum to exactly its measured work,
and the per-query totals of one window must sum to exactly the window's
measured total.  Floating-point proportional splits cannot promise that
(``fl(a+b) != a+b``), so all share arithmetic here runs in
:class:`fractions.Fraction`: ``work * w_i / sum(w)`` summed over ``i``
is *identically* ``work`` in rationals.  Shares are only converted to
float at the reporting boundary, and the conservation check compares the
exact rationals -- "bit-for-bit" means equality of the underlying
rational sums anchored on the measured per-subplan totals, not a
tolerance.
"""

from fractions import Fraction


def split_work(work, weights):
    """Split one measured ``work`` value over ``(qid, weight)`` pairs.

    Returns ``{qid: Fraction}`` whose values sum to exactly
    ``Fraction(work)``.  Zero/negative total weight degrades to an even
    split (every beneficiary equally likely); an empty ``weights`` list
    returns ``{}`` (nobody to bill -- the caller decides what that means).
    """
    weights = list(weights)
    if not weights:
        return {}
    total = Fraction(0)
    exact = []
    for qid, weight in weights:
        w = Fraction(weight) if weight > 0 else Fraction(0)
        exact.append((qid, w))
        total += w
    if total == 0:
        share = Fraction(work) / len(exact)
        return {qid: share for qid, _ in exact}
    work = Fraction(work)
    return {qid: work * w / total for qid, w in exact}


class ConservationError(AssertionError):
    """The attribution ledger leaked or double-counted work."""


class AttributionLedger:
    """Per-window ledger of exact shared-work attribution.

    One :meth:`record_window` call per trigger window; per-query and
    per-tenant running totals are kept as exact rationals.  JSON-facing
    views (:meth:`window_shares`, :meth:`to_dict`) convert to float at
    the boundary.
    """

    def __init__(self):
        #: ``[(window, {qid: Fraction}), ...]`` in record order
        self.windows = []
        #: exact running totals
        self.query_totals = {}
        self.tenant_totals = {}

    def record_window(self, window, subplan_work, beneficiaries, weight_of,
                      tenant_of=None):
        """Attribute one window's measured work; returns ``{qid: Fraction}``.

        Parameters
        ----------
        subplan_work:
            ``{sid: measured_total_work}`` (``RunResult.subplan_total_work``).
        beneficiaries:
            ``sid -> iterable of qids`` served by that subplan.
        weight_of:
            ``(sid, qid) -> solo-cost weight`` (calibrated per-subplan
            solo work; any non-positive weight counts as zero).
        tenant_of:
            optional ``qid -> tenant`` for per-tenant running totals.
        """
        query_shares = {}
        measured = Fraction(0)
        for sid in sorted(subplan_work):
            work = subplan_work[sid]
            qids = sorted(beneficiaries(sid))
            if not qids:
                continue
            measured += Fraction(work)
            shares = split_work(work, [(qid, weight_of(sid, qid)) for qid in qids])
            for qid, share in shares.items():
                query_shares[qid] = query_shares.get(qid, Fraction(0)) + share
        attributed = sum(query_shares.values(), Fraction(0))
        if attributed != measured:
            raise ConservationError(
                "window %s: attributed work %s != measured work %s"
                % (window, attributed, measured)
            )
        self.windows.append((window, query_shares))
        for qid, share in query_shares.items():
            self.query_totals[qid] = (
                self.query_totals.get(qid, Fraction(0)) + share
            )
            if tenant_of is not None:
                tenant = tenant_of(qid)
                self.tenant_totals[tenant] = (
                    self.tenant_totals.get(tenant, Fraction(0)) + share
                )
        return query_shares

    def check_conservation(self):
        """Re-verify every recorded window; returns failure strings.

        The running per-query totals must also equal the rational sum of
        the per-window shares -- a mutated ledger cannot pass silently.
        """
        failures = []
        recomputed = {}
        for window, shares in self.windows:
            for qid, share in shares.items():
                recomputed[qid] = recomputed.get(qid, Fraction(0)) + share
        for qid in set(recomputed) | set(self.query_totals):
            if recomputed.get(qid, Fraction(0)) != self.query_totals.get(
                qid, Fraction(0)
            ):
                failures.append(
                    "query %s: running total %s != recomputed %s"
                    % (qid, self.query_totals.get(qid), recomputed.get(qid))
                )
        return failures

    def window_shares(self, index=-1):
        """One window's shares as floats: ``(window, {qid: work})``."""
        window, shares = self.windows[index]
        return window, {qid: float(share) for qid, share in shares.items()}

    def to_dict(self):
        """JSON view: float totals; conservation re-checked exactly."""
        return {
            "windows": len(self.windows),
            "conserved": not self.check_conservation(),
            "query_totals": {
                str(qid): float(total)
                for qid, total in sorted(self.query_totals.items())
            },
            "tenant_totals": {
                tenant: float(total)
                for tenant, total in sorted(self.tenant_totals.items())
            },
        }

    def __len__(self):
        return len(self.windows)

    def __repr__(self):
        return "AttributionLedger(%d windows, %d queries)" % (
            len(self.windows), len(self.query_totals)
        )
