"""The optimizer decision log: structured JSON-lines records.

Every consequential choice the optimizer pipeline makes is recorded as
one dict with an ``event`` kind, a monotonically increasing ``seq``, a
stable ``run`` id, and event-specific fields:

* ``pace_move`` / ``pace_reject`` -- the greedy ascending search's
  accepted move (with its incrementability score and extra total work)
  and the evaluated-but-outscored or structurally filtered candidates;
* ``pace_search_done`` -- termination, with iteration count and whether
  the constraints were met;
* ``pace_decrease`` -- one step of the descending correction;
* ``cluster_merge`` -- one bottom-up clustering merge with its sharing
  benefit (Eq. 4) and the merged partition's selected pace;
* ``split_decision`` -- the final partitioning one
  :class:`~repro.core.split.LocalSplitOptimizer` chose;
* ``decompose_adopt`` / ``decompose_reject`` -- whether the full-plan
  walk adopted a candidate decomposition, with estimated work before and
  after;
* ``repair_split`` / ``repair_merge`` -- plan-regeneration surgery:
  parents split along partition boundaries and single-consumer chains
  merged back;
* ``service_admission`` / ``service_deregister`` -- the long-running
  service's registration churn: every admission decision (admitted /
  rejected / queued, with its reason) and every removal;
* ``service_plan_update`` -- one incremental re-merge, with the subplan
  count and the sids reused versus recalibrated;
* ``service_reoptimize`` -- one churn-triggered re-search, with its
  scope (``incremental`` vs ``full``), the subplans reused versus
  recalibrated, memo rows carried and search iterations;
* ``service_trigger`` -- one trigger-window execution with its total
  work and live query count;
* ``service_slack`` -- one window's slack-ledger roll-up: minimum
  deadline headroom across live queries and how many are projected to
  miss their SLO if the current drift continues.

Ordering across processes
-------------------------

``seq`` alone is only unique within one log instance.  Shard-merged
logs from ``--jobs N`` runs are re-sequenced in absorption order, which
the harness keeps identical to the serial replay -- but a *consumer*
joining logs from several exports still needs a global order.  For that
every record also carries a ``run`` id: the harness stamps the active
logical unit of work (``shard-0``, ``cell-3``, ...) via :meth:`set_run`
from the *same* code path in serial and parallel runs, so the composite
key ``(run, seq)`` sorts any merged log deterministically -- and
bit-identically at every job count.

The log is plain data: consumers filter ``records`` in memory or read
the exported ``.jsonl`` one object per line.
"""

import json

#: the run id of records logged outside any harness-stamped unit of work
DEFAULT_RUN = "main"


class DecisionLog:
    """An append-only list of decision records."""

    def __init__(self, run_id=None):
        self.records = []
        self._seq = 0
        self.run_id = run_id or DEFAULT_RUN

    def set_run(self, run_id):
        """Stamp subsequent records with ``run_id``; returns the previous id.

        The harness brackets each logical unit of work (a shard replay, an
        experiment cell) with ``previous = log.set_run(...)`` /
        ``log.set_run(previous)`` so records sort globally by
        ``(run, seq)`` regardless of which process produced them.
        """
        previous = self.run_id
        self.run_id = run_id or DEFAULT_RUN
        return previous

    def log(self, event, **fields):
        """Record one decision; returns the record dict."""
        self._seq += 1
        record = {"seq": self._seq, "run": self.run_id, "event": event}
        record.update(fields)
        self.records.append(record)
        return record

    def extend(self, records):
        """Append records from a worker process, re-sequencing them.

        The worker's ``run`` stamps are preserved verbatim -- they name
        the unit of work, not the process -- so the merged log carries
        the same ``(run, event, fields)`` stream as a serial run, with
        ``seq`` renumbered into this log's single monotonic sequence.
        """
        for record in records:
            self._seq += 1
            merged = dict(record, seq=self._seq)
            merged.setdefault("run", DEFAULT_RUN)
            self.records.append(merged)

    def of_event(self, event):
        """All records of one event kind."""
        return [r for r in self.records if r["event"] == event]

    def clear(self):
        self.records = []
        self._seq = 0

    def export(self, path):
        """Write the log as JSON lines (one record per line)."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record, default=_jsonify) + "\n")
        return path

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return "DecisionLog(%d records)" % len(self.records)


def _jsonify(value):
    """Fallback serializer: tuples-of-qids etc. degrade to strings."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)
