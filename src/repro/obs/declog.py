"""The optimizer decision log: structured JSON-lines records.

Every consequential choice the optimizer pipeline makes is recorded as
one dict with an ``event`` kind, a monotonically increasing ``seq``, and
event-specific fields:

* ``pace_move`` / ``pace_reject`` -- the greedy ascending search's
  accepted move (with its incrementability score and extra total work)
  and the evaluated-but-outscored or structurally filtered candidates;
* ``pace_search_done`` -- termination, with iteration count and whether
  the constraints were met;
* ``pace_decrease`` -- one step of the descending correction;
* ``cluster_merge`` -- one bottom-up clustering merge with its sharing
  benefit (Eq. 4) and the merged partition's selected pace;
* ``split_decision`` -- the final partitioning one
  :class:`~repro.core.split.LocalSplitOptimizer` chose;
* ``decompose_adopt`` / ``decompose_reject`` -- whether the full-plan
  walk adopted a candidate decomposition, with estimated work before and
  after;
* ``repair_split`` / ``repair_merge`` -- plan-regeneration surgery:
  parents split along partition boundaries and single-consumer chains
  merged back;
* ``service_admission`` / ``service_deregister`` -- the long-running
  service's registration churn: every admission decision (admitted /
  rejected / queued, with its reason) and every removal;
* ``service_plan_update`` -- one incremental re-merge, with the subplan
  count and the sids reused versus recalibrated;
* ``service_reoptimize`` -- one churn-triggered re-search, with its
  scope (``incremental`` vs ``full``), the subplans reused versus
  recalibrated, memo rows carried and search iterations;
* ``service_trigger`` -- one trigger-window execution with its total
  work and live query count.

The log is plain data: consumers filter ``records`` in memory or read
the exported ``.jsonl`` one object per line.
"""

import json


class DecisionLog:
    """An append-only list of decision records."""

    def __init__(self):
        self.records = []
        self._seq = 0

    def log(self, event, **fields):
        """Record one decision; returns the record dict."""
        self._seq += 1
        record = {"seq": self._seq, "event": event}
        record.update(fields)
        self.records.append(record)
        return record

    def extend(self, records):
        """Append records from a worker process, re-sequencing them."""
        for record in records:
            self._seq += 1
            merged = dict(record, seq=self._seq)
            self.records.append(merged)

    def of_event(self, event):
        """All records of one event kind."""
        return [r for r in self.records if r["event"] == event]

    def clear(self):
        self.records = []
        self._seq = 0

    def export(self, path):
        """Write the log as JSON lines (one record per line)."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record, default=_jsonify) + "\n")
        return path

    def __len__(self):
        return len(self.records)

    def __repr__(self):
        return "DecisionLog(%d records)" % len(self.records)


def _jsonify(value):
    """Fallback serializer: tuples-of-qids etc. degrade to strings."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)
