"""Telemetry export: Prometheus text, JSON snapshots, dashboard, regret.

:class:`TelemetryExporter` turns the observability session's collected
state (service reports, metrics snapshots, decision logs) into the
formats operators actually consume:

* :meth:`~TelemetryExporter.prometheus` -- the Prometheus text
  exposition format (``# TYPE`` lines, ``_bucket{le=...}`` series from
  the registry's histogram buckets), scrape-ready;
* :meth:`~TelemetryExporter.snapshot` -- one JSON document with the
  service summary, ring-buffered time series, slack/attribution state
  and the regret report;
* :func:`render_dashboard` -- a static, dependency-free HTML page with
  inline SVG sparklines; the full JSON snapshot is embedded in the page
  (:func:`extract_dashboard_snapshot` recovers it byte-exactly, which is
  also the round-trip CI check);
* :class:`TelemetryServer` -- a small threaded HTTP server exposing
  ``/metrics``, ``/snapshot.json`` and the dashboard at ``/`` from a
  live exporter.

The **regret report** (:func:`regret_report`) closes part of ROADMAP
item 4: for every ``pace_*`` decision-log record it reconstructs the
candidate set the greedy search saw, re-scores it with the measured
feedback correction factors (the oracle: what the search *would* have
picked had the cost model already known the measured work), and reports
the extra-work regret of each accepted move.  Every pace-search record's
``seq`` appears in ``covered_seqs`` -- full decision coverage is a CI
assertion.

Nothing here reads wall clocks or randomness: the same inputs render the
same bytes, so exports from serial and sharded runs stay comparable.
"""

import json
import re

from .metrics import cumulative_buckets, metric_key

#: incrementability fields serialize infinity as the string "inf"
_INF = float("inf")


# -- time series -----------------------------------------------------------------

class TimeSeriesRing:
    """A bounded ``(x, y)`` series; old samples fall off the front."""

    __slots__ = ("capacity", "samples", "dropped")

    def __init__(self, capacity=512):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1, got %r" % (capacity,))
        self.capacity = capacity
        self.samples = []
        self.dropped = 0

    def append(self, x, y):
        self.samples.append((x, y))
        if len(self.samples) > self.capacity:
            del self.samples[0]
            self.dropped += 1

    def to_dict(self):
        return {
            "samples": [[x, y] for x, y in self.samples],
            "dropped": self.dropped,
        }

    def __len__(self):
        return len(self.samples)

    def __repr__(self):
        return "TimeSeriesRing(%d/%d samples, %d dropped)" % (
            len(self.samples), self.capacity, self.dropped
        )


# -- Prometheus text exposition ---------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name):
    """``engine.execution.work`` -> ``repro_engine_execution_work``."""
    return "repro_" + _PROM_BAD.sub("_", name)


def _parse_metric_key(key):
    """Invert :func:`repro.obs.metrics.metric_key` -> ``(name, labels)``."""
    if key.endswith("}") and "{" in key:
        name, _, rest = key.partition("{")
        labels = {}
        for item in rest[:-1].split(","):
            label, _, value = item.partition("=")
            labels[label] = value
        return name, labels
    return key, {}


def _prom_labels(labels):
    if not labels:
        return ""
    rendered = ",".join(
        '%s="%s"' % (k, str(labels[k]).replace("\\", "\\\\").replace('"', '\\"'))
        for k in sorted(labels)
    )
    return "{%s}" % rendered


def _prom_number(value):
    if value is None:
        return "NaN"
    if value == _INF:
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot, extra_gauges=None):
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    ``extra_gauges`` is an optional ``{key: value}`` of synthetic gauges
    (service summary numbers) appended under their own families; keys use
    the registry's ``name{label=value}`` convention.
    """
    lines = []
    typed = set()

    def declare(family, kind):
        if family not in typed:
            typed.add(family)
            lines.append("# TYPE %s %s" % (family, kind))

    for key in sorted(snapshot):
        payload = snapshot[key]
        name, labels = _parse_metric_key(key)
        family = _prom_name(name)
        kind = payload.get("type")
        if kind == "counter":
            declare(family, "counter")
            lines.append(
                "%s%s %s" % (family, _prom_labels(labels),
                             _prom_number(payload.get("value", 0)))
            )
        elif kind == "gauge":
            declare(family, "gauge")
            lines.append(
                "%s%s %s" % (family, _prom_labels(labels),
                             _prom_number(payload.get("value", 0)))
            )
            if payload.get("max") is not None:
                declare(family + "_max", "gauge")
                lines.append(
                    "%s%s %s" % (family + "_max", _prom_labels(labels),
                                 _prom_number(payload["max"]))
                )
        elif kind == "histogram":
            declare(family, "histogram")
            for bound, running in cumulative_buckets(payload.get("buckets", ())):
                le = dict(labels)
                le["le"] = "+Inf" if bound == "+Inf" else _prom_number(bound)
                lines.append(
                    "%s_bucket%s %d" % (family, _prom_labels(le), running)
                )
            lines.append(
                "%s_sum%s %s" % (family, _prom_labels(labels),
                                 _prom_number(payload.get("sum", 0.0)))
            )
            lines.append(
                "%s_count%s %d" % (family, _prom_labels(labels),
                                   payload.get("count", 0))
            )
    for key in sorted(extra_gauges or {}):
        name, labels = _parse_metric_key(key)
        family = _prom_name(name)
        declare(family, "gauge")
        lines.append(
            "%s%s %s" % (family, _prom_labels(labels),
                         _prom_number(extra_gauges[key]))
        )
    return "\n".join(lines) + "\n"


# -- the regret report ------------------------------------------------------------

def _as_score(value):
    """Decision-log incrementability: the string "inf" means infinite."""
    if value == "inf":
        return _INF
    return float(value)


def _group_factor(group, factors):
    """Mean measured total-work correction factor of a moved pace group."""
    if not factors or not group:
        return 1.0
    picked = []
    for sid in group:
        entry = factors.get(sid)
        if entry is None:
            entry = factors.get(str(sid))
        if entry is not None:
            picked.append(float(entry[0]))
    if not picked:
        return 1.0
    return sum(picked) / len(picked)


def regret_report(records, feedback=None, feedback_by_run=None):
    """Per-decision regret of the greedy pace search vs. the oracle.

    For each accepted ``pace_move`` the candidate set is the move itself
    plus that iteration's ``pace_reject`` records.  Each candidate's
    logged ``(incrementability, extra_work)`` score is *corrected* with
    the measured feedback factors -- a subplan that measured 2x its
    estimate doubles the real extra work of making it eagerer and halves
    its real incrementability -- and the oracle is the corrected-score
    maximizer (the move the search would have made with measured costs).
    ``regret_work`` is the corrected extra-work gap between the chosen
    move and the oracle's (0.0 when they agree).

    ``feedback`` is a flat ``{sid: (total_factor, final_factor)}`` map;
    ``feedback_by_run`` maps a decision-log ``run`` id to such a map (the
    sharded service exports one per shard).  With neither, factors
    default to 1.0 and the report degrades to pure decision coverage.

    Every ``pace_*`` record's ``seq`` lands in ``covered_seqs`` exactly
    once -- descending corrections (``pace_decrease``) and terminal
    records are carried as zero-regret entries and search summaries.
    """
    decisions = []
    searches = []
    covered = []
    pending = {}  # (run, iteration) -> [reject records]

    def factors_for(run):
        if feedback_by_run is not None:
            return feedback_by_run.get(run, {})
        return feedback or {}

    def corrected(inc, extra, group, factors):
        factor = _group_factor(group, factors)
        inc = _as_score(inc)
        return (
            inc / factor if inc != _INF else _INF,
            float(extra) * factor,
            factor,
        )

    for record in records:
        event = record.get("event", "")
        if not event.startswith("pace_"):
            continue
        run = record.get("run", "main")
        seq = record.get("seq")
        covered.append(seq)
        if event == "pace_reject":
            pending.setdefault((run, record["iteration"]), []).append(record)
        elif event == "pace_move":
            factors = factors_for(run)
            rejected = pending.pop((run, record["iteration"]), [])
            chosen_inc, chosen_extra, factor = corrected(
                record["incrementability"], record["extra_work"],
                record.get("group", ()), factors,
            )
            candidates = [{
                "group": list(record.get("group", ())),
                "estimated_extra_work": float(record["extra_work"]),
                "corrected_extra_work": chosen_extra,
                "corrected_incrementability": chosen_inc,
                "factor": factor,
                "chosen": True,
            }]
            for reject in rejected:
                inc, extra, rfactor = corrected(
                    reject["incrementability"], reject["extra_work"],
                    reject.get("group", ()), factors,
                )
                candidates.append({
                    "group": list(reject.get("group", ())),
                    "estimated_extra_work": float(reject["extra_work"]),
                    "corrected_extra_work": extra,
                    "corrected_incrementability": inc,
                    "factor": rfactor,
                    "chosen": False,
                })
            # the oracle maximizes (corrected inc, -corrected extra); ties
            # favor the chosen move so agreement reports zero regret
            oracle = max(
                candidates,
                key=lambda c: (
                    c["corrected_incrementability"],
                    -c["corrected_extra_work"],
                    c["chosen"],
                ),
            )
            switched = not oracle["chosen"]
            decisions.append({
                "kind": "move",
                "run": run,
                "seq": seq,
                "iteration": record["iteration"],
                "chosen_group": candidates[0]["group"],
                "oracle_group": oracle["group"],
                "switched": switched,
                "regret_work": (
                    candidates[0]["corrected_extra_work"]
                    - oracle["corrected_extra_work"]
                    if switched else 0.0
                ),
                "candidates": candidates,
            })
        elif event == "pace_decrease":
            decisions.append({
                "kind": "decrease",
                "run": run,
                "seq": seq,
                "sid": record.get("sid"),
                "work_saved": record.get("work_saved", 0.0),
                "switched": False,
                "regret_work": 0.0,
            })
        else:  # pace_search_done / pace_exhausted / pace_decrease_done
            summary = {"run": run, "seq": seq, "event": event}
            for field in ("iterations", "met", "total_work", "unmet_queries"):
                if field in record:
                    summary[field] = record[field]
            searches.append(summary)
    # a reject whose move never landed (search aborted) still counts
    for (run, iteration), rejects in sorted(pending.items()):
        for reject in rejects:
            decisions.append({
                "kind": "orphan_reject",
                "run": run,
                "seq": reject.get("seq"),
                "iteration": iteration,
                "switched": False,
                "regret_work": 0.0,
            })
    switched = sum(1 for d in decisions if d["switched"])
    return {
        "decisions": decisions,
        "searches": searches,
        "covered_seqs": covered,
        "decision_count": len(decisions),
        "switched": switched,
        "total_regret_work": sum(
            max(0.0, d["regret_work"]) for d in decisions
        ),
    }


# -- the exporter -----------------------------------------------------------------

class TelemetryExporter:
    """Collects service reports + obs state; renders every export format."""

    def __init__(self, capacity=512):
        self.capacity = capacity
        self.series = {}
        self.summary = {}
        self.metrics_snapshot = {}
        self.slack = {}  # "shard/qid" -> latest slack entry
        self.attribution = {"conserved": True, "tenants": {}}
        self.regret = None

    def _ring(self, name, **labels):
        key = metric_key(name, labels)
        ring = self.series.get(key)
        if ring is None:
            ring = self.series[key] = TimeSeriesRing(self.capacity)
        return ring

    def ingest_report(self, report):
        """Absorb a :func:`~repro.harness.service.run_service_schedule` report."""
        self.summary = report.get("summary", {})
        for shard_report in report.get("shards", ()):
            shard = shard_report.get("shard", 0)
            for window in shard_report.get("windows", ()):
                self.ingest_window(window, shard=shard)
        return self

    def ingest_outcome(self, outcome, shard=0):
        """Absorb one live :class:`~repro.service.core.TriggerOutcome`."""
        self.ingest_window(outcome.to_dict(), shard=shard)
        return self

    def ingest_window(self, window, shard=0):
        w = window["window"]
        self._ring("service.window.total_work", shard=shard).append(
            w, window.get("total_work", 0.0)
        )
        for qid, entry in sorted((window.get("slack") or {}).items()):
            self._ring(
                "service.query.headroom_work", query=qid, shard=shard
            ).append(w, entry["headroom_work"])
            self.slack["%s/%s" % (shard, qid)] = dict(entry, window=w)
        attribution = window.get("attribution") or {}
        if not attribution.get("conserved", True):
            self.attribution["conserved"] = False
        for tenant, bucket in sorted((window.get("tenants") or {}).items()):
            work = bucket.get("work", 0.0)
            self._ring(
                "service.tenant.attributed_work", shard=shard, tenant=tenant
            ).append(w, work)
            totals = self.attribution["tenants"]
            totals[tenant] = totals.get(tenant, 0.0) + work
        return self

    def ingest_metrics(self, snapshot):
        self.metrics_snapshot = dict(snapshot)
        return self

    def ingest_declog(self, records, feedback=None, feedback_by_run=None):
        self.regret = regret_report(
            records, feedback=feedback, feedback_by_run=feedback_by_run
        )
        return self

    def snapshot(self):
        """One JSON-safe document with everything the exporter holds."""
        return {
            "summary": self.summary,
            "series": {
                key: self.series[key].to_dict() for key in sorted(self.series)
            },
            "metrics": self.metrics_snapshot,
            "slack": {key: self.slack[key] for key in sorted(self.slack)},
            "attribution": {
                "conserved": self.attribution["conserved"],
                "tenants": {
                    t: self.attribution["tenants"][t]
                    for t in sorted(self.attribution["tenants"])
                },
            },
            "regret": self.regret,
        }

    def prometheus(self):
        """Prometheus text: registry metrics + service summary gauges."""
        extra = {}
        summary = self.summary
        for field in ("total_work", "query_windows", "slo_misses",
                      "slo_miss_rate", "work_per_query_window"):
            if field in summary:
                extra["service.summary.%s" % field] = summary[field]
        for key, entry in self.slack.items():
            shard, _, qid = key.partition("/")
            extra[metric_key(
                "service.query.headroom_work", {"query": qid, "shard": shard}
            )] = entry["headroom_work"]
        for tenant, work in self.attribution["tenants"].items():
            extra[metric_key(
                "service.tenant.attributed_work", {"tenant": tenant}
            )] = work
        extra["service.attribution.conserved"] = (
            1 if self.attribution["conserved"] else 0
        )
        if self.regret is not None:
            extra["service.regret.total_work"] = self.regret["total_regret_work"]
            extra["service.regret.switched"] = self.regret["switched"]
            extra["service.regret.decisions"] = self.regret["decision_count"]
        return render_prometheus(self.metrics_snapshot, extra_gauges=extra)

    def __repr__(self):
        return "TelemetryExporter(%d series, %d slack entries)" % (
            len(self.series), len(self.slack)
        )


# -- the static dashboard ---------------------------------------------------------

_SNAPSHOT_OPEN = '<script id="telemetry-snapshot" type="application/json">'
_SNAPSHOT_CLOSE = "</script>"


def _sparkline(samples, width=280, height=48):
    """Inline SVG polyline of ``[[x, y], ...]`` samples."""
    if not samples:
        return "<svg class='spark' width='%d' height='%d'></svg>" % (
            width, height
        )
    ys = [y for _, y in samples]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    n = len(samples)
    points = []
    for index, (_, y) in enumerate(samples):
        px = 4 + (width - 8) * (index / max(1, n - 1))
        py = 4 + (height - 8) * (1.0 - (y - lo) / span)
        points.append("%.1f,%.1f" % (px, py))
    return (
        "<svg class='spark' width='%d' height='%d'>"
        "<polyline fill='none' stroke='#2b6cb0' stroke-width='1.5' "
        "points='%s'/></svg>" % (width, height, " ".join(points))
    )


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def render_dashboard(snapshot, title="repro service telemetry"):
    """A static, self-contained HTML dashboard for one telemetry snapshot.

    The snapshot JSON is embedded verbatim (modulo ``</``-escaping) in a
    ``<script type="application/json">`` block, so the page doubles as
    its own data file: :func:`extract_dashboard_snapshot` recovers the
    exact dict that rendered it.
    """
    summary = snapshot.get("summary") or {}
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>%s</title>" % title,
        "<style>",
        "body{font:14px/1.4 system-ui,sans-serif;margin:24px;color:#1a202c}",
        "h1{font-size:20px} h2{font-size:16px;margin-top:28px}",
        ".cards{display:flex;flex-wrap:wrap;gap:12px}",
        ".card{border:1px solid #cbd5e0;border-radius:6px;padding:10px 14px}",
        ".card .v{font-size:20px;font-weight:600}",
        ".card .k{color:#4a5568;font-size:12px}",
        "table{border-collapse:collapse;margin-top:8px}",
        "td,th{border:1px solid #cbd5e0;padding:4px 8px;text-align:right}",
        "th{background:#edf2f7} td.l,th.l{text-align:left}",
        ".miss{color:#c53030;font-weight:600} .ok{color:#2f855a}",
        ".spark{border:1px solid #e2e8f0;border-radius:4px}",
        "</style></head><body>",
        "<h1>%s</h1>" % title,
    ]
    cards = [
        ("query-windows", summary.get("query_windows")),
        ("SLO misses", summary.get("slo_misses")),
        ("SLO miss rate", summary.get("slo_miss_rate")),
        ("total work", summary.get("total_work")),
        ("work / query-window", summary.get("work_per_query_window")),
    ]
    parts.append("<div class='cards'>")
    for label, value in cards:
        parts.append(
            "<div class='card'><div class='v'>%s</div>"
            "<div class='k'>%s</div></div>" % (_fmt(value), label)
        )
    conserved = (snapshot.get("attribution") or {}).get("conserved", True)
    parts.append(
        "<div class='card'><div class='v %s'>%s</div>"
        "<div class='k'>attribution conserved</div></div>"
        % ("ok" if conserved else "miss", _fmt(conserved))
    )
    parts.append("</div>")

    series = snapshot.get("series") or {}
    if series:
        parts.append("<h2>Time series</h2><table>")
        parts.append(
            "<tr><th class='l'>series</th><th>samples</th>"
            "<th>last</th><th class='l'>trend</th></tr>"
        )
        for key in sorted(series):
            samples = series[key].get("samples", [])
            last = samples[-1][1] if samples else None
            parts.append(
                "<tr><td class='l'>%s</td><td>%d</td><td>%s</td>"
                "<td class='l'>%s</td></tr>"
                % (key, len(samples), _fmt(last), _sparkline(samples))
            )
        parts.append("</table>")

    slack = snapshot.get("slack") or {}
    if slack:
        parts.append("<h2>Slack ledger (latest window per query)</h2><table>")
        parts.append(
            "<tr><th class='l'>shard/query</th><th>goal work</th>"
            "<th>final work</th><th>headroom</th><th>slack avail</th>"
            "<th>deferred</th><th>util</th><th>windows to miss</th></tr>"
        )
        for key in sorted(slack):
            entry = slack[key]
            missed = entry.get("missed")
            parts.append(
                "<tr><td class='l%s'>%s</td><td>%s</td><td>%s</td>"
                "<td class='%s'>%s</td><td>%s</td><td>%s</td><td>%s</td>"
                "<td>%s</td></tr>"
                % (
                    " miss" if missed else "", key,
                    _fmt(entry.get("goal_work")),
                    _fmt(entry.get("final_work")),
                    "miss" if missed else "ok",
                    _fmt(entry.get("headroom_work")),
                    _fmt(entry.get("slack_available_work")),
                    _fmt(entry.get("deferred_work")),
                    _fmt(entry.get("slack_utilization")),
                    _fmt(entry.get("projected_windows_to_miss")),
                )
            )
        parts.append("</table>")

    tenants = (snapshot.get("attribution") or {}).get("tenants") or {}
    if tenants:
        parts.append("<h2>Attributed work by tenant</h2><table>")
        parts.append("<tr><th class='l'>tenant</th><th>attributed work</th></tr>")
        for tenant in sorted(tenants):
            parts.append(
                "<tr><td class='l'>%s</td><td>%s</td></tr>"
                % (tenant, _fmt(tenants[tenant]))
            )
        parts.append("</table>")

    regret = snapshot.get("regret")
    if regret:
        parts.append("<h2>Pace-search regret</h2>")
        parts.append(
            "<p>%d decisions, %d where the measured-cost oracle disagrees, "
            "total regret %s work units.</p>"
            % (regret.get("decision_count", 0), regret.get("switched", 0),
               _fmt(regret.get("total_regret_work")))
        )
        switched = [
            d for d in regret.get("decisions", ()) if d.get("switched")
        ]
        if switched:
            parts.append("<table><tr><th class='l'>run</th><th>seq</th>"
                         "<th class='l'>chosen group</th>"
                         "<th class='l'>oracle group</th>"
                         "<th>regret work</th></tr>")
            for d in switched:
                parts.append(
                    "<tr><td class='l'>%s</td><td>%s</td><td class='l'>%s</td>"
                    "<td class='l'>%s</td><td>%s</td></tr>"
                    % (d.get("run"), d.get("seq"), d.get("chosen_group"),
                       d.get("oracle_group"), _fmt(d.get("regret_work")))
                )
            parts.append("</table>")

    payload = json.dumps(snapshot, sort_keys=True).replace("</", "<\\/")
    parts.append(_SNAPSHOT_OPEN + payload + _SNAPSHOT_CLOSE)
    parts.append("</body></html>")
    return "\n".join(parts)


def extract_dashboard_snapshot(html):
    """Recover the exact snapshot dict embedded by :func:`render_dashboard`."""
    start = html.index(_SNAPSHOT_OPEN) + len(_SNAPSHOT_OPEN)
    end = html.index(_SNAPSHOT_CLOSE, start)
    return json.loads(html[start:end].replace("<\\/", "</"))


# -- the live endpoint ------------------------------------------------------------

class TelemetryServer:
    """Threaded HTTP server over one exporter: /metrics, /snapshot.json, /.

    ``port=0`` binds an ephemeral port; :attr:`url` reports the bound
    address after :meth:`start`.  The server runs on a daemon thread and
    :meth:`stop` shuts it down cleanly (joinable, idempotent).
    """

    def __init__(self, exporter, host="127.0.0.1", port=0):
        self.exporter = exporter
        self.host = host
        self.port = port
        self._server = None
        self._thread = None

    def start(self):
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        exporter = self.exporter

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                if self.path == "/metrics":
                    body = exporter.prometheus().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path == "/snapshot.json":
                    body = (
                        json.dumps(exporter.snapshot(), sort_keys=True) + "\n"
                    ).encode("utf-8")
                    ctype = "application/json"
                elif self.path in ("/", "/dashboard", "/index.html"):
                    body = render_dashboard(exporter.snapshot()).encode("utf-8")
                    ctype = "text/html; charset=utf-8"
                else:
                    self.send_error(404, "unknown telemetry path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet: telemetry, not access logs
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def stop(self):
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()
