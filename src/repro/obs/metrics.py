"""A small metrics registry: counters, gauges, histograms.

Metrics are named, optionally labelled (``registry.counter("engine.work",
sid=3, kind="input")``), and get-or-create semantics make every call site
one line.  :meth:`MetricsRegistry.snapshot` renders the whole registry as
a JSON-safe dict keyed by ``name{label=value,...}``;
:meth:`MetricsRegistry.merge_snapshot` folds a worker process's snapshot
into the driver registry (counters add, gauges keep the latest value and
the running max, histograms merge their moments and bucket counts).

Histograms bucket observations over log-spaced boundaries reaching down
to a microsecond (``1-2-5`` per decade, 1e-6 .. 1e6), so sub-millisecond
service windows land in distinct buckets instead of collapsing into one:
tail latency stays visible at trigger-window speeds.  The same
boundaries serve work-unit histograms (values in the 1..1e6 range).

The registry itself never checks the observability flag -- call sites
guard with ``if OBS.enabled:`` so the disabled path stays a single test.
"""

from bisect import bisect_left


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def to_dict(self):
        return {"type": "counter", "value": self.value}

    def merge(self, payload):
        self.value += payload.get("value", 0)


class Gauge:
    """A point-in-time value; remembers the running max alongside."""

    __slots__ = ("value", "max")
    kind = "gauge"

    def __init__(self):
        self.value = 0
        self.max = None

    def set(self, value):
        self.value = value
        if self.max is None or value > self.max:
            self.max = value

    def to_dict(self):
        return {"type": "gauge", "value": self.value, "max": self.max}

    def merge(self, payload):
        self.value = payload.get("value", self.value)
        other_max = payload.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = other_max


#: log-spaced upper bounds, 1-2-5 per decade from 1 microsecond to 1e6:
#: fine enough that sub-millisecond trigger windows spread across buckets
#: (they used to collapse into one), coarse enough for work-unit counts.
DEFAULT_BUCKETS = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-6, 7)
    for mantissa in (1.0, 2.0, 5.0)
)


class Histogram:
    """Count / sum / min / max plus log-spaced bucket counts.

    Buckets follow the Prometheus convention: ``counts[i]`` holds the
    observations with ``value <= bounds[i]``; the final slot is the
    ``+Inf`` overflow.  Counts here are *per-bucket* (non-cumulative);
    :func:`cumulative_buckets` derives the Prometheus ``le`` form.
    """

    __slots__ = ("count", "total", "min", "max", "bounds", "bucket_counts")
    kind = "histogram"

    def __init__(self, bounds=DEFAULT_BUCKETS):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self):
        return (self.total / self.count) if self.count else 0.0

    def buckets(self):
        """Non-empty buckets as ``[[upper_bound_or_"+Inf", count], ...]``."""
        out = []
        for index, count in enumerate(self.bucket_counts):
            if count:
                bound = (
                    self.bounds[index] if index < len(self.bounds) else "+Inf"
                )
                out.append([bound, count])
        return out

    def to_dict(self):
        return {
            "type": "histogram", "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
            "buckets": self.buckets(),
        }

    def merge(self, payload):
        self.count += payload.get("count", 0)
        self.total += payload.get("sum", 0.0)
        for name, better in (("min", min), ("max", max)):
            other = payload.get(name)
            if other is None:
                continue
            mine = getattr(self, name)
            setattr(self, name, other if mine is None else better(mine, other))
        # bucket merge: match on upper bound; a payload from an older
        # bucketless histogram simply contributes no bucket counts
        for bound, count in payload.get("buckets", ()):
            if bound == "+Inf":
                self.bucket_counts[-1] += count
            else:  # same boundary grid in practice; a foreign bound still
                # lands in the covering bucket, conserving total mass
                self.bucket_counts[bisect_left(self.bounds, bound)] += count


def cumulative_buckets(bucket_pairs):
    """Prometheus ``le`` series from :meth:`Histogram.buckets` pairs.

    Returns ``[(le, cumulative_count), ...]`` ending with ``("+Inf", n)``.
    """
    out = []
    running = 0
    for bound, count in bucket_pairs:
        running += count
        out.append((bound, running))
    if not out or out[-1][0] != "+Inf":
        out.append(("+Inf", running))
    return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def metric_key(name, labels):
    """Stable string key: ``name`` or ``name{a=1,b=x}`` with sorted labels."""
    if not labels:
        return name
    return "%s{%s}" % (
        name, ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    )


class MetricsRegistry:
    """Get-or-create store of metrics keyed by name + labels."""

    def __init__(self):
        self._metrics = {}

    def _get(self, cls, name, labels):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric %r already registered as %s" % (key, metric.kind)
            )
        return metric

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, **labels):
        return self._get(Histogram, name, labels)

    def snapshot(self):
        """JSON-safe dict of every metric, sorted by key."""
        return {
            key: self._metrics[key].to_dict() for key in sorted(self._metrics)
        }

    def merge_snapshot(self, snapshot):
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for key, payload in snapshot.items():
            metric = self._metrics.get(key)
            if metric is None:
                cls = _KINDS.get(payload.get("type"))
                if cls is None:
                    continue
                metric = self._metrics[key] = cls()
            metric.merge(payload)

    def clear(self):
        self._metrics = {}

    def __len__(self):
        return len(self._metrics)

    def __repr__(self):
        return "MetricsRegistry(%d metrics)" % len(self._metrics)
