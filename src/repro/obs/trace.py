"""Span tracing with Chrome trace-event JSON export.

A :class:`Tracer` records *complete* events (``ph: "X"``) with
microsecond timestamps relative to the tracer's start; :meth:`Tracer.export`
writes the standard ``{"traceEvents": [...]}`` envelope that Perfetto and
chrome://tracing open directly.

Spans nest via the context manager returned by :meth:`Tracer.span` (or
the module-level :func:`span` helper bound to the process-wide session),
and the :func:`traced` decorator wraps whole functions.  When
observability is disabled, :func:`span` returns a shared no-op context
manager -- nothing is allocated and no event is recorded.

Worker processes of the parallel harness each run their own tracer
(with their own pid); the driver merges their event lists in cell
submission order, so a merged trace shows one coherent timeline per
process and the *sequence* of event names is deterministic across runs
at any job count.
"""

import functools
import json
import os
import time


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **args):
        return self


NOOP_SPAN = _NoopSpan()


class _Span:
    """An open span; closing it records one complete trace event."""

    __slots__ = ("tracer", "name", "args", "start_us")

    def __init__(self, tracer, name, args):
        self.tracer = tracer
        self.name = name
        self.args = args
        self.start_us = tracer.now_us()

    def set(self, **args):
        """Attach (or update) argument values while the span is open."""
        self.args.update(args)
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.tracer.complete(self.name, self.start_us, self.args)
        return False


class Tracer:
    """An in-memory list of Chrome trace events for one process."""

    def __init__(self, process_name=None, clock=time.perf_counter):
        self.pid = os.getpid()
        self._clock = clock
        self._t0 = clock()
        self._meta = {
            "ph": "M", "name": "process_name", "pid": self.pid, "tid": 0,
            "args": {"name": process_name or ("repro pid=%d" % self.pid)},
        }
        self.events = [self._meta]
        self._seen_meta = {self.pid}

    # -- recording ----------------------------------------------------------

    def now_us(self):
        """Microseconds since this tracer started."""
        return (self._clock() - self._t0) * 1e6

    def span(self, name, **args):
        """Open a span; use as a context manager."""
        return _Span(self, name, args)

    def complete(self, name, start_us, args=None):
        """Record a complete ("X") event that started at ``start_us``."""
        now = self.now_us()
        self.events.append({
            "ph": "X", "name": name, "cat": name.partition(".")[0],
            "pid": self.pid, "tid": 0,
            "ts": round(start_us, 1), "dur": round(now - start_us, 1),
            "args": args or {},
        })

    def instant(self, name, **args):
        """Record an instant ("i") event at the current time."""
        self.events.append({
            "ph": "i", "name": name, "cat": name.partition(".")[0],
            "pid": self.pid, "tid": 0, "ts": round(self.now_us(), 1),
            "s": "p", "args": args,
        })

    # -- merging / export ---------------------------------------------------

    def add_events(self, events):
        """Append already-recorded events (from a worker process).

        A worker ships its process-metadata event with every drained cell;
        only the first one per pid is kept so the merged trace stays clean.
        """
        for event in events:
            if event.get("ph") == "M":
                if event["pid"] in self._seen_meta:
                    continue
                self._seen_meta.add(event["pid"])
            self.events.append(event)

    def drain_events(self):
        """Return and clear this tracer's events (keeps the metadata event)."""
        events, self.events = self.events, [self._meta]
        return events

    def clear(self):
        self.events = [self._meta]
        self._seen_meta = {self.pid}

    def chrome_payload(self):
        """The JSON-safe ``{"traceEvents": [...]}`` envelope."""
        return {"traceEvents": list(self.events), "displayTimeUnit": "ms"}

    def export(self, path):
        """Write the trace to ``path`` as Chrome trace-event JSON."""
        with open(path, "w") as handle:
            json.dump(self.chrome_payload(), handle)
        return path

    def __repr__(self):
        return "Tracer(pid=%d, %d events)" % (self.pid, len(self.events))


# -- process-wide helpers bound to the OBS session --------------------------------

def span(name, **args):
    """A span on the process-wide tracer, or the shared no-op when disabled."""
    from . import OBS

    if not OBS.enabled:
        return NOOP_SPAN
    return OBS.tracer.span(name, **args)


def traced(name):
    """Decorator: run the function under a span (no-op when disabled)."""
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            from . import OBS

            if not OBS.enabled:
                return func(*args, **kwargs)
            with OBS.tracer.span(name):
                return func(*args, **kwargs)
        return wrapper
    return decorate
