"""The slack ledger: deadline headroom as a first-class measurement.

The paper's premise is that latency goals create *time slackness* the
executor can spend on work sharing -- yet SLO misses are usually the only
number reported, after the fact.  This ledger records, per trigger window
and per query, where the slack went:

``goal_work``
    the absolute final-work bound (relative goal x calibrated solo
    batch cost) the pace search promised to stay under;
``final_work``
    the measured final work (the paper's latency proxy) this window;
``headroom_work``
    ``goal_work - final_work``: positive means the deadline was met with
    room to spare, negative is an SLO miss by that much work;
``slack_available_work``
    ``goal_work - eager_final_work``: the slack the goal grants over the
    *eagerest* execution (estimated final work at uniform maximum pace).
    This is the budget the optimizer is allowed to spend on deferral;
``deferred_work``
    ``final_work - eager_final_work`` (clamped at zero): the
    pace-induced deferral actually incurred -- how much of the available
    slack the chosen (lazier) pace configuration consumed;
``slack_utilization``
    ``deferred_work / slack_available_work`` when slack is available:
    1.0 means the optimizer spent the whole budget.

Headroom is also tracked over a bounded history ring per query, and a
least-squares drift slope over that ring yields
``projected_windows_to_miss``: if headroom keeps eroding at the fitted
rate, how many more windows until it crosses zero.  ``None`` means no
miss is projected (headroom steady or recovering); ``0`` means the query
is already missing.

Everything here is plain deterministic arithmetic on measured values --
the ledger adds no randomness and no wall-clock reads, so serial and
sharded service runs produce bit-identical slack reports.
"""


#: default per-query history ring length for drift fitting
DEFAULT_HISTORY = 32

#: slopes flatter than this (work units per window) count as "no drift"
DRIFT_EPSILON = 1e-9


def drift_slope(points):
    """Least-squares slope of ``(x, y)`` points; 0.0 with fewer than two."""
    n = len(points)
    if n < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var == 0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return cov / var


def project_windows_to_miss(headroom, slope):
    """Windows until headroom crosses zero at the fitted drift ``slope``.

    Returns ``0.0`` when already negative, ``None`` when no miss is
    projected (non-negative or negligible slope).
    """
    if headroom <= 0:
        return 0.0
    if slope >= -DRIFT_EPSILON:
        return None
    return headroom / (-slope)


class SlackLedger:
    """Per-window, per-query slack accounting with drift projection."""

    def __init__(self, history=DEFAULT_HISTORY):
        if history < 2:
            raise ValueError("slack history must be >= 2, got %r" % (history,))
        self.history = history
        #: ``qid -> [(window, headroom_work), ...]`` bounded ring
        self._headroom = {}
        #: ``[(window, summary_dict), ...]`` in record order
        self.windows = []

    def record_window(self, window, entries, seconds=None):
        """Record one trigger window; returns ``{qid: entry_dict}``.

        ``entries`` maps ``qid`` to a dict with ``goal_work``,
        ``final_work`` and optionally ``eager_final_work`` (the
        cost-model estimate of the query's final work at uniform maximum
        pace; omit when unknown).  ``seconds`` is an optional
        work->seconds converter (``StreamConfig.seconds``) used to also
        report headroom in time units.
        """
        recorded = {}
        for qid in sorted(entries):
            spec = entries[qid]
            goal = float(spec["goal_work"])
            final = float(spec["final_work"])
            eager = spec.get("eager_final_work")
            headroom = goal - final
            ring = self._headroom.setdefault(qid, [])
            ring.append((window, headroom))
            if len(ring) > self.history:
                del ring[0]
            slope = drift_slope(ring)
            entry = {
                "goal_work": goal,
                "final_work": final,
                "headroom_work": headroom,
                "missed": final > goal,
                "drift_work_per_window": slope,
                "projected_windows_to_miss": project_windows_to_miss(
                    headroom, slope
                ),
            }
            if eager is not None:
                eager = float(eager)
                available = goal - eager
                deferred = max(0.0, final - eager)
                entry["eager_final_work"] = eager
                entry["slack_available_work"] = available
                entry["deferred_work"] = deferred
                entry["slack_utilization"] = (
                    deferred / available if available > 0 else None
                )
            if seconds is not None:
                entry["goal_seconds"] = seconds(goal)
                entry["headroom_seconds"] = seconds(goal) - seconds(final)
            recorded[qid] = entry
        self.windows.append((window, self.summarize(recorded)))
        return recorded

    @staticmethod
    def summarize(recorded):
        """Window roll-up: worst headroom, misses, projected misses."""
        if not recorded:
            return {
                "queries": 0, "min_headroom_work": None, "missed": 0,
                "projected_misses": 0,
            }
        headrooms = [e["headroom_work"] for e in recorded.values()]
        return {
            "queries": len(recorded),
            "min_headroom_work": min(headrooms),
            "missed": sum(1 for e in recorded.values() if e["missed"]),
            "projected_misses": sum(
                1
                for e in recorded.values()
                if e["projected_windows_to_miss"] is not None
            ),
        }

    def latest(self, qid):
        """The most recent ``(window, headroom_work)`` of one query."""
        ring = self._headroom.get(qid)
        return ring[-1] if ring else None

    def __len__(self):
        return len(self.windows)

    def __repr__(self):
        return "SlackLedger(%d windows, %d queries tracked)" % (
            len(self.windows), len(self._headroom)
        )
