"""Base tables and the catalog.

A :class:`Table` is an in-memory, append-only list of rows under a schema
-- the "base relation" the stream source feeds from.  The :class:`Catalog`
maps table names to tables and is the single object the frontend, the
optimizer and the executor share to resolve scans.

A table may additionally carry an explicit *delta log* with deletions and
updates (an update is a delete plus an insert, paper section 2.3); the
stream source then replays that log instead of plain row insertions.
"""

from ..errors import SchemaError
from .schema import Schema
from .tuples import Delta, DELETE, INSERT


class Table:
    """An in-memory base relation (optionally with an update/delete log)."""

    __slots__ = ("name", "schema", "rows", "churn")

    def __init__(self, name, schema, rows=None):
        if not isinstance(schema, Schema):
            raise SchemaError("Table needs a Schema, got %r" % (schema,))
        self.name = name
        self.schema = schema
        self.rows = list(rows) if rows is not None else []
        #: optional explicit delta log: list of (row, sign); None means the
        #: stream is pure insertions of ``rows`` in order
        self.churn = None

    def append(self, row):
        """Append one row (a tuple aligned with the schema)."""
        if len(row) != len(self.schema):
            raise SchemaError(
                "row arity %d does not match schema arity %d for table %r"
                % (len(row), len(self.schema), self.name)
            )
        self.rows.append(tuple(row))

    def extend(self, rows):
        for row in rows:
            self.append(row)

    def delta_log(self):
        """The table's arrival log as ``(row, sign)`` pairs.

        Pure-insert tables synthesize it from ``rows``; tables with
        explicit churn replay their recorded log (updates appear as a
        deletion of the old row followed by an insertion of the new one).
        """
        if self.churn is not None:
            return self.churn
        return [(row, INSERT) for row in self.rows]

    def apply_updates(self, updates, rng=None):
        """Record update events: ``[(old_row, new_row), ...]``.

        Builds an explicit delta log: the original insertions in order,
        with each update's delete+insert pair spliced in at a position
        after the old row arrived (``rng`` randomizes positions; without
        it updates land at the end of the log).
        """
        log = [(row, INSERT) for row in self.rows]
        for old_row, new_row in updates:
            arrival = None
            for position, (row, sign) in enumerate(log):
                if sign == INSERT and row == old_row:
                    arrival = position
                    break
            if arrival is None:
                raise SchemaError(
                    "update target %r not found in table %r" % (old_row, self.name)
                )
            if rng is not None:
                position = rng.randint(arrival + 1, len(log))
            else:
                position = len(log)
            log.insert(position, (old_row, DELETE))
            log.insert(position + 1, (tuple(new_row), INSERT))
        self.churn = log
        return self

    def log_length(self):
        """Number of delta records the stream will deliver."""
        return len(self.churn) if self.churn is not None else len(self.rows)

    def delete_count(self):
        """Deletions in the delta log (0 for pure-insert tables)."""
        if self.churn is None:
            return 0
        return sum(1 for _, sign in self.churn if sign == DELETE)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return "Table(%r, %d rows)" % (self.name, len(self.rows))


class Catalog:
    """Name -> :class:`Table` mapping shared across the system."""

    def __init__(self, tables=None):
        self._tables = {}
        for table in tables or ():
            self.add(table)

    def add(self, table):
        if table.name in self._tables:
            raise SchemaError("table %r already registered" % table.name)
        self._tables[table.name] = table
        return table

    def create(self, name, schema, rows=None):
        """Create, register and return a new table."""
        return self.add(Table(name, schema, rows))

    def get(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                "no table %r in catalog (have: %s)"
                % (name, ", ".join(sorted(self._tables)) or "<empty>")
            ) from None

    def has(self, name):
        return name in self._tables

    def names(self):
        return sorted(self._tables)

    def __contains__(self, name):
        return name in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def __len__(self):
        return len(self._tables)

    def __repr__(self):
        return "Catalog(%s)" % ", ".join(self.names())
