"""Relational substrate: schemas, tables, deltas, bitvectors, expressions."""

from .schema import Column, Schema, INT, FLOAT, STR, DATE
from .table import Table, Catalog
from .tuples import Delta, DeltaBatch, INSERT, DELETE, consolidate
from .expressions import (
    Expression,
    Col,
    Const,
    col,
    lift,
    starts_with,
    contains,
    AggSpec,
    agg_sum,
    agg_count,
    agg_avg,
    agg_min,
    agg_max,
    TRUE,
)
from . import bitvec

__all__ = [
    "Column",
    "Schema",
    "INT",
    "FLOAT",
    "STR",
    "DATE",
    "Table",
    "Catalog",
    "Delta",
    "DeltaBatch",
    "INSERT",
    "DELETE",
    "consolidate",
    "Expression",
    "Col",
    "Const",
    "col",
    "lift",
    "starts_with",
    "contains",
    "AggSpec",
    "agg_sum",
    "agg_count",
    "agg_avg",
    "agg_min",
    "agg_max",
    "TRUE",
    "bitvec",
]
