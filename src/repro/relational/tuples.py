"""Delta records and delta batches.

The engine processes data as *deltas*: each record is a row tuple plus a
sign (+1 insert, -1 delete; an update is a delete followed by an insert,
per the paper's section 2.3) plus a query bitvector saying which queries
the tuple is valid for.  A :class:`DeltaBatch` is an ordered list of
records under one schema -- the unit that flows between operators and is
materialized into inter-subplan buffers.
"""

from ..errors import ExecutionError

INSERT = 1
DELETE = -1


class Delta:
    """One change record: ``(row, sign, bits)``.

    ``row`` is a tuple aligned with the owning batch's schema, ``sign`` is
    ``+1``/``-1`` and ``bits`` is the query bitvector (int).
    """

    __slots__ = ("row", "sign", "bits")

    def __init__(self, row, sign=INSERT, bits=~0):
        if sign not in (INSERT, DELETE):
            raise ExecutionError("delta sign must be +1 or -1, got %r" % (sign,))
        self.row = row
        self.sign = sign
        self.bits = bits

    def with_bits(self, bits):
        """A copy of this delta restricted to ``bits``."""
        return Delta(self.row, self.sign, bits)

    def negated(self):
        """The retraction (or re-insertion) of this delta."""
        return Delta(self.row, -self.sign, self.bits)

    def __eq__(self, other):
        return (
            isinstance(other, Delta)
            and self.row == other.row
            and self.sign == other.sign
            and self.bits == other.bits
        )

    def __hash__(self):
        return hash((self.row, self.sign, self.bits))

    def __repr__(self):
        marker = "+" if self.sign == INSERT else "-"
        return "Delta(%s%r, bits=%s)" % (marker, self.row, bin(self.bits))


_DELTA_NEW = Delta.__new__


def make_delta(row, sign, bits):
    """Construct a :class:`Delta` without ``__init__``'s sign validation.

    The engine hot paths build millions of deltas whose signs are ±1 by
    construction; skipping the per-record validation is measurable.  Any
    caller that cannot guarantee the sign must use ``Delta(...)`` instead.
    """
    delta = _DELTA_NEW(Delta)
    delta.row = row
    delta.sign = sign
    delta.bits = bits
    return delta


class DeltaBatch:
    """An ordered collection of :class:`Delta` records under one schema."""

    __slots__ = ("schema", "deltas")

    def __init__(self, schema, deltas=None):
        self.schema = schema
        self.deltas = list(deltas) if deltas is not None else []

    @classmethod
    def inserts(cls, schema, rows, bits=~0):
        """A batch of pure insertions of ``rows``."""
        return cls(schema, [Delta(row, INSERT, bits) for row in rows])

    def append(self, delta):
        self.deltas.append(delta)

    def extend(self, deltas):
        self.deltas.extend(deltas)

    def insert_count(self):
        """Number of +1 records."""
        return sum(1 for d in self.deltas if d.sign == INSERT)

    def delete_count(self):
        """Number of -1 records."""
        return sum(1 for d in self.deltas if d.sign == DELETE)

    def net_multiplicities(self):
        """Collapse the batch to ``{(row, bits): net_count}``.

        Useful in tests for comparing incremental output with a batch
        recomputation: two delta streams are equivalent iff their net
        multiplicities agree.
        """
        net = {}
        for delta in self.deltas:
            key = (delta.row, delta.bits)
            net[key] = net.get(key, 0) + delta.sign
            if net[key] == 0:
                del net[key]
        return net

    def rows_for_query(self, query_id):
        """Net multiset of rows valid for ``query_id`` as ``{row: count}``."""
        net = {}
        mask = 1 << query_id
        for delta in self.deltas:
            if delta.bits & mask:
                net[delta.row] = net.get(delta.row, 0) + delta.sign
                if net[delta.row] == 0:
                    del net[delta.row]
        return net

    def __len__(self):
        return len(self.deltas)

    def __iter__(self):
        return iter(self.deltas)

    def __repr__(self):
        return "DeltaBatch(%d deltas, schema=%r)" % (len(self.deltas), self.schema.names())


def consolidate(deltas):
    """Cancel matching insert/delete pairs, preserving first-seen order.

    Returns a new list where each ``(row, bits)`` appears with its net
    multiplicity expanded back into unit deltas.  The engine uses this when
    materializing buffers so downstream subplans do not re-process churn
    that cancelled within one batch.

    The expansion is multiplicity-shared: a key with net count ``n``
    contributes ``n`` references to *one* delta object instead of ``n``
    fresh allocations (deltas are immutable once built, so sharing is
    safe and record counts -- the work unit -- are unchanged).
    """
    net = {}
    order = []
    for delta in deltas:
        key = (delta.row, delta.bits)
        if key in net:
            net[key] += delta.sign
        else:
            net[key] = delta.sign
            order.append(key)
    out = []
    append = out.append
    extend = out.extend
    for key in order:
        count = net[key]
        if count == 0:
            continue
        row, bits = key
        if count > 0:
            delta = make_delta(row, INSERT, bits)
        else:
            delta = make_delta(row, DELETE, bits)
            count = -count
        if count == 1:
            append(delta)
        else:
            extend([delta] * count)
    return out
