"""Query-set bitvectors (SharedDB-style tuple annotations).

In a shared plan every intermediate tuple carries a bitvector ``B`` where
bit ``i`` says "this tuple is valid for query ``i``" (Giannikis et al.,
SharedDB).  We represent bitvectors as plain Python ints, which gives
arbitrary width, O(1) AND/OR, and cheap hashing for free.

The module also provides the tiny amount of arithmetic the engine needs:
building masks from query-id collections, iterating set bits, and popcount.
"""


def bit(query_id):
    """The bitvector with only ``query_id`` set."""
    if query_id < 0:
        raise ValueError("query ids must be non-negative, got %d" % query_id)
    return 1 << query_id


def mask_of(query_ids):
    """The bitvector with every id in ``query_ids`` set."""
    mask = 0
    for query_id in query_ids:
        mask |= bit(query_id)
    return mask


def iter_bits(mask):
    """Yield the query ids whose bits are set in ``mask``, ascending.

    >>> list(iter_bits(0b1010))
    [1, 3]
    """
    query_id = 0
    while mask:
        if mask & 1:
            yield query_id
        mask >>= 1
        query_id += 1


def to_ids(mask):
    """The sorted tuple of query ids set in ``mask``."""
    return tuple(iter_bits(mask))


def popcount(mask):
    """Number of set bits."""
    return bin(mask).count("1")


def subsumes(outer, inner):
    """True if every bit of ``inner`` is also set in ``outer``.

    The shared execution engine requires that the query set of a subplan
    subsume the query sets of its parent subplans (paper section 2.2); this
    predicate implements that check.
    """
    return inner & ~outer == 0


def format_mask(mask):
    """Human-readable rendering, e.g. ``{q0,q2}``."""
    return "{%s}" % ",".join("q%d" % i for i in iter_bits(mask))
