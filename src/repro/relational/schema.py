"""Schemas and column metadata.

A :class:`Schema` is an ordered, immutable list of :class:`Column` objects
with unique names.  Rows are plain Python tuples aligned positionally with
the schema; the schema provides O(1) name-to-index resolution, which the
expression compiler uses to turn column references into tuple indexing.
"""

from ..errors import SchemaError

#: The column types the engine understands.  Types are advisory -- the
#: engine is dynamically typed like SQLite -- but the TPC-H generator and
#: the SQL frontend use them for validation and for pretty-printing.
INT = "int"
FLOAT = "float"
STR = "str"
DATE = "date"

_VALID_TYPES = frozenset({INT, FLOAT, STR, DATE})


class Column:
    """A named, typed column.

    Parameters
    ----------
    name:
        Column name, unique within its schema.
    type_:
        One of :data:`INT`, :data:`FLOAT`, :data:`STR`, :data:`DATE`.
    """

    __slots__ = ("name", "type")

    def __init__(self, name, type_=FLOAT):
        if not name or not isinstance(name, str):
            raise SchemaError("column name must be a non-empty string, got %r" % (name,))
        if type_ not in _VALID_TYPES:
            raise SchemaError("unknown column type %r for column %r" % (type_, name))
        self.name = name
        self.type = type_

    def renamed(self, new_name):
        """Return a copy of this column under a different name."""
        return Column(new_name, self.type)

    def __eq__(self, other):
        return (
            isinstance(other, Column)
            and self.name == other.name
            and self.type == other.type
        )

    def __hash__(self):
        return hash((self.name, self.type))

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.type)


class Schema:
    """An ordered collection of uniquely named columns.

    Schemas are immutable; combinators (:meth:`concat`, :meth:`project`,
    :meth:`prefixed`) return new schemas.
    """

    __slots__ = ("columns", "_index")

    def __init__(self, columns):
        columns = tuple(columns)
        index = {}
        for position, column in enumerate(columns):
            if not isinstance(column, Column):
                raise SchemaError("schema entries must be Column objects, got %r" % (column,))
            if column.name in index:
                raise SchemaError("duplicate column name %r in schema" % column.name)
            index[column.name] = position
        self.columns = columns
        self._index = index

    @classmethod
    def of(cls, *specs):
        """Build a schema from ``(name, type)`` pairs or bare names.

        Bare names default to :data:`FLOAT`.

        >>> Schema.of(("id", INT), "value").names()
        ('id', 'value')
        """
        columns = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            elif isinstance(spec, str):
                columns.append(Column(spec))
            else:
                name, type_ = spec
                columns.append(Column(name, type_))
        return cls(columns)

    def names(self):
        """The tuple of column names, in order."""
        return tuple(column.name for column in self.columns)

    def types(self):
        """The tuple of column types, in order."""
        return tuple(column.type for column in self.columns)

    def index_of(self, name):
        """Return the position of ``name``, raising :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                "no column %r in schema with columns %r" % (name, self.names())
            ) from None

    def has(self, name):
        """True if a column called ``name`` exists."""
        return name in self._index

    def column(self, name):
        """Return the :class:`Column` called ``name``."""
        return self.columns[self.index_of(name)]

    def concat(self, other):
        """Concatenate two schemas (for joins).  Names must stay unique."""
        return Schema(self.columns + other.columns)

    def project(self, names):
        """A schema containing only ``names``, in the order given."""
        return Schema(tuple(self.column(name) for name in names))

    def prefixed(self, prefix):
        """A schema with every column renamed to ``prefix + name``."""
        return Schema(tuple(c.renamed(prefix + c.name) for c in self.columns))

    def row_dict(self, row):
        """Zip a row tuple into a ``{name: value}`` dict (debugging aid)."""
        return dict(zip(self.names(), row))

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other):
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self):
        return hash(self.columns)

    def __repr__(self):
        return "Schema(%s)" % ", ".join(
            "%s:%s" % (c.name, c.type) for c in self.columns
        )
