"""Scalar expressions, predicates and aggregate specifications.

Expressions are small immutable trees (column references, constants,
arithmetic, comparisons, boolean connectives).  They support:

* **binding**: :meth:`Expression.compile` turns an expression into a plain
  Python closure ``row -> value`` against a concrete :class:`~repro
  .relational.schema.Schema`, so per-tuple evaluation costs one function
  call and tuple indexing rather than a tree walk;
* **signatures**: :meth:`Expression.signature` produces the canonical
  string used by the MQO optimizer's sharability test (paper section 2.3);
* **introspection**: :meth:`Expression.columns` lists referenced columns.

A convenient builder DSL is provided through operator overloading::

    pred = (col("p_brand") == "Brand#23") & (col("p_size") < 15)
"""

import operator

from ..errors import ExpressionError


class Expression:
    """Base class of all scalar expressions."""

    def columns(self):
        """The set of column names this expression references."""
        acc = set()
        self._collect_columns(acc)
        return acc

    def _collect_columns(self, acc):
        raise NotImplementedError

    def compile(self, schema):
        """Return a closure ``row -> value`` bound to ``schema``."""
        raise NotImplementedError

    def signature(self):
        """A canonical string identifying this expression."""
        raise NotImplementedError

    # -- builder DSL -------------------------------------------------------

    def __add__(self, other):
        return BinaryOp("+", self, lift(other))

    def __radd__(self, other):
        return BinaryOp("+", lift(other), self)

    def __sub__(self, other):
        return BinaryOp("-", self, lift(other))

    def __rsub__(self, other):
        return BinaryOp("-", lift(other), self)

    def __mul__(self, other):
        return BinaryOp("*", self, lift(other))

    def __rmul__(self, other):
        return BinaryOp("*", lift(other), self)

    def __truediv__(self, other):
        return BinaryOp("/", self, lift(other))

    def __rtruediv__(self, other):
        return BinaryOp("/", lift(other), self)

    def __floordiv__(self, other):
        return BinaryOp("//", self, lift(other))

    def __rfloordiv__(self, other):
        return BinaryOp("//", lift(other), self)

    def __eq__(self, other):
        return Comparison("==", self, lift(other))

    def __ne__(self, other):
        return Comparison("!=", self, lift(other))

    def __lt__(self, other):
        return Comparison("<", self, lift(other))

    def __le__(self, other):
        return Comparison("<=", self, lift(other))

    def __gt__(self, other):
        return Comparison(">", self, lift(other))

    def __ge__(self, other):
        return Comparison(">=", self, lift(other))

    def __and__(self, other):
        return And(self, lift(other))

    def __or__(self, other):
        return Or(self, lift(other))

    def __invert__(self):
        return Not(self)

    def isin(self, values):
        """Membership predicate, ``expr IN (v1, v2, ...)``."""
        return InList(self, tuple(values))

    def between(self, low, high):
        """Inclusive range predicate, ``low <= expr <= high``."""
        return (self >= low) & (self <= high)

    # Expressions are used as dict keys inside plans; identity hashing keeps
    # that working even though __eq__ is overloaded to build comparisons.
    __hash__ = object.__hash__


def lift(value):
    """Wrap a plain Python value into a :class:`Const` if necessary."""
    if isinstance(value, Expression):
        return value
    return Const(value)


class Col(Expression):
    """A reference to a column by name."""

    __slots__ = ("name",)

    def __init__(self, name):
        if not isinstance(name, str) or not name:
            raise ExpressionError("column reference needs a non-empty name, got %r" % (name,))
        self.name = name

    def _collect_columns(self, acc):
        acc.add(self.name)

    def compile(self, schema):
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def signature(self):
        return "col(%s)" % self.name

    def __repr__(self):
        return "col(%r)" % self.name


def col(name):
    """Builder shorthand for :class:`Col`."""
    return Col(name)


class Const(Expression):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def _collect_columns(self, acc):
        pass

    def compile(self, schema):
        value = self.value
        return lambda row: value

    def signature(self):
        return "const(%r)" % (self.value,)

    def __repr__(self):
        return "const(%r)" % (self.value,)


_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "//": operator.floordiv,
}

_COMPARE = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class BinaryOp(Expression):
    """Arithmetic on two sub-expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _ARITH:
            raise ExpressionError("unknown arithmetic operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def _collect_columns(self, acc):
        self.left._collect_columns(acc)
        self.right._collect_columns(acc)

    def compile(self, schema):
        fn = _ARITH[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def signature(self):
        return "(%s %s %s)" % (self.left.signature(), self.op, self.right.signature())

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.op, self.right)


class Comparison(Expression):
    """A boolean comparison of two sub-expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _COMPARE:
            raise ExpressionError("unknown comparison operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def _collect_columns(self, acc):
        self.left._collect_columns(acc)
        self.right._collect_columns(acc)

    def compile(self, schema):
        fn = _COMPARE[self.op]
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: fn(left(row), right(row))

    def signature(self):
        return "(%s %s %s)" % (self.left.signature(), self.op, self.right.signature())

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.op, self.right)


class And(Expression):
    """Boolean conjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def _collect_columns(self, acc):
        self.left._collect_columns(acc)
        self.right._collect_columns(acc)

    def compile(self, schema):
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: bool(left(row)) and bool(right(row))

    def signature(self):
        return "(%s and %s)" % (self.left.signature(), self.right.signature())

    def __repr__(self):
        return "(%r & %r)" % (self.left, self.right)


class Or(Expression):
    """Boolean disjunction."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def _collect_columns(self, acc):
        self.left._collect_columns(acc)
        self.right._collect_columns(acc)

    def compile(self, schema):
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda row: bool(left(row)) or bool(right(row))

    def signature(self):
        return "(%s or %s)" % (self.left.signature(), self.right.signature())

    def __repr__(self):
        return "(%r | %r)" % (self.left, self.right)


class Not(Expression):
    """Boolean negation."""

    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child

    def _collect_columns(self, acc):
        self.child._collect_columns(acc)

    def compile(self, schema):
        child = self.child.compile(schema)
        return lambda row: not child(row)

    def signature(self):
        return "(not %s)" % self.child.signature()

    def __repr__(self):
        return "~%r" % (self.child,)


class InList(Expression):
    """Membership in a constant list."""

    __slots__ = ("child", "values")

    def __init__(self, child, values):
        self.child = child
        self.values = tuple(values)

    def _collect_columns(self, acc):
        self.child._collect_columns(acc)

    def compile(self, schema):
        child = self.child.compile(schema)
        values = frozenset(self.values)
        return lambda row: child(row) in values

    def signature(self):
        return "(%s in %r)" % (self.child.signature(), tuple(sorted(map(repr, self.values))))

    def __repr__(self):
        return "%r.isin(%r)" % (self.child, self.values)


class StartsWith(Expression):
    """String prefix predicate (``col LIKE 'prefix%'``)."""

    __slots__ = ("child", "prefix")

    def __init__(self, child, prefix):
        self.child = lift(child)
        self.prefix = prefix

    def _collect_columns(self, acc):
        self.child._collect_columns(acc)

    def compile(self, schema):
        child = self.child.compile(schema)
        prefix = self.prefix
        return lambda row: child(row).startswith(prefix)

    def signature(self):
        return "startswith(%s, %r)" % (self.child.signature(), self.prefix)

    def __repr__(self):
        return "StartsWith(%r, %r)" % (self.child, self.prefix)


class Contains(Expression):
    """Substring predicate (``col LIKE '%needle%'``)."""

    __slots__ = ("child", "needle")

    def __init__(self, child, needle):
        self.child = lift(child)
        self.needle = needle

    def _collect_columns(self, acc):
        self.child._collect_columns(acc)

    def compile(self, schema):
        child = self.child.compile(schema)
        needle = self.needle
        return lambda row: needle in child(row)

    def signature(self):
        return "contains(%s, %r)" % (self.child.signature(), self.needle)

    def __repr__(self):
        return "Contains(%r, %r)" % (self.child, self.needle)


def starts_with(expr, prefix):
    """Builder shorthand for :class:`StartsWith`."""
    return StartsWith(expr, prefix)


def contains(expr, needle):
    """Builder shorthand for :class:`Contains`."""
    return Contains(expr, needle)


TRUE = Const(True)

#: Aggregate functions supported by the engine (paper section 2.3 supports
#: aggregate operators; MIN/MAX have the rescan-on-delete behaviour the
#: evaluation section exercises with Q15).
AGG_FUNCS = ("sum", "count", "avg", "min", "max")


class AggSpec:
    """One aggregate of a group-by: ``func(expr) AS alias``."""

    __slots__ = ("func", "expr", "alias")

    def __init__(self, func, expr, alias):
        if func not in AGG_FUNCS:
            raise ExpressionError(
                "unknown aggregate %r; supported: %s" % (func, ", ".join(AGG_FUNCS))
            )
        if func != "count" and expr is None:
            raise ExpressionError("aggregate %r needs an input expression" % func)
        self.func = func
        self.expr = expr if expr is not None else Const(1)
        self.alias = alias

    def signature(self):
        return "%s(%s)->%s" % (self.func, self.expr.signature(), self.alias)

    def __repr__(self):
        return "AggSpec(%r, %r, %r)" % (self.func, self.expr, self.alias)


def agg_sum(expr, alias):
    """``SUM(expr) AS alias``"""
    return AggSpec("sum", lift(expr), alias)


def agg_count(alias, expr=None):
    """``COUNT(*) AS alias`` (or ``COUNT(expr)``)."""
    return AggSpec("count", lift(expr) if expr is not None else None, alias)


def agg_avg(expr, alias):
    """``AVG(expr) AS alias``"""
    return AggSpec("avg", lift(expr), alias)


def agg_min(expr, alias):
    """``MIN(expr) AS alias``"""
    return AggSpec("min", lift(expr), alias)


def agg_max(expr, alias):
    """``MAX(expr) AS alias``"""
    return AggSpec("max", lift(expr), alias)
