"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.harness fig9  --scale 0.5 --max-pace 100
    python -m repro.harness fig11 --scale 0.4 --jobs 4
    python -m repro.harness all   --scale 0.3 --max-pace 50 --no-cache

Each experiment prints the same rows/series the paper's figure or table
reports.  See EXPERIMENTS.md for expected shapes.

``--jobs N`` fans the independent (approach, constraint-set) cells of the
sweep experiments out over N worker processes (0 = all cores); results
are identical to the serial run.  Calibration results are cached on disk
between runs (``--cache-dir``, default ``$REPRO_CACHE_DIR`` or
``~/.cache/repro-calibration``); ``--no-cache`` disables that.

Observability (docs/OBSERVABILITY.md): ``--trace FILE`` writes a Chrome
trace-event JSON (open in Perfetto or chrome://tracing) merging spans
from the driver and every ``--jobs`` worker; ``--metrics FILE`` writes
the final counter/gauge/histogram snapshot; ``--decision-log FILE``
writes the optimizer's decision log as JSON lines; ``--log-level`` turns
on stderr logging.  Any of the three export flags enables collection.
"""

import argparse
import json
import os
import sys
import time

from .. import obs
from ..cost.cache import CalibrationCache, set_default_cache
from ..obs import OBS
from . import experiments

EXPERIMENTS = {
    "fig9": lambda args, config: experiments.fig9(
        args.scale, args.max_pace, config=config, jobs=args.jobs,
        catalog_seed=args.seed,
    ),
    "fig10": lambda args, config: experiments.fig10(
        args.scale, config=config, catalog_seed=args.seed
    ),
    "fig11": lambda args, config: experiments.fig11(
        args.scale, args.max_pace, config=config, jobs=args.jobs,
        catalog_seed=args.seed,
    ),
    "fig12": lambda args, config: experiments.fig12(
        args.scale, args.max_pace, config=config, jobs=args.jobs,
        catalog_seed=args.seed,
    ),
    "fig13": lambda args, config: experiments.fig13(
        args.scale, args.max_pace, config=config, catalog_seed=args.seed
    ),
    "fig14": lambda args, config: experiments.fig14(
        args.scale, args.max_pace, config=config, jobs=args.jobs,
        catalog_seed=args.seed,
    ),
    "fig15": lambda args, config: experiments.fig15(
        args.scale, catalog_seed=args.seed
    ),
    "fig16": lambda args, config: experiments.fig16(
        args.scale, args.max_pace, config=config, catalog_seed=args.seed
    ),
    "fig17": lambda args, config: experiments.fig17(
        args.scale, args.max_pace, config=config, jobs=args.jobs,
        catalog_seed=args.seed,
    ),
    "table1": lambda args, config: experiments.table1(
        args.scale, args.max_pace, config=config, jobs=args.jobs,
        catalog_seed=args.seed,
    ),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the iShare paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--scale", type=float, default=0.4,
                        help="TPC-H micro scale factor (default 0.4)")
    parser.add_argument("--max-pace", type=int, default=100,
                        help="max pace J (default 100, as in the paper)")
    parser.add_argument("--state-factor", type=float, default=0.3,
                        help="per-entry state maintenance charge")
    parser.add_argument("--seed", type=int, default=5,
                        help="TPC-H catalog generation seed (default 5); "
                             "recorded in every report header/export")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent experiment "
                             "cells (default 1 = serial, 0 = all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk calibration cache")
    parser.add_argument("--cache-dir", default=None,
                        help="calibration cache directory (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-calibration)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the run "
                             "(open in Perfetto / chrome://tracing)")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="write the final metrics snapshot as JSON")
    parser.add_argument("--decision-log", default=None, metavar="FILE",
                        help="write the optimizer decision log (JSON lines)")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="log the repro logger hierarchy to stderr")
    args = parser.parse_args(argv)
    if args.jobs == 0:
        args.jobs = os.cpu_count() or 1

    if args.no_cache:
        set_default_cache(None)
    else:
        set_default_cache(CalibrationCache(args.cache_dir))

    if args.trace or args.metrics or args.decision_log:
        obs.enable(process_name="repro-harness")
    if args.log_level:
        obs.configure_logging(args.log_level)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        config = experiments.default_config(args.max_pace, args.state_factor)
        started = time.monotonic()
        result = EXPERIMENTS[name](args, config)
        print(result.text())
        timings = result.data.get("timings")
        if timings:
            print(
                "\n[%s: %d cells, %.1f cell-seconds over %d jobs, "
                "wall %.1fs, speedup %.1fx]"
                % (
                    name,
                    len(timings["cells"]),
                    timings["cell_seconds_total"],
                    timings["jobs"],
                    timings["wall_seconds"],
                    timings["speedup"],
                )
            )
        print("\n[%s finished in %.1fs]\n" % (name, time.monotonic() - started))

    if OBS.enabled:
        if args.trace:
            OBS.tracer.export(args.trace)
            print("[trace: %d events -> %s]"
                  % (len(OBS.tracer.events), args.trace))
        if args.metrics:
            with open(args.metrics, "w") as handle:
                json.dump(OBS.metrics.snapshot(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print("[metrics -> %s]" % args.metrics)
        if args.decision_log:
            OBS.declog.export(args.decision_log)
            print("[decision log: %d records -> %s]"
                  % (len(OBS.declog.records), args.decision_log))
    return 0


if __name__ == "__main__":
    sys.exit(main())
