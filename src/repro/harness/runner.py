"""Experiment runner: optimize, execute, measure, compare to goals.

One :class:`ExperimentRunner` wraps a catalog + query batch and runs any
of the section 5.2 approaches end to end:

1. build the reference (unshared, batch) execution once -- it provides
   the measured per-query batch latencies that latency *goals* are
   derived from (section 5.1: goal = relative constraint x batch
   latency), and the estimated solo batch work that absolute final-work
   constraints are derived from;
2. run the approach's optimizer to get a plan + pace configuration;
3. execute the plan with the engine and measure total work / per-query
   latencies;
4. compare against the goals into a missed-latency summary.
"""

import logging

from ..core.optimizer import (
    OptimizerConfig,
    optimize_ishare,
    optimize_noshare_nonuniform,
    optimize_noshare_uniform,
    optimize_share_uniform,
    reference_absolute_constraints,
)
from ..engine.calibrate import calibrate_plan
from ..engine.executor import PlanExecutor
from ..engine.metrics import MissedLatencySummary
from ..mqo.merge import build_unshared_plan
from ..obs import OBS, trace

logger = logging.getLogger(__name__)

#: canonical approach names, in the paper's presentation order
APPROACHES = (
    "NoShare-Uniform",
    "NoShare-Nonuniform",
    "Share-Uniform",
    "iShare",
)

#: ablation variants of section 5.4
VARIANTS = (
    "iShare (w/o unshare)",
    "iShare (Brute-Force)",
)


class ApproachResult:
    """Everything measured for one approach under one constraint set."""

    def __init__(self, name, optimization, run, goals_seconds, missed):
        self.name = name
        self.optimization = optimization
        self.run = run
        self.goals_seconds = goals_seconds
        self.missed = missed

    @property
    def total_seconds(self):
        return self.run.total_seconds

    @property
    def total_work(self):
        return self.run.total_work

    @property
    def optimization_seconds(self):
        return self.optimization.optimization_seconds

    def __repr__(self):
        return "ApproachResult(%s, %.1fs, missed mean %.1f%%)" % (
            self.name,
            self.total_seconds,
            self.missed.mean_percent,
        )


class ExperimentRunner:
    """Runs the paper's approaches over one workload."""

    def __init__(self, catalog, queries, config=None):
        self.catalog = catalog
        self.queries = list(queries)
        self.config = config or OptimizerConfig()
        self._batch_latency = None
        self._constraint_cache = {}

    # -- reference measurements ------------------------------------------------

    def batch_latencies(self):
        """Measured per-query latency of separate one-batch execution."""
        if self._batch_latency is None:
            plan = build_unshared_plan(self.catalog, self.queries)
            calibration = calibrate_plan(plan, self.config.stream_config)
            self._batch_latency = dict(calibration.query_batch_latency)
        return self._batch_latency

    def absolute_constraints(self, relative_constraints):
        """Reference absolute final-work constraints (shared by approaches)."""
        key = tuple(sorted(relative_constraints.items()))
        cached = self._constraint_cache.get(key)
        if cached is None:
            cached = reference_absolute_constraints(
                self.catalog, self.queries, relative_constraints, self.config
            )
            self._constraint_cache[key] = cached
        return cached

    def latency_goals(self, relative_constraints):
        """Per-query latency goals in seconds (section 5.1)."""
        latencies = self.batch_latencies()
        return {
            qid: relative * latencies[qid]
            for qid, relative in relative_constraints.items()
        }

    # -- running an approach -----------------------------------------------------

    def _optimizer_for(self, name):
        if name == "NoShare-Uniform":
            return optimize_noshare_uniform, {}
        if name == "NoShare-Nonuniform":
            return optimize_noshare_nonuniform, {}
        if name == "Share-Uniform":
            return optimize_share_uniform, {}
        if name == "iShare":
            return optimize_ishare, {}
        if name == "iShare (w/o unshare)":
            return optimize_ishare, {"enable_unshare": False}
        if name == "iShare (Brute-Force)":
            return optimize_ishare, {"brute_force_split": True}
        raise ValueError("unknown approach %r" % (name,))

    def run_approach(self, name, relative_constraints, pace_override=None):
        """Optimize and execute one approach; returns :class:`ApproachResult`.

        ``pace_override`` skips optimization and executes the approach's
        plan shape under the given pace configuration (used by the
        manual-tuning experiment, Figure 13).
        """
        optimizer, overrides = self._optimizer_for(name)
        config = self.config.replace(**overrides) if overrides else self.config
        with trace.span("harness.approach", approach=name):
            absolute = self.absolute_constraints(relative_constraints)
            optimization = optimizer(
                self.catalog, self.queries, relative_constraints, config,
                absolute_constraints=absolute,
            )
            pace_config = dict(pace_override) if pace_override else optimization.pace_config
            executor = PlanExecutor(optimization.plan, self.config.stream_config)
            run = executor.run(pace_config, collect_results=False)
        goals = self.latency_goals(relative_constraints)
        missed = MissedLatencySummary()
        for qid, goal in goals.items():
            missed.add(run.query_latency_seconds(qid), goal)
        result = ApproachResult(name, optimization, run, goals, missed)
        logger.info(
            "%s: measured %.2fs total, missed mean %.1f%% / max %.1f%%",
            name, result.total_seconds,
            missed.mean_percent, missed.max_percent,
        )
        if OBS.enabled:
            OBS.metrics.counter("harness.approaches", approach=name).inc()
        return result

    def run_all(self, relative_constraints, names=APPROACHES, jobs=1):
        """Run several approaches under the same constraints.

        ``jobs>1`` fans the independent approaches out over worker
        processes (:mod:`repro.harness.parallel`); ``jobs=1`` keeps the
        historical serial loop.  Result order always follows ``names``.
        """
        if jobs == 1:
            return [self.run_approach(name, relative_constraints) for name in names]
        from .parallel import ExperimentCell, run_cells

        cells = [ExperimentCell(name, relative_constraints) for name in names]
        return [outcome.result for outcome in run_cells(self, cells, jobs=jobs)]
