"""Experiment harness: runners, report formatting, per-figure drivers."""

from .runner import APPROACHES, VARIANTS, ApproachResult, ExperimentRunner
from .recurring import RecurringSimulation, DayOutcome
from .parallel import CellOutcome, ExperimentCell, run_cells, timing_report
from .report import format_table, missed_latency_row, MISSED_HEADERS
from .experiments import (
    default_config,
    ExperimentResult,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    two_phase_baseline,
    PAIRS,
)

__all__ = [
    "APPROACHES",
    "VARIANTS",
    "ApproachResult",
    "ExperimentRunner",
    "RecurringSimulation",
    "DayOutcome",
    "CellOutcome",
    "ExperimentCell",
    "run_cells",
    "timing_report",
    "format_table",
    "missed_latency_row",
    "MISSED_HEADERS",
    "default_config",
    "ExperimentResult",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "table1",
    "two_phase_baseline",
    "PAIRS",
]
