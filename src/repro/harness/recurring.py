"""Recurring execution across trigger windows (the paper's deployment).

The paper's setting is *scheduled* queries: the same batch re-runs over
every trigger window (e.g. each day's load), and the optimizer works from
history — statistics calibrated on previous windows (section 2.1) and,
optionally, per-subplan corrections from the previous window's measured
execution (section 3.2's "calibrate ... based on previous query
executions").

:class:`RecurringSimulation` replays that loop: for each day it

1. builds the shared plan and calibrates it on *yesterday's* data,
2. optionally folds in yesterday's measured feedback,
3. runs the iShare pace search (+ decomposition),
4. executes the plan against *today's* data and measures total work and
   missed latencies against goals derived from yesterday's batch run.
"""

from ..core.decompose import decompose_full_plan
from ..core.greedy import PaceSearch
from ..cost.memo import PlanCostModel
from ..engine.calibrate import calibrate_plan
from ..engine.executor import PlanExecutor
from ..engine.metrics import MissedLatencySummary
from ..mqo.merge import MQOOptimizer, build_unshared_plan


class DayOutcome:
    """What one trigger window produced."""

    __slots__ = ("day", "total_work", "missed", "pace_config", "actions")

    def __init__(self, day, total_work, missed, pace_config, actions):
        self.day = day
        self.total_work = total_work
        self.missed = missed
        self.pace_config = pace_config
        self.actions = actions

    def __repr__(self):
        return "DayOutcome(day=%d, work=%.0f, missed mean %.1f%%)" % (
            self.day,
            self.total_work,
            self.missed.mean_percent,
        )


class RecurringSimulation:
    """Replays the scheduled-query loop over successive data windows.

    Parameters
    ----------
    make_catalog:
        ``day -> Catalog`` factory producing each window's data (same
        schemas, fresh rows; e.g. ``lambda day: generate_catalog(scale,
        seed=day)``).
    make_queries:
        ``catalog -> [Query]`` factory (the recurring query batch).
    config:
        an :class:`~repro.core.optimizer.OptimizerConfig`.
    use_feedback:
        carry yesterday's measured per-subplan corrections into today's
        estimates (requires the plan structure to be stable day to day,
        which it is for a fixed query batch).
    """

    def __init__(self, make_catalog, make_queries, config, use_feedback=True):
        self.make_catalog = make_catalog
        self.make_queries = make_queries
        self.config = config
        self.use_feedback = use_feedback

    def run(self, days, relative_constraints):
        """Simulate ``days`` windows; returns a list of :class:`DayOutcome`.

        Day 0 has no history: it calibrates and measures on its own data
        (the bootstrap run every deployment needs once).
        """
        outcomes = []
        history_catalog = None
        previous_run = None
        previous_paces = None
        for day in range(days):
            today = self.make_catalog(day)
            basis = history_catalog if history_catalog is not None else today

            # plan + statistics from history
            queries = self.make_queries(basis)
            plan = MQOOptimizer(
                basis, self.config.min_shared_operators
            ).build_shared_plan(queries)
            calibrate_plan(plan, self.config.stream_config)
            model = PlanCostModel(plan, self.config.cost_config)
            if self.use_feedback and previous_run is not None:
                model.apply_feedback(previous_run, previous_paces)
            constraints = model.absolute_constraints(relative_constraints)

            search = PaceSearch(model, constraints, self.config.max_pace)
            found = search.find()
            plan_out, paces = plan, found.pace_config
            actions = []
            if self.config.enable_unshare:
                outcome = decompose_full_plan(
                    plan, found.pace_config, constraints, self.config.max_pace,
                    cost_config=self.config.cost_config,
                    enable_partial=self.config.enable_partial,
                    cost_model=model,
                )
                plan_out, paces = outcome.plan, outcome.pace_config
                actions = outcome.actions

            # goals from history: yesterday's separate batch latencies
            goals = self._goals(basis, queries, relative_constraints)

            # execute against *today's* data
            executor = PlanExecutor(
                plan_out, self.config.stream_config, catalog=today
            )
            run = executor.run(paces, collect_results=False)
            missed = MissedLatencySummary()
            for qid, goal in goals.items():
                missed.add(run.query_latency_seconds(qid), goal)
            outcomes.append(
                DayOutcome(day, run.total_work, missed, dict(paces), actions)
            )

            # today's measured run becomes tomorrow's history (feedback is
            # only transferable while the plan shape is unchanged)
            history_catalog = today
            previous_run = run if plan_out is plan else None
            previous_paces = dict(paces) if plan_out is plan else None
        return outcomes

    def _goals(self, catalog, queries, relative_constraints):
        plan = build_unshared_plan(catalog, queries)
        calibration = calibrate_plan(plan, self.config.stream_config)
        return {
            qid: relative_constraints[qid] * calibration.query_batch_latency[qid]
            for qid in relative_constraints
        }
