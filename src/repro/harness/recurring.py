"""Recurring execution across trigger windows (the paper's deployment).

The paper's setting is *scheduled* queries: the same batch re-runs over
every trigger window (e.g. each day's load), and the optimizer works from
history — statistics calibrated on previous windows (section 2.1) and,
optionally, per-subplan corrections from the previous window's measured
execution (section 3.2's "calibrate ... based on previous query
executions").

:class:`RecurringSimulation` replays that loop: for each day it

1. builds the shared plan and calibrates it on *yesterday's* data,
2. optionally folds in yesterday's measured feedback,
3. runs the iShare pace search (+ decomposition),
4. executes the plan against *today's* data and measures total work and
   missed latencies against goals derived from yesterday's batch run.
"""

from ..core.decompose import decompose_full_plan
from ..core.greedy import PaceSearch
from ..core.pace import uniform_configuration
from ..cost.memo import PlanCostModel, fold_run_for_feedback
from ..engine.calibrate import calibrate_plan
from ..errors import OptimizationError
from ..engine.executor import PlanExecutor
from ..engine.metrics import MissedLatencySummary
from ..mqo.merge import MQOOptimizer, build_unshared_plan
from ..obs.slack import SlackLedger


class DayOutcome:
    """What one trigger window produced."""

    __slots__ = ("day", "total_work", "missed", "pace_config", "actions",
                 "slack")

    def __init__(self, day, total_work, missed, pace_config, actions,
                 slack=None):
        self.day = day
        self.total_work = total_work
        self.missed = missed
        self.pace_config = pace_config
        self.actions = actions
        #: {qid: slack-ledger entry} -- per-query deadline headroom,
        #: deferral against the eagerest plan, drift projection
        self.slack = slack or {}

    def __repr__(self):
        return "DayOutcome(day=%d, work=%.0f, missed mean %.1f%%)" % (
            self.day,
            self.total_work,
            self.missed.mean_percent,
        )


class RecurringSimulation:
    """Replays the scheduled-query loop over successive data windows.

    Parameters
    ----------
    make_catalog:
        ``day -> Catalog`` factory producing each window's data (same
        schemas, fresh rows; e.g. ``lambda day: generate_catalog(scale,
        seed=day)``).
    make_queries:
        ``catalog -> [Query]`` factory (the recurring query batch).
    config:
        an :class:`~repro.core.optimizer.OptimizerConfig`.
    use_feedback:
        carry yesterday's measured per-subplan corrections into today's
        estimates.  The freshly merged plan of a fixed query batch has
        the same subplan ids every day, so a measurement on the
        *pre-decomposition* plan transfers directly; when decomposition
        rewrote yesterday's plan, the measured per-piece work is folded
        back onto the pre-decomposition ids through the surgery's sid
        lineage (:func:`repro.cost.memo.fold_run_for_feedback`), with
        merge-tainted subplans degrading to "no measurement" rather than
        dropping the whole window's feedback.
    """

    def __init__(self, make_catalog, make_queries, config, use_feedback=True):
        self.make_catalog = make_catalog
        self.make_queries = make_queries
        self.config = config
        self.use_feedback = use_feedback

    def run(self, days, relative_constraints):
        """Simulate ``days`` windows; returns a list of :class:`DayOutcome`.

        Day 0 has no history: it calibrates and measures on its own data
        (the bootstrap run every deployment needs once).
        """
        if not isinstance(days, int) or isinstance(days, bool) or days < 1:
            raise OptimizationError(
                "RecurringSimulation.run needs a positive whole number of "
                "days, got %r" % (days,)
            )
        outcomes = []
        history_catalog = None
        previous_run = None
        previous_paces = None
        slack_ledger = SlackLedger()
        for day in range(days):
            today = self.make_catalog(day)
            basis = history_catalog if history_catalog is not None else today

            # plan + statistics from history
            queries = self.make_queries(basis)
            plan = MQOOptimizer(
                basis, self.config.min_shared_operators
            ).build_shared_plan(queries)
            calibrate_plan(plan, self.config.stream_config)
            model = PlanCostModel(plan, self.config.cost_config)
            if self.use_feedback and previous_run is not None:
                model.apply_feedback(previous_run, previous_paces)
            constraints = model.absolute_constraints(relative_constraints)

            search = PaceSearch(model, constraints, self.config.max_pace)
            found = search.find()
            plan_out, paces = plan, found.pace_config
            actions = []
            outcome = None
            if self.config.enable_unshare:
                outcome = decompose_full_plan(
                    plan, found.pace_config, constraints, self.config.max_pace,
                    cost_config=self.config.cost_config,
                    enable_partial=self.config.enable_partial,
                    cost_model=model,
                )
                plan_out, paces = outcome.plan, outcome.pace_config
                actions = outcome.actions

            # goals from history: yesterday's separate batch latencies
            goals = self._goals(basis, queries, relative_constraints)

            # execute against *today's* data
            executor = PlanExecutor(
                plan_out, self.config.stream_config, catalog=today
            )
            run = executor.run(paces, collect_results=False)
            missed = MissedLatencySummary()
            for qid, goal in goals.items():
                missed.add(run.query_latency_seconds(qid), goal)

            # slack accounting: headroom against the work bound, deferral
            # against the eagerest (uniform max pace) plan's estimate --
            # evaluated on the pre-decomposition model, whose memo the
            # pace search already warmed
            eager_final = self._eager_final(model, plan)
            slack = slack_ledger.record_window(
                day,
                {
                    qid: {
                        "goal_work": bound,
                        "final_work": run.query_final_work.get(qid, 0.0),
                        "eager_final_work": eager_final.get(qid),
                    }
                    for qid, bound in constraints.items()
                },
                seconds=self.config.stream_config.seconds,
            )
            outcomes.append(
                DayOutcome(day, run.total_work, missed, dict(paces), actions,
                           slack=slack)
            )

            # today's measured run becomes tomorrow's history; tomorrow's
            # freshly merged plan reproduces *this* plan's pre-decomposition
            # sids, so a run measured on a decomposed plan is folded back
            # onto them through the surgery's sid lineage
            history_catalog = today
            if plan_out is plan:
                previous_run = run
                previous_paces = dict(paces)
            else:
                previous_run, previous_paces = fold_run_for_feedback(
                    run, paces, outcome.sid_origin, outcome.tainted_origins,
                    base_paces=found.pace_config,
                )
        return outcomes

    def _eager_final(self, model, plan):
        """Estimated per-query final work at uniform maximum pace."""
        evaluation = model.evaluate(
            uniform_configuration(plan, self.config.max_pace)
        )
        return dict(evaluation.query_final_work)

    def _goals(self, catalog, queries, relative_constraints):
        plan = build_unshared_plan(catalog, queries)
        calibration = calibrate_plan(plan, self.config.stream_config)
        return {
            qid: relative_constraints[qid] * calibration.query_batch_latency[qid]
            for qid in relative_constraints
        }
