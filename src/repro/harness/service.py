"""Sharded execution of a churn schedule over the worker pool.

Tenants are statically sharded -- ``crc32(tenant) % shards``, a stable
hash, unlike salted ``hash()`` -- and each shard is one fully independent
:class:`~repro.service.core.QueryService` with its own plan, catalog
stream and admission queue.  Sharding by *tenant* keeps every tenant's
queries (and its fairness budget) on one service; cross-tenant work
sharing is deliberately given up at the shard boundary, which is the
standard scale-out trade of a shared-execution service.

The serial path replays shards in index order; ``jobs>1`` fans the same
shard schedules out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(reusing :mod:`repro.harness.parallel`'s worker error capture and
observability shipping) and merges results in shard order.  The whole
pipeline is a seeded simulation, so the merged report is bit-identical
to the serial one at any job count.
"""

import zlib
from concurrent.futures import ProcessPoolExecutor

from .. import obs
from ..core.optimizer import OptimizerConfig
from ..cost import cache as calibration_cache
from ..engine.stream import StreamConfig
from ..errors import ReproError, ServiceError
from ..service.core import QueryService
from ..service.schedule import replay_schedule, tenant_of_events, validate_schedule
from ..workloads.tpch import build_query as tpch_build_query
from ..workloads.tpch import generate_catalog
from .parallel import _CapturedError, _reraise, resolve_jobs


def shard_of(tenant, shards):
    """The shard index owning ``tenant`` (stable across processes/runs)."""
    return zlib.crc32(tenant.encode("utf-8")) % shards


def build_shard_service(shard_schedule):
    """One shard's :class:`QueryService` plus its query factory.

    The workload spec names a TPC-H window stream: ``scale``, ``seed``
    (window ``w`` draws ``seed + w * window_seed_stride``).  Returns
    ``(service, build_query)`` for :func:`~repro.service.schedule.replay_schedule`.
    """
    spec = shard_schedule.get("workload", {})
    scale = float(spec.get("scale", 0.05))
    seed = int(spec.get("seed", 100))
    stride = int(spec.get("window_seed_stride", 1))

    def make_catalog(window):
        return generate_catalog(scale=scale, seed=seed + window * stride)

    stream_config = StreamConfig()
    if "state_factor" in shard_schedule:
        stream_config = StreamConfig(
            state_factor=float(shard_schedule["state_factor"])
        )
    config = OptimizerConfig(
        max_pace=int(shard_schedule.get("max_pace", 8)),
        stream_config=stream_config,
    )
    service = QueryService(
        make_catalog,
        config,
        admission=shard_schedule.get("admission", "reject"),
        tenant_budgets=shard_schedule.get("tenant_budgets"),
    )

    def build_query(name, query_id):
        return tpch_build_query(service.basis_catalog, name, query_id)

    return service, build_query


def _run_shard(shard_index, shard_schedule, collect_results=False):
    """Replay one shard's schedule; returns its JSON-native report.

    The decision log is stamped with ``shard-<index>`` for the replay's
    duration -- this is the *shared* code path of the serial loop and the
    worker processes, so merged logs carry identical ``run`` ids at any
    job count and sort globally by ``(run, seq)``.
    """
    observing = obs.is_enabled()
    previous_run = (
        obs.OBS.declog.set_run("shard-%d" % shard_index) if observing else None
    )
    try:
        service, build_query = build_shard_service(shard_schedule)
        outcomes, decisions = replay_schedule(
            service, shard_schedule, build_query, collect_results=collect_results
        )
    finally:
        if observing:
            obs.OBS.declog.set_run(previous_run)
    feedback = (
        service.model.feedback_factors() if service.model is not None else {}
    )
    return {
        "shard": shard_index,
        "windows": [outcome.to_dict() for outcome in outcomes],
        "admission": [decision.to_dict() for decision in decisions],
        # measured correction factors, for the regret report's oracle
        "feedback": {
            str(sid): [total, final]
            for sid, (total, final) in sorted(feedback.items())
        },
    }


# -- worker side -----------------------------------------------------------------

def _init_service_worker(cache_dir, obs_enabled):
    import os

    if cache_dir is not None:
        calibration_cache.set_default_cache(
            calibration_cache.CalibrationCache(cache_dir)
        )
    # forked workers inherit the driver's live session -- reset it
    obs.disable()
    if obs_enabled:
        obs.enable(process_name="repro-service-%d" % os.getpid())


def _service_worker(shard_index, shard_schedule):
    try:
        report = _run_shard(shard_index, shard_schedule)
    except ReproError as exc:
        report = _CapturedError(exc)
    return shard_index, report, obs.drain_worker_payload()


# -- driver side -----------------------------------------------------------------

def run_service_schedule(schedule, jobs=1):
    """Run a churn schedule across tenant shards; returns the merged report.

    ``jobs=1`` replays shards serially in index order; ``jobs>1``
    distributes whole shards over worker processes.  Either way the
    report -- window outcomes, admission decisions, summary -- is
    bit-identical, and observability payloads are absorbed in shard
    order so decision logs and metrics merge deterministically too.
    """
    ordered = validate_schedule(schedule)
    shards = schedule.get("shards", 1)
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ServiceError(
            "schedule 'shards' must be a positive integer, got %r" % (shards,)
        )
    owners = tenant_of_events(ordered)
    shard_events = [[] for _ in range(shards)]
    for _, event in ordered:
        tenant = event.get("tenant") or owners[event["query_id"]]
        shard_events[shard_of(tenant, shards)].append(event)
    base = {key: value for key, value in schedule.items() if key != "events"}
    shard_schedules = [
        dict(base, events=events) for events in shard_events
    ]

    jobs = resolve_jobs(jobs)
    if jobs <= 1 or shards <= 1:
        if obs.is_enabled() and shards > 1:
            # cycle each shard's observability through the same
            # drain/absorb path the workers use: counters then merge as
            # per-shard sums in both modes, so even float-valued counters
            # stay bit-identical between serial and --jobs N
            reports = []
            payloads = []
            for index, shard_schedule in enumerate(shard_schedules):
                reports.append(_run_shard(index, shard_schedule))
                payloads.append(obs.drain_worker_payload())
            for payload in payloads:
                obs.absorb_worker_payload(payload)
        else:
            reports = [
                _run_shard(index, shard_schedule)
                for index, shard_schedule in enumerate(shard_schedules)
            ]
    else:
        cache = calibration_cache.get_default_cache()
        cache_dir = cache.cache_dir if cache is not None else None
        observing = obs.is_enabled()
        reports = [None] * shards
        with ProcessPoolExecutor(
            max_workers=min(jobs, shards),
            initializer=_init_service_worker,
            initargs=(cache_dir, observing),
        ) as pool:
            futures = [
                pool.submit(_service_worker, index, shard_schedule)
                for index, shard_schedule in enumerate(shard_schedules)
            ]
            completed = {}
            for future in futures:
                shard_index, report, payload = future.result()
                completed[shard_index] = (report, payload)
            # absorb observability and surface errors in shard order, so
            # the merged sequence matches the serial replay exactly
            for shard_index in range(shards):
                report, payload = completed[shard_index]
                obs.absorb_worker_payload(payload)
                if isinstance(report, _CapturedError):
                    _reraise(report)
                reports[shard_index] = report
    return {
        "schedule": {
            "windows": schedule["windows"],
            "window_seconds": schedule.get("window_seconds", 60.0),
            "shards": shards,
            "admission": schedule.get("admission", "reject"),
        },
        "shards": reports,
        "summary": summarize_reports(reports),
    }


def summarize_reports(reports):
    """SLO-miss rate, work per query-window, slack and admission tallies."""
    slo_checks = 0
    slo_misses = 0
    total_work = 0.0
    tenants = {}
    statuses = {"admitted": 0, "rejected": 0, "queued": 0}
    min_headroom = None
    deferred_work = 0.0
    projected_misses = 0  # queries projected to miss, as of their last window
    latest_projection = {}  # (shard, qid) -> projected_windows_to_miss
    conserved = True
    for report in reports:
        for window in report["windows"]:
            total_work += window["total_work"]
            for entry in window["queries"].values():
                slo_checks += 1
                if entry["missed_seconds"] > 0:
                    slo_misses += 1
            for qid, entry in window.get("slack", {}).items():
                headroom = entry["headroom_work"]
                if min_headroom is None or headroom < min_headroom:
                    min_headroom = headroom
                deferred_work += entry.get("deferred_work") or 0.0
                latest_projection[(report["shard"], qid)] = entry[
                    "projected_windows_to_miss"
                ]
            if not window.get("attribution", {}).get("conserved", True):
                conserved = False
            for tenant, bucket in window["tenants"].items():
                merged = tenants.setdefault(
                    tenant, {"work": 0.0, "query_windows": 0, "slo_misses": 0}
                )
                merged["work"] += bucket["work"]
                merged["query_windows"] += bucket["queries"]
                merged["slo_misses"] += bucket["slo_misses"]
        for decision in report["admission"]:
            if decision["status"] in statuses:
                statuses[decision["status"]] += 1
    projected_misses = sum(
        1 for value in latest_projection.values() if value is not None
    )
    return {
        "total_work": total_work,
        "query_windows": slo_checks,
        "slo_misses": slo_misses,
        "slo_miss_rate": (slo_misses / slo_checks) if slo_checks else 0.0,
        "work_per_query_window": (
            total_work / slo_checks if slo_checks else 0.0
        ),
        "slack": {
            "min_headroom_work": min_headroom,
            "deferred_work": deferred_work,
            "projected_misses": projected_misses,
        },
        "attribution_conserved": conserved,
        "tenants": {t: tenants[t] for t in sorted(tenants)},
        "admission": statuses,
    }
