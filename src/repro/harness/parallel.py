"""Process-parallel execution of independent experiment cells.

One *cell* is an ``(approach, constraint_set)`` pair -- the unit both
:meth:`~repro.harness.runner.ExperimentRunner.run_all` and the per-figure
sweeps in :mod:`repro.harness.experiments` iterate over.  Cells are
mutually independent (each builds its own plan, calibrates, optimizes and
executes), so they fan out cleanly over a
:class:`~concurrent.futures.ProcessPoolExecutor`: every worker receives
the workload (catalog, query batch, optimizer config) once via the pool
initializer and then processes cells from tiny ``(approach, constraints)``
task tuples.

Determinism: the whole pipeline is a seeded simulation, so a worker
process computes bit-identical results to the serial path; outcomes are
re-ordered to the submission order before returning, and ``jobs=1`` does
not touch multiprocessing at all -- it runs the exact serial loop the
harness always ran.

Workers inherit the calibration cache directory (if a process-wide cache
is installed, see :mod:`repro.cost.cache`), so concurrent cells share
reference calibrations through the on-disk store instead of each paying
for their own.

When observability is enabled in the driver (:mod:`repro.obs`), it is
enabled in every worker too: each worker collects its own spans, metrics
and decisions per cell and ships them back with the cell result; the
driver absorbs the payloads in *submission* order, and cells are
statically round-robin-assigned to workers, so the merged trace carries
every worker process's spans (distinct pids) and the merged
event/decision sequence is reproducible run to run at a fixed job count.
"""

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor

from .. import obs
from ..cost import cache as calibration_cache
from ..errors import ReproError
from ..obs import OBS, trace


class ExperimentCell:
    """One independent (approach, constraint-set) work unit."""

    __slots__ = ("approach", "relative_constraints", "key", "pace_override")

    def __init__(self, approach, relative_constraints, key=None,
                 pace_override=None):
        self.approach = approach
        self.relative_constraints = dict(relative_constraints)
        self.key = approach if key is None else key
        self.pace_override = dict(pace_override) if pace_override else None

    def __repr__(self):
        return "ExperimentCell(%r, key=%r)" % (self.approach, self.key)


class CellOutcome:
    """A cell's :class:`~repro.harness.runner.ApproachResult` + wall clock."""

    __slots__ = ("key", "approach", "result", "wall_seconds")

    def __init__(self, key, approach, result, wall_seconds):
        self.key = key
        self.approach = approach
        self.result = result
        self.wall_seconds = wall_seconds

    def __repr__(self):
        return "CellOutcome(%r, %.2fs)" % (self.key, self.wall_seconds)


def resolve_jobs(jobs):
    """Normalize a ``--jobs`` value: 0/None means every core."""
    if not jobs:
        return os.cpu_count() or 1
    return max(1, int(jobs))


# -- error propagation across the process boundary ------------------------------

class WorkerTraceback(Exception):
    """Carrier for a worker-side traceback, chained as ``__cause__``.

    Mirrors what ``concurrent.futures`` does internally, but for errors we
    capture explicitly so the original exception -- type, ``args`` *and*
    enrichment attributes like ``fuzz_seed``/``fuzz_case_path`` -- arrives
    in the driver verbatim instead of flattened to a string.
    """

    def __init__(self, text):
        super().__init__(text)
        self.text = text

    def __str__(self):
        return "\n\nworker traceback:\n%s" % self.text


class _CapturedError:
    """Picklable snapshot of a :class:`ReproError` raised in a worker.

    Snapshotting (class, args, attribute dict, formatted traceback) is
    robust where pickling live exception objects is not: reconstruction
    never depends on the exception's ``__init__`` signature, and the
    attribute dict restores post-construction enrichment (fuzz context,
    positions, ...) exactly.
    """

    __slots__ = ("exc_class", "args", "state", "traceback_text")

    def __init__(self, exc):
        self.exc_class = type(exc)
        self.args = exc.args
        self.state = dict(getattr(exc, "__dict__", {}) or {})
        self.traceback_text = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )

    def rebuild(self):
        try:
            exc = self.exc_class(*self.args)
        except Exception:
            exc = ReproError(
                "%s%r (original could not be reconstructed)"
                % (self.exc_class.__name__, self.args)
            )
        for key, value in self.state.items():
            try:
                setattr(exc, key, value)
            except Exception:
                pass
        return exc


def _reraise(captured):
    """Re-raise a captured worker error with its remote traceback chained."""
    raise captured.rebuild() from WorkerTraceback(captured.traceback_text)


# -- worker side ----------------------------------------------------------------

_WORKER_RUNNER = None


def _init_worker(catalog, queries, config, cache_dir, obs_enabled=False):
    """Build this worker's runner once; cells then arrive as tiny tuples."""
    global _WORKER_RUNNER
    from .runner import ExperimentRunner

    if cache_dir is not None:
        calibration_cache.set_default_cache(
            calibration_cache.CalibrationCache(cache_dir)
        )
    # a forked worker inherits the driver's enabled session (parent pid,
    # already-collected events) -- always start from a clean slate
    obs.disable()
    if obs_enabled:
        obs.enable(process_name="repro-worker-%d" % os.getpid())
    _WORKER_RUNNER = ExperimentRunner(catalog, queries, config)


def _run_cell(index, approach, relative_constraints, pace_override):
    started = time.monotonic()
    # stamp the decision log with this cell's stable run id (the serial
    # loop stamps the same id), so merged logs sort by (run, seq)
    if obs.OBS.enabled:
        obs.OBS.declog.set_run("cell-%d" % index)
    try:
        with trace.span("harness.cell", index=index, approach=approach):
            result = _WORKER_RUNNER.run_approach(
                approach, relative_constraints, pace_override=pace_override
            )
    except ReproError as exc:
        # snapshot instead of raising: the driver re-raises the rebuilt
        # exception verbatim (type, args, enrichment attributes) with the
        # worker traceback chained, never a stringified copy
        result = _CapturedError(exc)
    payload = obs.drain_worker_payload()
    return index, result, time.monotonic() - started, payload


def _run_cell_batch(tasks):
    """Run a statically assigned list of cells in this worker, in order.

    Stops at the first failed cell (fail-fast, like the serial loop); the
    captured error travels back inside the partial result list.
    """
    results = []
    for task in tasks:
        outcome = _run_cell(*task)
        results.append(outcome)
        if isinstance(outcome[1], _CapturedError):
            break
    return results


# -- driver side ----------------------------------------------------------------

def run_cells(runner, cells, jobs=1):
    """Run experiment cells; returns :class:`CellOutcome` in input order.

    ``jobs=1`` (the default) preserves today's exact serial behavior --
    the same ``runner.run_approach`` calls in the same order, in process.
    ``jobs>1`` fans independent cells out over worker processes; result
    ordering (and, the pipeline being deterministic, every measured
    number) is identical to the serial run.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        outcomes = []
        observing = obs.is_enabled()
        previous_run = obs.OBS.declog.run_id if observing else None
        try:
            for index, cell in enumerate(cells):
                started = time.monotonic()
                # same run id the worker path stamps for this cell
                if observing:
                    obs.OBS.declog.set_run("cell-%d" % index)
                with trace.span("harness.cell", key=str(cell.key),
                                approach=cell.approach):
                    result = runner.run_approach(
                        cell.approach, cell.relative_constraints,
                        pace_override=cell.pace_override,
                    )
                outcomes.append(
                    CellOutcome(cell.key, cell.approach, result,
                                time.monotonic() - started)
                )
        finally:
            if observing:
                obs.OBS.declog.set_run(previous_run)
        return outcomes

    cache = calibration_cache.get_default_cache()
    cache_dir = cache.cache_dir if cache is not None else None
    observing = obs.is_enabled()
    workers = min(jobs, len(cells))
    outcomes = [None] * len(cells)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(runner.catalog, runner.queries, runner.config, cache_dir,
                  observing),
    ) as pool:
        if observing:
            # Static round-robin assignment: worker k owns cells k, k+W,
            # k+2W, ...  Each worker's warm/cold history -- and therefore
            # each cell's shipped observability payload -- is then
            # identical run to run, so the merged event / metric /
            # decision sequence is deterministic.  Untraced runs keep the
            # dynamically balanced pool below.
            tasks = [
                (index, cell.approach, cell.relative_constraints,
                 cell.pace_override)
                for index, cell in enumerate(cells)
            ]
            futures = [
                pool.submit(_run_cell_batch, tasks[k::workers])
                for k in range(workers)
            ]
            completed = {}
            for future in futures:
                for index, result, wall_seconds, payload in future.result():
                    completed[index] = (result, wall_seconds, payload)
            # absorb in submission order regardless of completion order;
            # the first failing index (in submission order) re-raises its
            # captured worker error after the preceding payloads landed
            error_index = min(
                (
                    index
                    for index, (result, _, _) in completed.items()
                    if isinstance(result, _CapturedError)
                ),
                default=None,
            )
            for index, cell in enumerate(cells):
                if error_index is not None and index >= error_index:
                    break
                result, wall_seconds, payload = completed[index]
                outcomes[index] = CellOutcome(
                    cell.key, cell.approach, result, wall_seconds
                )
                obs.absorb_worker_payload(payload)
            if error_index is not None:
                result, _, payload = completed[error_index]
                obs.absorb_worker_payload(payload)
                _reraise(result)
            return outcomes

        futures = [
            pool.submit(
                _run_cell, index, cell.approach, cell.relative_constraints,
                cell.pace_override,
            )
            for index, cell in enumerate(cells)
        ]
        for future in futures:
            index, result, wall_seconds, payload = future.result()
            if isinstance(result, _CapturedError):
                _reraise(result)
            cell = cells[index]
            outcomes[index] = CellOutcome(
                cell.key, cell.approach, result, wall_seconds
            )
    return outcomes


def timing_report(outcomes, jobs, wall_seconds):
    """Structured per-cell timing block for experiment reports.

    ``speedup`` is the sum of per-cell seconds over the measured wall
    clock -- 1.0 for serial runs, approaching ``jobs`` for a perfectly
    parallel sweep; benchmarks archive it next to their result tables.
    """
    total = sum(outcome.wall_seconds for outcome in outcomes)
    return {
        "jobs": resolve_jobs(jobs),
        "wall_seconds": wall_seconds,
        "cell_seconds_total": total,
        "speedup": (total / wall_seconds) if wall_seconds > 0 else 1.0,
        "cells": [
            {
                "key": str(outcome.key),
                "approach": outcome.approach,
                "seconds": outcome.wall_seconds,
            }
            for outcome in outcomes
        ],
    }
