"""Plain-text table rendering for experiment output.

The benchmarks print the same rows/series the paper's figures and tables
report; this module keeps the formatting in one place.
"""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if abs(value) >= 1000:
            return "%.0f" % value
        return "%.2f" % value
    return str(value)


def missed_latency_row(name, summary):
    """One Table 1/2/3 style row: Mean %, Mean Sec., Max %, Max Sec."""
    mean_pct, mean_sec, max_pct, max_sec = summary.row()
    return [name, mean_pct, mean_sec, max_pct, max_sec]


MISSED_HEADERS = ("Approach", "Mean %", "Mean Sec.", "Max %", "Max Sec.")

SLACK_HEADERS = ("Query", "Goal Work", "Final Work", "Headroom",
                 "Slack Avail", "Deferred", "Util", "Win. to Miss")


def slack_row(name, entry):
    """One slack-ledger table row from a per-query ledger entry."""
    projection = entry.get("projected_windows_to_miss")
    utilization = entry.get("slack_utilization")
    return [
        name,
        entry["goal_work"],
        entry["final_work"],
        entry["headroom_work"],
        entry.get("slack_available_work", "-"),
        entry.get("deferred_work", "-"),
        "-" if utilization is None else utilization,
        "-" if projection is None else projection,
    ]


def format_slack_table(entries, title="Slack ledger"):
    """Render ``{name: slack_entry}`` as an aligned table."""
    rows = [slack_row(name, entries[name]) for name in sorted(entries, key=str)]
    return format_table(SLACK_HEADERS, rows, title=title)
