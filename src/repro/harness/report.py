"""Plain-text table rendering for experiment output.

The benchmarks print the same rows/series the paper's figures and tables
report; this module keeps the formatting in one place.
"""


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if abs(value) >= 1000:
            return "%.0f" % value
        return "%.2f" % value
    return str(value)


def missed_latency_row(name, summary):
    """One Table 1/2/3 style row: Mean %, Mean Sec., Max %, Max Sec."""
    mean_pct, mean_sec, max_pct, max_sec = summary.row()
    return [name, mean_pct, mean_sec, max_pct, max_sec]


MISSED_HEADERS = ("Approach", "Mean %", "Mean Sec.", "Max %", "Max Sec.")
