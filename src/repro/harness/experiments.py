"""Drivers that regenerate every table and figure of the paper's section 5.

Each ``figN`` / ``tableN`` function builds the workload the paper used,
runs the approaches, and returns an experiment result whose ``text()``
prints the same rows/series the paper reports.  Benchmarks under
``benchmarks/`` call these one-to-one; ``scale`` and ``max_pace`` shrink
the micro-benchmark to laptop size without changing any comparison shape.
"""

import statistics
import time

from ..core.optimizer import OptimizerConfig
from ..core.split import LocalSplitOptimizer
from ..cost.memo import OptimizationTimeout, PlanCostModel
from ..engine.calibrate import calibrate_plan
from ..engine.executor import PlanExecutor
from ..engine.stream import StreamConfig
from ..mqo.merge import MQOOptimizer, build_unshared_plan
from ..physical.hotpath import HOTPATH, columnar_available, engine_mode_label
from ..workloads.constraints import CONSTRAINT_LEVELS, random_constraints, uniform_constraints
from ..obs import OBS
from ..workloads.tpch import (
    ALL_QUERY_NAMES,
    SHARING_FRIENDLY,
    build_pair,
    build_query,
    build_variant_workload,
    build_workload,
    generate_catalog,
    mutate_query,
)
from .parallel import ExperimentCell, run_cells, timing_report
from .report import MISSED_HEADERS, format_table, missed_latency_row
from .runner import APPROACHES, ExperimentRunner


def default_config(max_pace=100, state_factor=0.3, time_budget=None):
    """The benchmark-default optimizer configuration."""
    stream = StreamConfig(state_factor=state_factor)
    return OptimizerConfig(
        max_pace=max_pace, stream_config=stream, time_budget=time_budget
    )


class ExperimentResult:
    """A named experiment with printable sections and structured data."""

    def __init__(self, name):
        self.name = name
        self.sections = []
        self.tables = []  # (headers, rows) for CSV export
        self.data = {}
        # backend attribution stamped into every report header so archived
        # results say which engine path produced them
        self.engine_mode = engine_mode_label()
        self.columnar = bool(HOTPATH.columnar and columnar_available())
        self.data["engine_mode"] = self.engine_mode
        self.data["columnar"] = self.columnar

    def add_section(self, text):
        self.sections.append(text)

    def add_table(self, headers, rows, title=None):
        """Record and render a table (kept for :meth:`to_csv`)."""
        self.tables.append((tuple(headers), [list(r) for r in rows]))
        self.add_section(format_table(headers, rows, title))

    def text(self):
        header = "== %s ==" % self.name
        engine = "[engine: %s | columnar %s]" % (
            self.engine_mode, "on" if self.columnar else "off"
        )
        return ("\n\n").join([header, engine] + self.sections)

    def to_csv(self):
        """All recorded tables as one CSV string (blank line between)."""
        import csv
        import io

        out = io.StringIO()
        writer = csv.writer(out)
        for headers, rows in self.tables:
            writer.writerow(headers)
            for row in rows:
                writer.writerow(row)
            writer.writerow([])
        return out.getvalue()

    def __repr__(self):
        return "ExperimentResult(%r)" % self.name


def _total_seconds_table(result, title, rows_by_label):
    headers = ["Constraints"] + list(APPROACHES)
    rows = []
    for label, by_approach in rows_by_label:
        rows.append([label] + [by_approach[name].total_seconds for name in APPROACHES])
    result.add_table(headers, rows, title)


def _run_sweep(runner, cells, jobs):
    """Run a sweep's cells; returns ``(outcomes, by_key, wall_seconds)``."""
    started = time.monotonic()
    outcomes = run_cells(runner, cells, jobs=jobs)
    wall_seconds = time.monotonic() - started
    by_key = {outcome.key: outcome for outcome in outcomes}
    return outcomes, by_key, wall_seconds


def _accumulate_missed(missed_all, name, approach):
    """Fold one approach run's missed latencies into the sweep totals."""
    if missed_all[name] is None:
        missed_all[name] = approach.missed
    else:
        missed_all[name].absolute.extend(approach.missed.absolute)
        missed_all[name].relative.extend(approach.missed.relative)


def _attach_observability(result):
    """Copy the current metrics snapshot into ``result.data`` (if enabled)."""
    if OBS.enabled:
        result.data["metrics"] = OBS.metrics.snapshot()
    return result


def _finish_sweep(result, outcomes, jobs, wall_seconds):
    """Shared sweep epilogue: timing block + observability metrics."""
    result.data["timings"] = timing_report(outcomes, jobs, wall_seconds)
    return _attach_observability(result)


# -- Figure 9: random relative constraints -------------------------------------

def fig9(scale=0.5, max_pace=100, seeds=(1, 2, 3), config=None, jobs=1,
         catalog_seed=5):
    """Mean/min/max total execution time over random constraint sets."""
    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_workload(catalog)
    runner = ExperimentRunner(catalog, queries, config)
    result = ExperimentResult("Figure 9: tests of random relative constraints")
    result.data["catalog_seed"] = catalog_seed
    totals = {name: [] for name in APPROACHES}
    missed_all = {name: None for name in APPROACHES}
    per_seed = []
    cells = [
        ExperimentCell(
            name, random_constraints(range(len(queries)), seed=seed),
            key=(seed, name),
        )
        for seed in seeds
        for name in APPROACHES
    ]
    outcomes, by_key, wall_seconds = _run_sweep(runner, cells, jobs)
    for seed in seeds:
        approach_results = {}
        for name in APPROACHES:
            approach = by_key[(seed, name)].result
            approach_results[name] = approach
            totals[name].append(approach.total_seconds)
            _accumulate_missed(missed_all, name, approach)
        per_seed.append((seed, approach_results))
    rows = []
    for name in APPROACHES:
        values = totals[name]
        rows.append([name, statistics.mean(values), min(values), max(values)])
    result.add_table(
        ("Approach", "Mean s", "Min s", "Max s"),
        rows,
        "Total execution time, %d random constraint sets" % len(seeds),
    )
    result.data["totals"] = totals
    result.data["missed"] = missed_all
    result.data["per_seed"] = per_seed
    return _finish_sweep(result, outcomes, jobs, wall_seconds)


# -- Figure 10: batch execution of the shared plan -----------------------------

def fig10(scale=0.5, config=None, catalog_seed=5):
    """Shared-plan batch work relative to independent batch execution."""
    config = config or default_config()
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_workload(catalog)
    unshared = build_unshared_plan(catalog, queries)
    unshared_run = PlanExecutor(unshared, config.stream_config).run(
        {s.sid: 1 for s in unshared.subplans}, collect_results=False
    )
    shared = MQOOptimizer(catalog).build_shared_plan(queries)
    shared_run = PlanExecutor(shared, config.stream_config).run(
        {s.sid: 1 for s in shared.subplans}, collect_results=False
    )
    ratio = shared_run.total_work / unshared_run.total_work
    result = ExperimentResult("Figure 10: batch execution (22 queries)")
    result.data["catalog_seed"] = catalog_seed
    result.add_table(
        ("Plan", "Total work", "Relative"),
        [
            ["Independent", unshared_run.total_work, 1.0],
            ["Shared (MQO)", shared_run.total_work, ratio],
        ],
        "One-batch execution",
    )
    result.data["ratio"] = ratio
    result.data["unshared"] = unshared_run.total_work
    result.data["shared"] = shared_run.total_work
    return _attach_observability(result)


# -- Figures 11/12: uniform relative constraints --------------------------------

def _uniform_sweep(names, title, scale, max_pace, levels, config, jobs=1,
                   catalog_seed=5):
    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_workload(catalog, names)
    runner = ExperimentRunner(catalog, queries, config)
    result = ExperimentResult(title)
    result.data["catalog_seed"] = catalog_seed
    rows_by_label = []
    missed_all = {name: None for name in APPROACHES}
    cells = [
        ExperimentCell(
            name, uniform_constraints(range(len(queries)), level),
            key=(level, name),
        )
        for level in levels
        for name in APPROACHES
    ]
    outcomes, by_key, wall_seconds = _run_sweep(runner, cells, jobs)
    for level in levels:
        by_approach = {}
        for name in APPROACHES:
            approach = by_key[(level, name)].result
            by_approach[name] = approach
            _accumulate_missed(missed_all, name, approach)
        rows_by_label.append(("rel=%.1f" % level, by_approach))
    _total_seconds_table(result, "Total execution time (s)", rows_by_label)
    result.data["rows"] = rows_by_label
    result.data["missed"] = missed_all
    return _finish_sweep(result, outcomes, jobs, wall_seconds)


def fig11(scale=0.5, max_pace=100, levels=CONSTRAINT_LEVELS, config=None,
          jobs=1, catalog_seed=5):
    """Uniform relative constraints over all 22 queries."""
    return _uniform_sweep(
        ALL_QUERY_NAMES,
        "Figure 11: uniform relative constraints (22 queries)",
        scale, max_pace, levels, config, jobs=jobs, catalog_seed=catalog_seed,
    )


def fig12(scale=0.5, max_pace=100, levels=CONSTRAINT_LEVELS, config=None,
          jobs=1, catalog_seed=5):
    """Uniform relative constraints over the sharing-friendly 10 queries."""
    return _uniform_sweep(
        SHARING_FRIENDLY,
        "Figure 12: uniform relative constraints (10 queries)",
        scale, max_pace, levels, config, jobs=jobs, catalog_seed=catalog_seed,
    )


# -- Table 1: missed latencies ---------------------------------------------------

def table1(scale=0.5, max_pace=100, seeds=(1, 2, 3), config=None, jobs=1,
           catalog_seed=5):
    """Missed latencies of random and uniform relative constraints."""
    random_result = fig9(scale, max_pace, seeds, config, jobs=jobs,
                         catalog_seed=catalog_seed)
    uniform22 = fig11(scale, max_pace, config=config, jobs=jobs,
                      catalog_seed=catalog_seed)
    uniform10 = fig12(scale, max_pace, config=config, jobs=jobs,
                      catalog_seed=catalog_seed)
    result = ExperimentResult("Table 1: missed latencies (random and uniform)")
    result.data["catalog_seed"] = catalog_seed
    rows = [
        missed_latency_row(name, random_result.data["missed"][name])
        for name in APPROACHES
    ]
    result.add_section(format_table(MISSED_HEADERS, rows, "Random constraints"))
    uniform_missed = uniform22.data["missed"]
    for name in APPROACHES:
        uniform_missed[name].absolute.extend(uniform10.data["missed"][name].absolute)
        uniform_missed[name].relative.extend(uniform10.data["missed"][name].relative)
    rows = [missed_latency_row(name, uniform_missed[name]) for name in APPROACHES]
    result.add_section(format_table(MISSED_HEADERS, rows, "Uniform constraints"))
    result.data["random"] = random_result.data["missed"]
    result.data["uniform"] = uniform_missed
    return _attach_observability(result)


# -- Figure 13 / Table 2: manually tuned paces -----------------------------------

def fig13(scale=0.5, max_pace=100, level=0.1, config=None, tuning_rounds=4,
          catalog_seed=5):
    """Manually tuned pace configurations at relative constraint ``level``.

    NoShare-Uniform and Share-Uniform are tuned by searching paces
    directly against *measured* latencies; NoShare-Nonuniform and iShare
    are tuned by tightening the relative constraints of queries that miss
    (exactly the paper's tuning protocol, section 5.3).
    """
    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_workload(catalog)
    runner = ExperimentRunner(catalog, queries, config)
    base = uniform_constraints(range(len(queries)), level)
    goals = runner.latency_goals(base)

    results = {}
    for name in ("NoShare-Uniform", "Share-Uniform"):
        results[name] = _tune_paces_measured(runner, name, base, goals, max_pace)
    for name in ("NoShare-Nonuniform", "iShare"):
        results[name] = _tune_constraints(runner, name, base, goals, tuning_rounds)

    result = ExperimentResult("Figure 13 / Table 2: manually tuned paces")
    result.data["catalog_seed"] = catalog_seed
    rows = [[name, results[name].total_seconds] for name in APPROACHES]
    result.add_section(format_table(("Approach", "Total s"), rows, "CPU seconds"))
    rows = [missed_latency_row(name, results[name].missed) for name in APPROACHES]
    result.add_section(format_table(MISSED_HEADERS, rows, "Missed latencies"))
    result.data["results"] = results
    return _attach_observability(result)


def _tune_paces_measured(runner, name, relative, goals, max_pace,
                         approach=None):
    """Raise group paces until measured latencies meet the goals."""
    if approach is None:
        approach = runner.run_approach(name, relative)
    plan = approach.optimization.plan
    pace_config = dict(approach.optimization.pace_config)
    pace_config = _nudge_paces(
        plan, pace_config, goals, max_pace, runner.config.stream_config
    )
    return runner.run_approach(name, relative, pace_override=pace_config)


def _nudge_paces(plan, pace_config, goals, max_pace, stream_config):
    """Measured-latency pace bumps for queries that still miss."""
    pace_config = dict(pace_config)
    executor = PlanExecutor(plan, stream_config)
    for _ in range(12):
        run = executor.run(pace_config, collect_results=False)
        missing = [
            qid for qid, goal in goals.items()
            if run.query_latency_seconds(qid) > goal
        ]
        if not missing:
            break
        changed = False
        for qid in missing:
            for subplan in plan.subplans_of_query(qid):
                new_pace = min(max_pace, int(pace_config[subplan.sid] * 1.5) + 1)
                if new_pace > pace_config[subplan.sid]:
                    pace_config[subplan.sid] = new_pace
                    changed = True
        _repair_pace_order(plan, pace_config)
        if not changed:
            break
    return pace_config


def _repair_pace_order(plan, pace_config):
    """Raise child paces so no parent is eagerer than its children."""
    for subplan in reversed(plan.topological_order()):
        for child in subplan.child_subplans():
            if pace_config[child.sid] < pace_config[subplan.sid]:
                pace_config[child.sid] = pace_config[subplan.sid]


def _tune_constraints(runner, name, relative, goals, rounds):
    """Tighten the relative constraints of queries that miss, re-optimize.

    If constraint tightening alone cannot close the gap (cost-model error
    on very small queries), finish with measured-latency pace bumps on the
    still-missing queries -- the per-query half of the paper's manual
    tuning protocol.
    """
    current = dict(relative)
    best = runner.run_approach(name, current)
    for _ in range(rounds):
        missing = [
            qid for qid, goal in goals.items()
            if best.run.query_latency_seconds(qid) > goal
        ]
        if not missing:
            return best
        for qid in missing:
            current[qid] = max(current[qid] * 0.6, 0.01)
        candidate = runner.run_approach(name, current)
        best = candidate
    paces = _nudge_paces(
        best.optimization.plan, best.optimization.pace_config, goals,
        runner.config.max_pace, runner.config.stream_config,
    )
    return runner.run_approach(name, current, pace_override=paces)


# -- Figure 14 / Table 3: decomposition ablation ----------------------------------

def fig14(scale=0.5, max_pace=100, levels=CONSTRAINT_LEVELS, config=None,
          seed=0, brute_force_limit=8, jobs=1, catalog_seed=5):
    """The section 5.4 decomposition experiment.

    Workload: the 10 sharing-friendly queries plus predicate-mutated
    variants (20 queries).  Compares the four approaches plus iShare
    without decomposition and iShare with the brute-force splitter.
    """
    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_variant_workload(catalog, SHARING_FRIENDLY, build_query, seed)
    runner = ExperimentRunner(catalog, queries, config)
    names = list(APPROACHES) + ["iShare (w/o unshare)", "iShare (Brute-Force)"]
    result = ExperimentResult("Figure 14 / Table 3: decomposition ablation")
    result.data["catalog_seed"] = catalog_seed
    headers = ["Constraints"] + names
    rows = []
    missed_all = {name: None for name in names}
    cells = [
        ExperimentCell(
            name, uniform_constraints(range(len(queries)), level),
            key=(level, name),
        )
        for level in levels
        for name in names
    ]
    outcomes, by_key, wall_seconds = _run_sweep(runner, cells, jobs)
    for level in levels:
        row = ["rel=%.1f" % level]
        for name in names:
            approach = by_key[(level, name)].result
            row.append(approach.total_seconds)
            _accumulate_missed(missed_all, name, approach)
        rows.append(row)
    result.add_section(format_table(headers, rows, "Total execution time (s)"))
    rows = [missed_latency_row(name, missed_all[name]) for name in names]
    result.add_section(format_table(MISSED_HEADERS, rows, "Missed latencies (Table 3)"))
    result.data["missed"] = missed_all
    result.data["rows"] = rows
    return _finish_sweep(result, outcomes, jobs, wall_seconds)


# -- Figure 15: optimization overhead / memoization --------------------------------

def fig15(scale=0.35, max_paces=(10, 25, 50, 100), level=0.01, config=None,
          dnf_seconds=60.0, catalog_seed=5):
    """Optimization time vs max pace, with and without memoization.

    ``dnf_seconds`` scales the paper's 30-minute cutoff down to the micro
    benchmark; runs exceeding it are reported as DNF.
    """
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_workload(catalog)
    result = ExperimentResult("Figure 15: optimization overhead (memoization)")
    result.data["catalog_seed"] = catalog_seed
    rows = []
    for max_pace in max_paces:
        row = ["max pace %d" % max_pace]
        for use_memo in (True, False):
            cfg = config or default_config(max_pace)
            cfg = OptimizerConfig(
                max_pace=max_pace,
                stream_config=cfg.stream_config,
                use_memo=use_memo,
                enable_unshare=False,  # isolate the pace search like [44]
                time_budget=dnf_seconds,
            )
            runner = ExperimentRunner(catalog, queries, cfg)
            relative = uniform_constraints(range(len(queries)), level)
            try:
                approach = runner.run_approach("iShare (w/o unshare)", relative)
                row.append(approach.optimization_seconds)
            except OptimizationTimeout:
                row.append("DNF(>%.0fs)" % dnf_seconds)
        rows.append(row)
    result.add_section(
        format_table(
            ("Setting", "iShare (w/ memo)", "iShare (w/o memo)"),
            rows,
            "Optimization time (s); DNF cutoff %.0fs" % dnf_seconds,
        )
    )
    result.data["rows"] = rows
    return _attach_observability(result)


# -- Figure 16: clustering vs brute-force splitting ---------------------------------

def fig16(scale=0.35, max_pace=100, query_counts=(2, 3, 4, 5, 6, 7),
          config=None, catalog_seed=5):
    """Split-search time: greedy clustering vs brute-force enumeration.

    Builds N predicate-variants of one sharing-friendly query so they all
    share one subplan, then times both splitters on that subplan's local
    optimization problem.
    """
    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    result = ExperimentResult("Figure 16: clustering vs brute-force split search")
    result.data["catalog_seed"] = catalog_seed
    rows = []
    for count in query_counts:
        base = build_query(catalog, "Q5", 0)
        queries = [base] + [
            mutate_query(base, qid, seed=qid) for qid in range(1, count)
        ]
        plan = MQOOptimizer(catalog).build_shared_plan(queries)
        calibrate_plan(plan, config.stream_config)
        model = PlanCostModel(plan, config.cost_config)
        relative = uniform_constraints(range(count), 0.1)
        absolute = model.absolute_constraints(relative)
        shared = max(
            plan.shared_subplans(), key=lambda s: len(s.query_ids()), default=None
        )
        if shared is None:
            continue
        evaluation = model.evaluate(
            {s.sid: 1 for s in plan.subplans}, collect_inputs=True
        )
        local = model.local_constraints(shared, absolute)
        timings = []
        for method in ("cluster", "brute_force"):
            splitter = LocalSplitOptimizer(
                shared, evaluation.subplan_inputs[shared.sid], local,
                max_pace, config.cost_config,
            )
            started = time.monotonic()
            getattr(splitter, method)()
            timings.append(time.monotonic() - started)
        rows.append(["%d queries" % count] + timings)
    result.add_section(
        format_table(("Setting", "Clustering s", "Brute-force s"), rows,
                     "Split-search time")
    )
    result.data["rows"] = rows
    return _attach_observability(result)


# -- Figure 17: incrementability micro-benchmarks ------------------------------------

PAIRS = {
    "PairA": ("Q5", "Q8"),
    "PairB": ("Q15", "Q7"),
    "PairC": ("QA", "QB"),
}


def fig17(scale=0.5, max_pace=100, levels=CONSTRAINT_LEVELS, config=None,
          jobs=1, catalog_seed=5):
    """Query pairs with varied incrementability (Figure 17 a/b/c).

    The first query of each pair keeps relative constraint 1.0 (Q5, Q15,
    QA per the paper); the second query's constraint sweeps the levels.
    """
    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    result = ExperimentResult("Figure 17: incrementability micro-benchmarks")
    result.data["catalog_seed"] = catalog_seed
    result.data["pairs"] = {}
    all_outcomes = []
    wall_seconds = 0.0
    for pair_name, (fixed_name, varied_name) in PAIRS.items():
        if pair_name == "PairC":
            queries = build_pair(catalog)  # QA id 0, QB id 1
        else:
            queries = [
                build_query(catalog, fixed_name, 0),
                build_query(catalog, varied_name, 1),
            ]
        runner = ExperimentRunner(catalog, queries, config)
        cells = [
            ExperimentCell(name, {0: 1.0, 1: level}, key=(level, name))
            for level in levels
            for name in APPROACHES
        ]
        outcomes, by_key, pair_wall = _run_sweep(runner, cells, jobs)
        wall_seconds += pair_wall
        all_outcomes.extend(outcomes)
        rows_by_label = [
            (
                "rel=%.1f" % level,
                {name: by_key[(level, name)].result for name in APPROACHES},
            )
            for level in levels
        ]
        headers = ["%s (vary %s)" % (pair_name, varied_name)] + list(APPROACHES)
        rows = [
            [label] + [by_approach[name].total_seconds for name in APPROACHES]
            for label, by_approach in rows_by_label
        ]
        result.add_section(format_table(headers, rows))
        result.data["pairs"][pair_name] = rows_by_label
    return _finish_sweep(result, all_outcomes, jobs, wall_seconds)


# -- the section 5.2 "simple approach" baseline -----------------------------------

def two_phase_baseline(scale=0.4, max_pace=100, level=0.1, config=None,
                       first_points=(0.25, 0.5, 0.75, 0.9), catalog_seed=5):
    """The paper's simple two-execution baseline vs iShare.

    Section 5.2 also compares "a simple approach that starts one execution
    before the trigger point and a final execution at the trigger point",
    tuned over the point of the first execution; the paper finds it misses
    latencies badly (up to 1046%) while iShare's misses are zero in the
    same test.
    """
    from fractions import Fraction

    config = config or default_config(max_pace)
    catalog = generate_catalog(scale=scale, seed=catalog_seed)
    queries = build_workload(catalog)
    runner = ExperimentRunner(catalog, queries, config)
    relative = uniform_constraints(range(len(queries)), level)
    goals = runner.latency_goals(relative)

    result = ExperimentResult(
        "Two-phase baseline (one pre-trigger execution) vs iShare"
    )
    result.data["catalog_seed"] = catalog_seed
    rows = []
    best = None
    unshared = build_unshared_plan(catalog, queries)
    executor = PlanExecutor(unshared, config.stream_config)
    for point in first_points:
        fraction = Fraction(point).limit_denominator(100)
        run = executor.run_schedule(
            {s.sid: [fraction, Fraction(1)] for s in unshared.subplans}
        )
        from ..engine.metrics import MissedLatencySummary

        missed = MissedLatencySummary()
        for qid, goal in goals.items():
            missed.add(run.stream_config.seconds(run.query_final_work[qid]), goal)
        rows.append([
            "first at %.0f%%" % (100 * point),
            run.total_seconds,
            missed.mean_percent,
            missed.max_percent,
        ])
        if best is None or missed.max_percent < best[0]:
            best = (missed.max_percent, run.total_seconds)

    ishare = runner.run_approach("iShare", relative)
    rows.append([
        "iShare", ishare.total_seconds,
        ishare.missed.mean_percent, ishare.missed.max_percent,
    ])
    result.add_section(format_table(
        ("Setting", "Total s", "Mean miss %", "Max miss %"), rows,
        "Two-phase baseline (tuned first point) vs iShare, rel=%.1f" % level,
    ))
    result.data["rows"] = rows
    result.data["best_two_phase_max_miss"] = best[0]
    result.data["ishare_max_miss"] = ishare.missed.max_percent
    return _attach_observability(result)
