"""Exception hierarchy for the repro (iShare) library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses partition errors into
the layers of the system: schema/expression problems, plan construction
problems, optimization problems, and execution problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or a referenced column does not exist."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be bound to a schema."""


class PlanError(ReproError):
    """A logical or physical plan is malformed."""


class ParseError(ReproError):
    """The SQL subset parser rejected its input."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at position %d)" % (message, position)
        super().__init__(message)
        self.position = position


class OptimizationError(ReproError):
    """An optimizer precondition was violated."""


class ExecutionError(ReproError):
    """The incremental executor hit an inconsistent state."""


class CostModelError(ReproError):
    """The cost model was asked about an operator it has no statistics for."""
