"""Exception hierarchy for the repro (iShare) library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses partition errors into
the layers of the system: schema/expression problems, plan construction
problems, optimization problems, and execution problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Errors raised while replaying a fuzz case carry the generating seed
    and the on-disk case path (:meth:`attach_fuzz_context`), so a crash
    is actionable from any entry point -- including when it crosses a
    worker-process boundary (:mod:`repro.harness.parallel` re-raises
    these errors verbatim, attributes included).
    """

    #: fuzz provenance, attached by :mod:`repro.fuzz` when the error is
    #: raised while executing a generated case
    fuzz_seed = None
    fuzz_case_path = None

    def attach_fuzz_context(self, seed=None, case_path=None):
        """Record the fuzz seed / case path that produced this error."""
        if seed is not None:
            self.fuzz_seed = seed
        if case_path is not None:
            self.fuzz_case_path = str(case_path)
        return self

    def __str__(self):
        base = super().__str__()
        extras = []
        if self.fuzz_seed is not None:
            extras.append("fuzz seed %s" % (self.fuzz_seed,))
        if self.fuzz_case_path is not None:
            extras.append("case %s" % self.fuzz_case_path)
        if extras:
            return "%s [%s]" % (base, ", ".join(extras))
        return base


class SchemaError(ReproError):
    """A schema is malformed or a referenced column does not exist."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be bound to a schema."""


class PlanError(ReproError):
    """A logical or physical plan is malformed."""


class ParseError(ReproError):
    """The SQL subset parser rejected its input."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at position %d)" % (message, position)
        super().__init__(message)
        self.position = position


class OptimizationError(ReproError):
    """An optimizer precondition was violated."""


class ExecutionError(ReproError):
    """The incremental executor hit an inconsistent state."""


class CostModelError(ReproError):
    """The cost model was asked about an operator it has no statistics for."""


class ServiceError(ReproError):
    """A service request (registration, schedule, configuration) is invalid."""
