"""Work accounting.

The paper quantifies *total work* and *final work* with the DBMS cost
model, e.g. "the number of tuples processed by all operators" (section
2.1).  We use exactly that unit: every operator charges one unit per input
delta record it processes and one unit per output delta record it emits;
MIN/MAX aggregates additionally charge one unit per stored value rescanned
when a deletion removes the current extremum (the section 5.3 Q15 effect).

:class:`WorkMeter` aggregates these charges per operator and per subplan
execution; the engine converts work units to seconds with a fixed
``work_rate`` when reporting latencies.
"""


class WorkMeter:
    """Mutable counter shared by the physical operators of one subplan."""

    __slots__ = ("input_units", "output_units", "rescan_units", "state_units",
                 "per_operator")

    def __init__(self):
        self.input_units = 0
        self.output_units = 0
        self.rescan_units = 0
        self.state_units = 0.0
        self.per_operator = {}

    def charge_input(self, operator_name, units):
        self.input_units += units
        self._charge(operator_name, units)

    def charge_output(self, operator_name, units):
        self.output_units += units
        self._charge(operator_name, units)

    def charge_rescan(self, operator_name, units):
        self.rescan_units += units
        self._charge(operator_name, units)

    def charge_state(self, operator_name, units):
        """Per-execution state-store maintenance (see StreamConfig)."""
        self.state_units += units
        self._charge(operator_name, units)

    def _charge(self, operator_name, units):
        self.per_operator[operator_name] = self.per_operator.get(operator_name, 0) + units

    def reset(self):
        """Zero every counter (operator-tree reuse across runs)."""
        self.input_units = 0
        self.output_units = 0
        self.rescan_units = 0
        self.state_units = 0.0
        self.per_operator.clear()

    @property
    def total(self):
        return (self.input_units + self.output_units + self.rescan_units
                + self.state_units)

    def snapshot(self):
        """Copy of the per-operator totals (for calibration reports)."""
        return dict(self.per_operator)

    def __repr__(self):
        return "WorkMeter(in=%d, out=%d, rescan=%d, state=%.2f, total=%.2f)" % (
            self.input_units,
            self.output_units,
            self.rescan_units,
            self.state_units,
            self.total,
        )
