"""Fused kernel codegen: one generated NumPy kernel per operator chain.

The unfused columnar path executes a node's mark filters and union
projection as a chain of small compiled closures -- one lambda per
expression tree node, one dispatch through
:meth:`~repro.physical.columnar.ColumnarDecorations.apply` per batch.
At fig11 batch sizes that per-node Python dispatch is a measurable slice
of the end-to-end run.  Following the codegen-then-measure pattern (the
Cozy cost model generates source, compiles it, and keeps it only when
measurement confirms the win -- see SNIPPETS.md), this module *generates
Python source* for the whole chain -- source mask, every filter's
bit-clear, the union projection -- flattens each vectorizable expression
tree into a single inline NumPy expression with constants folded and
column reads hoisted, compiles the text once per node, and memoizes the
kernel through :func:`~repro.physical.hotpath.cached_artifacts` keyed on
the fused chain signature.

Exactness contract: a fused kernel performs the *same array operations
in the same order with the same WorkMeter charges* as the unfused
chain -- it only removes interpreter dispatch between them.  Expression
shapes the flattener does not cover (containment predicates, row-wise
fallbacks) are bound into the generated source as the very closures the
unfused path would call, so results are bit-identical by construction.
The unfused path is kept verbatim as the oracle: the kill switch
``REPRO_ENGINE_NO_FUSION=1`` (or ``engine_mode(fusion=False)``) restores
it, and the fuzz oracle matrix runs a fusion-off leg against the fused
one (``shared-columnar-nofuse``).
"""

from ..engine.columns import ColumnBatch, np
from ..relational.expressions import (
    And,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Not,
    Or,
)
from .hotpath import HOTPATH, cached_artifacts

__all__ = [
    "fusion_active",
    "fused_decoration_kernel",
    "fused_source_kernel",
    "fused_aggregate_inputs",
]


def fusion_active():
    """Whether newly compiled columnar operators should fuse."""
    return HOTPATH.fusion


class _Emitter:
    """Collects hoisted column reads, bound constants and closures while
    expression trees are flattened into source fragments."""

    def __init__(self):
        self.bindings = {}  # name -> python object closed over
        self._binding_ids = {}  # id(obj) -> name
        self.lines = []
        self._counter = 0

    def bind(self, prefix, obj):
        """A stable name for ``obj`` in the kernel's namespace."""
        key = id(obj)
        name = self._binding_ids.get(key)
        if name is None:
            name = "_%s%d" % (prefix, len(self.bindings))
            self._binding_ids[key] = name
            self.bindings[name] = obj
        return name

    def fresh(self, prefix):
        self._counter += 1
        return "_%s%d" % (prefix, self._counter)


def _const_fragment(value, emitter):
    """Inline literal when ``repr`` round-trips exactly; bind otherwise."""
    if value is None or value is True or value is False:
        return repr(value)
    if type(value) is int:
        return repr(value)
    if type(value) is float:
        # repr of a float round-trips exactly in python 3
        text = repr(value)
        if text in ("inf", "-inf", "nan"):
            return emitter.bind("k", value)
        return text
    if type(value) is str:
        return repr(value)
    return emitter.bind("k", value)


class _NotInline(Exception):
    """Internal: this subtree is not flattened; bind its closure."""


def _fragment(expr, schema, batch_var, columns, emitter, n_var):
    """A source fragment evaluating ``expr`` over ``batch_var``.

    Mirrors :func:`repro.physical.columnar._vec` operation for
    operation; anything `_vec` would reject raises :class:`_NotInline`
    so the caller binds the chain's compiled closure instead.
    """
    if isinstance(expr, Col):
        index = schema.index_of(expr.name)
        name = columns.get(index)
        if name is None:
            name = columns[index] = "%s_c%d" % (batch_var, index)
        return name
    if isinstance(expr, Const):
        return _const_fragment(expr.value, emitter)
    if isinstance(expr, BinaryOp):
        left = _fragment(expr.left, schema, batch_var, columns, emitter, n_var)
        right = _fragment(expr.right, schema, batch_var, columns, emitter,
                          n_var)
        op = expr.op
        if op in ("+", "-", "*"):
            return "(%s %s %s)" % (left, op, right)
        # division only by a nonzero constant, like the vectorizer
        if not (isinstance(expr.right, Const) and expr.right.value != 0):
            raise _NotInline
        if op == "/":
            return "(%s / %s)" % (left, right)
        return "(%s // %s)" % (left, right)
    if isinstance(expr, Comparison):
        left = _fragment(expr.left, schema, batch_var, columns, emitter, n_var)
        right = _fragment(expr.right, schema, batch_var, columns, emitter,
                          n_var)
        return "(%s %s %s)" % (left, expr.op, right)
    if isinstance(expr, And):
        left = _fragment(expr.left, schema, batch_var, columns, emitter, n_var)
        right = _fragment(expr.right, schema, batch_var, columns, emitter,
                          n_var)
        return "np.logical_and(_truthy(%s, %s), _truthy(%s, %s))" % (
            left, n_var, right, n_var,
        )
    if isinstance(expr, Or):
        left = _fragment(expr.left, schema, batch_var, columns, emitter, n_var)
        right = _fragment(expr.right, schema, batch_var, columns, emitter,
                          n_var)
        return "np.logical_or(_truthy(%s, %s), _truthy(%s, %s))" % (
            left, n_var, right, n_var,
        )
    if isinstance(expr, Not):
        child = _fragment(expr.child, schema, batch_var, columns, emitter,
                          n_var)
        return "np.logical_not(_truthy(%s, %s))" % (child, n_var)
    # Containment predicates vectorize but do not flatten: bind the very
    # closure ``_vec`` would build for this subtree.  If the subtree is
    # *not* vectorizable, re-raise so the whole expression falls back to
    # the row-wise closure exactly like the unfused path (a partial
    # fallback would change the arithmetic path and break bit-identity).
    from .columnar import _NotVectorizable, _vec

    try:
        fn = _vec(expr, schema)
    except _NotVectorizable:
        raise _NotInline
    name = emitter.bind("f", fn)
    return "%s(%s)" % (name, batch_var)


def _expr_source(expr, schema, batch_var, columns, emitter, n_var):
    """Fragment for ``expr``, falling back to a bound closure call."""
    try:
        return _fragment(expr, schema, batch_var, columns, emitter, n_var)
    except _NotInline:
        from .columnar import compile_columnar

        fn = compile_columnar(expr, schema)
        name = emitter.bind("f", fn)
        return "%s(%s)" % (name, batch_var)


def _hoist_columns(lines, batch_var, columns):
    """Emit the per-stage column reads the fragments referenced."""
    for index in sorted(columns):
        lines.append("    %s = %s.column(%d)" % (
            columns[index], batch_var, index,
        ))


def _filter_block(node, batch_var, emitter, indent="    "):
    """Source lines replicating ``ColumnarDecorations.apply``'s filter
    loop over ``batch_var`` (charge, per-pair bit clears, final keep)."""
    lines = []
    columns = {}
    body = []
    core_schema = node.core_schema
    n_var = "n"
    body.append("%sn = len(%s)" % (indent, batch_var))
    body.append("%smeter.charge_input(FILTER_NAME, n)" % indent)
    body.append("%sbits = %s.bits" % (indent, batch_var))
    for qid, predicate in sorted(node.filters.items()):
        bit = 1 << qid
        clear = ~bit
        frag = _expr_source(predicate, core_schema, batch_var, columns,
                            emitter, n_var)
        has = emitter.fresh("has")
        drop = emitter.fresh("drop")
        body.append("%s%s = (bits & %d) != 0" % (indent, has, bit))
        body.append("%sif %s.any():" % (indent, has))
        body.append("%s    pred = _bool_mask(%s, n)" % (indent, frag))
        body.append("%s    %s = %s & ~pred" % (indent, drop, has))
        body.append("%s    if %s.any():" % (indent, drop))
        body.append("%s        bits = np.where(%s, bits & %d, bits)"
                    % (indent, drop, clear))
    body.append("%skeep = bits != 0" % indent)
    body.append("%sif keep.all():" % indent)
    body.append("%s    %s = %s.with_bits(bits)" % (indent, batch_var,
                                                   batch_var))
    body.append("%selse:" % indent)
    body.append(
        "%s    %s = %s.with_bits(bits).take(np.flatnonzero(keep))"
        % (indent, batch_var, batch_var)
    )
    _hoist_columns(lines, batch_var, columns)
    lines.extend(body)
    return lines


def _projection_block(node, batch_var, emitter, indent="    "):
    """Source lines replicating the union-projection stage."""
    union = node.union_projection()
    if union is None:
        return None
    lines = []
    columns = {}
    frags = [
        _expr_source(expr, node.core_schema, batch_var, columns, emitter, "m")
        for _, expr in union
    ]
    body = []
    body.append("%sm = len(%s)" % (indent, batch_var))
    body.append("%smeter.charge_input(PROJ_NAME, m)" % indent)
    cols = ", ".join("_materialize(%s, m)" % frag for frag in frags)
    if len(frags) == 1:
        cols += ","
    body.append("%scolumns = (%s)" % (indent, cols))
    body.append(
        "%s%s = ColumnBatch(columns, %s.signs, %s.bits)"
        % (indent, batch_var, batch_var, batch_var)
    )
    _hoist_columns(lines, batch_var, columns)
    lines.extend(body)
    return lines


def _compile_kernel(name, source, bindings, uid):
    from .columnar import _bool_mask, _materialize, _truthy

    namespace = {
        "np": np,
        "ColumnBatch": ColumnBatch,
        "_truthy": _truthy,
        "_bool_mask": _bool_mask,
        "_materialize": _materialize,
    }
    namespace.update(bindings)
    code = compile(source, "<fused:%s:%d>" % (name, uid), "exec")
    exec(code, namespace)
    kernel = namespace["kernel"]
    kernel.fused_source = source  # inspectable (tests, debugging)
    return kernel


def _build_decoration_kernel(node):
    """``kernel(batch, meter) -> batch`` fusing filters + projection."""
    emitter = _Emitter()
    lines = ["def kernel(batch, meter):"]
    if node.filters:
        lines.extend(_filter_block(node, "batch", emitter))
    projection = _projection_block(node, "batch", emitter)
    if projection is not None:
        lines.extend(projection)
    lines.append("    return batch")
    source = "\n".join(lines) + "\n"
    bindings = dict(emitter.bindings)
    bindings["FILTER_NAME"] = "filter:%d" % node.uid
    bindings["PROJ_NAME"] = "proj:%d" % node.uid
    return _compile_kernel("deco", source, bindings, node.uid)


def _build_source_kernel(node):
    """``kernel(batch, subplan_mask, meter) -> batch`` fusing the source
    bit-mask stage with the node's decorations in one generated body."""
    emitter = _Emitter()
    lines = [
        "def kernel(batch, subplan_mask, meter):",
        "    sbits = batch.bits & subplan_mask",
        "    skeep = sbits != 0",
        "    if skeep.all():",
        "        batch = batch.with_bits(sbits)",
        "    else:",
        "        batch = batch.with_bits(sbits).take(np.flatnonzero(skeep))",
    ]
    if node.filters:
        lines.extend(_filter_block(node, "batch", emitter))
    projection = _projection_block(node, "batch", emitter)
    if projection is not None:
        lines.extend(projection)
    lines.append("    return batch")
    source = "\n".join(lines) + "\n"
    bindings = dict(emitter.bindings)
    bindings["FILTER_NAME"] = "filter:%d" % node.uid
    bindings["PROJ_NAME"] = "proj:%d" % node.uid
    return _compile_kernel("src", source, bindings, node.uid)


def _build_aggregate_inputs(node):
    """``kernel(batch, n) -> [array, ...]`` evaluating every aggregate
    input expression in one pass with shared column hoisting."""
    emitter = _Emitter()
    child_schema = node.children[0].out_schema
    columns = {}
    frags = [
        _expr_source(spec.expr, child_schema, "batch", columns, emitter, "n")
        for spec in node.aggs
    ]
    lines = ["def kernel(batch, n):"]
    _hoist_columns(lines, "batch", columns)
    items = ", ".join("_materialize(%s, n)" % frag for frag in frags)
    lines.append("    return [%s]" % items)
    source = "\n".join(lines) + "\n"
    return _compile_kernel("agg", source, dict(emitter.bindings), node.uid)


def fused_decoration_kernel(node):
    """The memoized decoration kernel of ``node`` (filters+projection)."""
    return cached_artifacts(
        ("fused-deco", node.uid), lambda: _build_decoration_kernel(node)
    )


def fused_source_kernel(node):
    """The memoized source-chain kernel of ``node`` (mask+decorations)."""
    return cached_artifacts(
        ("fused-src", node.uid), lambda: _build_source_kernel(node)
    )


def fused_aggregate_inputs(node):
    """The memoized aggregate-input kernel of ``node``."""
    return cached_artifacts(
        ("fused-agg", node.uid), lambda: _build_aggregate_inputs(node)
    )
