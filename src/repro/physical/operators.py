"""Incremental physical operators with SharedDB bitvector semantics.

Each physical operator is *stateful across incremental executions*: a call
to :meth:`advance` processes exactly the new deltas visible since the
previous call (one incremental execution of the owning subplan) and
returns the output deltas.  Every tuple carries a query bitvector; shared
select operators *mark* bits instead of dropping tuples (dropping only
when no query wants the tuple), joins AND the bitvectors of matching
tuples, and shared aggregates keep per-query state so queries whose
upstream marks differ still see correct aggregates.

Deletions follow classic IVM: an aggregate whose group value changed
retracts the previously emitted row (sign -1) and emits the new one
(sign +1).  MIN/MAX aggregates rescan their stored value multiset when a
deletion removes the current extremum -- the exact behaviour that makes
TPC-H Q15 non-incrementable in the paper's section 5.3.

Every operator has two delta-application paths selected by
:data:`~repro.physical.hotpath.HOTPATH`: the *batched* hot path (whole
delta lists, hoisted lookups, pre-bound closures) and the per-tuple
*reference* path kept as the correctness oracle and benchmark baseline.
Both produce identical outputs and identical work charges; a dedicated
test enforces the bit-identical RunResult invariant (docs/PERFORMANCE.md).
"""

from ..errors import ExecutionError
from ..relational import bitvec
from ..relational.tuples import Delta, DELETE, INSERT, consolidate, make_delta
from .faults import FAULTS, drop_first_retraction
from .hotpath import HOTPATH, _QIDS_CACHE, cached_artifacts, qids_of

# Bound once: the batched loops construct deltas via ``__new__`` + slot
# stores, skipping the constructor frame (make_delta adds one more frame
# per record, which is measurable at join fan-out volumes).
_NEW = Delta.__new__


class _DecorationArtifacts:
    """Compiled mark-filter and union projection of one node (shareable)."""

    __slots__ = ("compiled_filters", "filter_mask", "filter_pairs",
                 "projection")

    def __init__(self, node):
        core_schema = node.core_schema
        self.compiled_filters = {
            qid: predicate.compile(core_schema)
            for qid, predicate in node.filters.items()
        }
        self.filter_mask = bitvec.mask_of(self.compiled_filters)
        # (own_bit, clear_mask, predicate) per filter, ascending by qid:
        # the batched path tests membership with one AND instead of
        # decoding the bitvector per record
        self.filter_pairs = tuple(
            (1 << qid, ~(1 << qid), self.compiled_filters[qid])
            for qid in sorted(self.compiled_filters)
        )
        union = node.union_projection()
        if union is None:
            self.projection = None
        else:
            self.projection = tuple(
                (alias, expr.compile(core_schema)) for alias, expr in union
            )


class Decorations:
    """Compiled per-node mark-filter and union projection."""

    __slots__ = (
        "filter_name",
        "project_name",
        "compiled_filters",
        "filter_mask",
        "filter_pairs",
        "projection",
        "projection_fns",
        "stats_mode",
        "filter_in_per_q",
        "filter_out_per_q",
    )

    def __init__(self, node, stats_mode=False):
        artifacts = cached_artifacts(
            ("deco", node.uid), lambda: _DecorationArtifacts(node)
        )
        self.filter_name = "filter:%d" % node.uid
        self.project_name = "proj:%d" % node.uid
        self.compiled_filters = artifacts.compiled_filters
        self.filter_mask = artifacts.filter_mask
        self.filter_pairs = artifacts.filter_pairs
        self.projection = artifacts.projection
        if artifacts.projection is None:
            self.projection_fns = None
        else:
            self.projection_fns = tuple(fn for _, fn in artifacts.projection)
        self.stats_mode = stats_mode
        self.filter_in_per_q = {}
        self.filter_out_per_q = {}

    def reset_stats(self):
        self.filter_in_per_q.clear()
        self.filter_out_per_q.clear()

    def apply(self, deltas, meter):
        """Mark-filter then project ``deltas``; returns the surviving list."""
        if HOTPATH.batched:
            return self._apply_batched(deltas, meter)
        return self._apply_reference(deltas, meter)

    def _apply_batched(self, deltas, meter):
        out = deltas
        pairs = self.filter_pairs
        stats = self.stats_mode
        if pairs:
            meter.charge_input(self.filter_name, len(out))
            in_per_q = self.filter_in_per_q
            out_per_q = self.filter_out_per_q
            filtered = []
            append = filtered.append
            # each filter owns exactly one bit, so testing/clearing with
            # precomputed masks is order-independent and needs no decode
            for delta in out:
                original = delta.bits
                bits = original
                if stats:
                    for qid in qids_of(original):
                        in_per_q[qid] = in_per_q.get(qid, 0) + 1
                row = delta.row
                for bit, clear, fn in pairs:
                    if bits & bit and not fn(row):
                        bits &= clear
                if bits == 0:
                    continue
                if stats:
                    for qid in qids_of(bits):
                        out_per_q[qid] = out_per_q.get(qid, 0) + 1
                if bits == original:
                    append(delta)
                else:
                    record = _NEW(Delta)
                    record.row = row
                    record.sign = delta.sign
                    record.bits = bits
                    append(record)
            out = filtered
        fns = self.projection_fns
        if fns is not None:
            meter.charge_input(self.project_name, len(out))
            projected = []
            append = projected.append
            if len(fns) == 1:
                fn = fns[0]
                for d in out:
                    record = _NEW(Delta)
                    record.row = (fn(d.row),)
                    record.sign = d.sign
                    record.bits = d.bits
                    append(record)
            else:
                for d in out:
                    row = d.row
                    record = _NEW(Delta)
                    record.row = tuple(fn(row) for fn in fns)
                    record.sign = d.sign
                    record.bits = d.bits
                    append(record)
            out = projected
        return out

    def _apply_reference(self, deltas, meter):
        """Original per-tuple path (oracle / benchmark baseline)."""
        out = deltas
        if self.compiled_filters:
            filtered = []
            meter.charge_input(self.filter_name, len(out))
            for delta in out:
                bits = delta.bits
                if self.stats_mode:
                    for qid in bitvec.iter_bits(bits):
                        self.filter_in_per_q[qid] = self.filter_in_per_q.get(qid, 0) + 1
                relevant = bits & self.filter_mask
                for qid in bitvec.iter_bits(relevant):
                    if not self.compiled_filters[qid](delta.row):
                        bits &= ~(1 << qid)
                if bits == 0:
                    continue
                if self.stats_mode:
                    for qid in bitvec.iter_bits(bits):
                        self.filter_out_per_q[qid] = self.filter_out_per_q.get(qid, 0) + 1
                filtered.append(delta if bits == delta.bits else delta.with_bits(bits))
            out = filtered
        if self.projection is not None:
            meter.charge_input(self.project_name, len(out))
            out = [
                Delta(
                    tuple(fn(delta.row) for _, fn in self.projection),
                    delta.sign,
                    delta.bits,
                )
                for delta in out
            ]
        return out


class SourceExec:
    """Reads new deltas from a buffer (base table log or child subplan).

    Applies the implicit bits filter against the owning subplan's query
    mask (the paper's sigma-filter when pulling from a shared buffer) and
    then the node's decorations.
    """

    def __init__(self, node, reader, subplan_mask, meter, stats_mode=False,
                 consolidate_reads=False):
        self.node = node
        self.reader = reader
        self.subplan_mask = subplan_mask
        self.meter = meter
        self.name = "src:%d" % node.uid
        self.decorations = Decorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.consolidate_reads = consolidate_reads
        self.scanned_total = 0
        self.kept_total = 0
        self.kept_per_q = {}
        self.deletes_kept = 0

    def reset(self):
        """Restore fresh-run state (offsets are reset by the executor)."""
        self.reader.offset = 0
        self.scanned_total = 0
        self.kept_total = 0
        self.kept_per_q = {}
        self.deletes_kept = 0
        self.decorations.reset_stats()

    def advance(self):
        if HOTPATH.batched:
            return self._advance_batched()
        return self._advance_reference()

    def _advance_batched(self):
        new_deltas = self.reader.read_new()
        if self.consolidate_reads and new_deltas:
            new_deltas = consolidate(new_deltas)
        self.meter.charge_input(self.name, len(new_deltas))
        self.scanned_total += len(new_deltas)
        mask = self.subplan_mask
        kept = []
        append = kept.append
        for delta in new_deltas:
            bits = delta.bits & mask
            if bits == 0:
                continue
            if bits == delta.bits:
                append(delta)
            else:
                record = _NEW(Delta)
                record.row = delta.row
                record.sign = delta.sign
                record.bits = bits
                append(record)
        if self.stats_mode:
            self.kept_total += len(kept)
            kept_per_q = self.kept_per_q
            for delta in kept:
                if delta.sign == DELETE:
                    self.deletes_kept += 1
                for qid in qids_of(delta.bits):
                    kept_per_q[qid] = kept_per_q.get(qid, 0) + 1
        return self.decorations.apply(kept, self.meter)

    def _advance_reference(self):
        new_deltas = self.reader.read_new()
        if self.consolidate_reads and new_deltas:
            # Reading from a child subplan's buffer: retract/insert churn
            # that cancelled within the unread window is compacted away
            # (the buffer behaves like a compacted Kafka topic / state
            # store), so a lazy consumer only processes net changes --
            # this is what makes delaying a parent subplan save work
            # (paper Figure 3c).
            new_deltas = consolidate(new_deltas)
        self.meter.charge_input(self.name, len(new_deltas))
        self.scanned_total += len(new_deltas)
        kept = []
        for delta in new_deltas:
            bits = delta.bits & self.subplan_mask
            if bits == 0:
                continue
            kept.append(delta if bits == delta.bits else delta.with_bits(bits))
        if self.stats_mode:
            self.kept_total += len(kept)
            for delta in kept:
                if delta.sign == DELETE:
                    self.deletes_kept += 1
                for qid in bitvec.iter_bits(delta.bits):
                    self.kept_per_q[qid] = self.kept_per_q.get(qid, 0) + 1
        return self.decorations.apply(kept, self.meter)


class _JoinArtifacts:
    """Compiled key getters of one join node (shareable).

    ``left_index``/``right_index`` carry the column position for
    single-column keys (the overwhelmingly common case) so the batched
    loops index the row directly instead of calling the getter closure.
    """

    __slots__ = ("left_key", "right_key", "left_index", "right_index")

    def __init__(self, node):
        left_schema = node.children[0].out_schema
        right_schema = node.children[1].out_schema
        self.left_key = _key_getter(left_schema, node.left_keys)
        self.right_key = _key_getter(right_schema, node.right_keys)
        self.left_index = (
            left_schema.index_of(node.left_keys[0])
            if len(node.left_keys) == 1 else None
        )
        self.right_index = (
            right_schema.index_of(node.right_keys[0])
            if len(node.right_keys) == 1 else None
        )


class JoinExec:
    """Symmetric (pipelined) hash join over delta streams.

    Both sides keep net-multiplicity hash tables keyed by the join key;
    output bitvectors are the AND of the matching inputs' bitvectors, and
    deletions propagate with multiplied signs.

    A side over a bare base-table scan may instead hold an
    :class:`~repro.engine.arrangements.ArrangementHandle`
    (:meth:`attach_arrangement`): the shared index replaces that side's
    private table, with identical probe outputs and identical WorkMeter
    charges (see the exactness contract in
    :mod:`repro.engine.arrangements`).
    """

    def __init__(self, node, left, right, meter, stats_mode=False,
                 state_factor=0.0):
        self.node = node
        self.left = left
        self.right = right
        self.meter = meter
        self.state_factor = state_factor
        self._private_entries = 0
        self._left_arranged = None
        self._right_arranged = None
        self.name = "join:%d" % node.uid
        artifacts = cached_artifacts(("join", node.uid), lambda: _JoinArtifacts(node))
        self._left_key = artifacts.left_key
        self._right_key = artifacts.right_key
        self._left_index = artifacts.left_index
        self._right_index = artifacts.right_index
        # key -> {(row, bits): net multiplicity}
        self._left_table = {}
        self._right_table = {}
        self.decorations = Decorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.in_left = 0
        self.in_right = 0
        self.out_total = 0
        self.in_left_per_q = {}
        self.in_right_per_q = {}
        self.out_per_q = {}

    def attach_arrangement(self, side, handle):
        """Serve one side (0=left, 1=right) from a shared arrangement."""
        if side == 0:
            self._left_arranged = handle
        else:
            self._right_arranged = handle

    @property
    def entry_count(self):
        """Net stored entries this join is charged for (private + shared).

        An arranged side contributes its handle's version entries — the
        exact count the private table would hold at the same offset — so
        ``charge_state`` stays bit-identical across the toggle.
        """
        count = self._private_entries
        if self._left_arranged is not None:
            count += self._left_arranged.version.entries
        if self._right_arranged is not None:
            count += self._right_arranged.version.entries
        return count

    def reset(self):
        self.left.reset()
        self.right.reset()
        self._left_table.clear()
        self._right_table.clear()
        self._private_entries = 0
        self.in_left = 0
        self.in_right = 0
        self.out_total = 0
        self.in_left_per_q = {}
        self.in_right_per_q = {}
        self.out_per_q = {}
        self.decorations.reset_stats()

    def advance(self):
        if HOTPATH.batched:
            return self._advance_batched()
        return self._advance_reference()

    def _advance_batched(self):
        left_deltas = self.left.advance()
        right_deltas = self.right.advance()
        self.meter.charge_input(self.name, len(left_deltas) + len(right_deltas))
        out = []
        if self._left_arranged is not None or self._right_arranged is not None:
            self._advance_arranged(left_deltas, right_deltas, out)
        else:
            if left_deltas:
                # probe new left deltas against the old right state,
                # installing each into the left table as it goes (fused:
                # installs only touch the delta's own side, so per-delta
                # probe/install interleaving emits exactly the two-pass
                # reference order)
                self._private_entries += self._process_batch(
                    left_deltas, self._right_table, self._left_table,
                    self._left_index, self._left_key, out, True,
                )
            if right_deltas:
                # probe new right deltas against the *new* left state
                self._private_entries += self._process_batch(
                    right_deltas, self._left_table, self._right_table,
                    self._right_index, self._right_key, out, False,
                )
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(self.name, self.state_factor * self.entry_count)
        if self.stats_mode:
            self.in_left += len(left_deltas)
            self.in_right += len(right_deltas)
            self.out_total += len(out)
            _count_per_q(left_deltas, self.in_left_per_q)
            _count_per_q(right_deltas, self.in_right_per_q)
            _count_per_q(out, self.out_per_q)
        return self.decorations.apply(out, self.meter)

    @staticmethod
    def _process_batch(deltas, probe_table, own_table, key_index, key_fn,
                       out, left_side):
        """Fused probe + install of one side's deltas; returns the
        entry-count change.

        Installs mutate ``own_table`` only, so probing ``probe_table``
        per delta while installing preserves the reference path's
        probe-all-then-install-all output order exactly.  The loop body
        constructs output deltas inline (no constructor frames) and the
        two ``left_side`` variants exist so the row-concatenation order
        is branch-free per output.  Installs delete empty slots eagerly,
        so a stored net multiplicity is never 0 here.
        """
        probe_get = probe_table.get
        own_get = own_table.get
        append = out.append
        extend = out.extend
        new = _NEW
        cls = Delta
        entries = 0
        for delta in deltas:
            row_d = delta.row
            sign_d = delta.sign
            bits_d = delta.bits
            if key_index is None:
                key = key_fn(row_d)
            else:
                key = row_d[key_index]
            matches = probe_get(key)
            if matches:
                if left_side:
                    for (other_row, other_bits), net in matches.items():
                        bits = bits_d & other_bits
                        if bits == 0:
                            continue
                        record = new(cls)
                        record.row = row_d + other_row
                        record.bits = bits
                        if net > 0:
                            record.sign = sign_d
                        else:
                            record.sign = -sign_d
                            net = -net
                        if net == 1:
                            append(record)
                        else:
                            extend([record] * net)
                else:
                    for (other_row, other_bits), net in matches.items():
                        bits = bits_d & other_bits
                        if bits == 0:
                            continue
                        record = new(cls)
                        record.row = other_row + row_d
                        record.bits = bits
                        if net > 0:
                            record.sign = sign_d
                        else:
                            record.sign = -sign_d
                            net = -net
                        if net == 1:
                            append(record)
                        else:
                            extend([record] * net)
            entry = own_get(key)
            if entry is None:
                entry = own_table[key] = {}
            slot = (row_d, bits_d)
            previous = entry.get(slot, 0)
            net = previous + sign_d
            if net == 0:
                # previous was +-1, so the slot existed and empties out
                del entry[slot]
                if not entry:
                    del own_table[key]
                entries -= 1
            else:
                entry[slot] = net
                if previous == 0:
                    entries += 1
        return entries

    def _advance_reference(self):
        left_deltas = self.left.advance()
        right_deltas = self.right.advance()
        self.meter.charge_input(self.name, len(left_deltas) + len(right_deltas))
        out = []
        if self._left_arranged is not None or self._right_arranged is not None:
            self._advance_arranged(left_deltas, right_deltas, out)
        else:
            # 1) probe new left deltas against the old right state
            for delta in left_deltas:
                self._probe(delta, self._right_table, self._left_key, out,
                            left_side=True)
            # 2) install new left deltas
            for delta in left_deltas:
                self._private_entries += _table_update(
                    self._left_table, self._left_key(delta.row), delta
                )
            # 3) probe new right deltas against the *new* left state
            for delta in right_deltas:
                self._probe(delta, self._left_table, self._right_key, out,
                            left_side=False)
            # 4) install new right deltas
            for delta in right_deltas:
                self._private_entries += _table_update(
                    self._right_table, self._right_key(delta.row), delta
                )
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(self.name, self.state_factor * self.entry_count)
        if self.stats_mode:
            self.in_left += len(left_deltas)
            self.in_right += len(right_deltas)
            self.out_total += len(out)
            _count_per_q(left_deltas, self.in_left_per_q)
            _count_per_q(right_deltas, self.in_right_per_q)
            _count_per_q(out, self.out_per_q)
        return self.decorations.apply(out, self.meter)

    def _advance_arranged(self, left_deltas, right_deltas, out):
        """The four-pass advance with arranged sides swapped in.

        Pass order matches the fused/reference paths exactly: probe left
        against the *old* right state, install left, probe right against
        the *new* left state, install right.  An arranged side's install
        is ``advance_to`` on the shared index (a no-op past the first
        reader of the batch); a private side falls back to the per-tuple
        reference loops, which emit the same outputs as the fused path.
        """
        la = self._left_arranged
        ra = self._right_arranged
        if left_deltas:
            if ra is not None:
                self._probe_arranged(left_deltas, ra, self._left_index,
                                     self._left_key, out, left_side=True)
            else:
                for delta in left_deltas:
                    self._probe(delta, self._right_table, self._left_key,
                                out, left_side=True)
        if la is not None:
            la.advance_to(self.left.reader.offset)
        else:
            for delta in left_deltas:
                self._private_entries += _table_update(
                    self._left_table, self._left_key(delta.row), delta
                )
        if right_deltas:
            if la is not None:
                self._probe_arranged(right_deltas, la, self._right_index,
                                     self._right_key, out, left_side=False)
            else:
                for delta in right_deltas:
                    self._probe(delta, self._left_table, self._right_key,
                                out, left_side=False)
        if ra is not None:
            ra.advance_to(self.right.reader.offset)
        else:
            for delta in right_deltas:
                self._private_entries += _table_update(
                    self._right_table, self._right_key(delta.row), delta
                )

    @staticmethod
    def _probe_arranged(deltas, handle, key_index, key_fn, out, left_side):
        """Probe deltas against an arranged side's current version.

        ``key_index``/``key_fn`` extract the join key from the *probing*
        side's rows.  The arrangement stores ``key -> {row: net}``
        without bits: an eligible side's private table would store every
        row with bits equal to the subplan mask, and every probing delta
        already has ``bits & mask == bits``, so the output bits are
        exactly the probing delta's bits — matching :meth:`_probe` bit
        for bit.
        """
        table_get = handle.version.table.get
        append = out.append
        extend = out.extend
        new = _NEW
        cls = Delta
        for delta in deltas:
            row_d = delta.row
            bits_d = delta.bits
            if bits_d == 0:
                continue
            if key_index is not None:
                key = row_d[key_index]
            else:
                key = key_fn(row_d)
            matches = table_get(key)
            if not matches:
                continue
            sign_d = delta.sign
            for other_row, net in matches.items():
                record = new(cls)
                if left_side:
                    record.row = row_d + other_row
                else:
                    record.row = other_row + row_d
                record.bits = bits_d
                if net > 0:
                    record.sign = sign_d
                else:
                    record.sign = -sign_d
                    net = -net
                if net == 1:
                    append(record)
                else:
                    extend([record] * net)

    def _probe(self, delta, table, key_fn, out, left_side):
        matches = table.get(key_fn(delta.row))
        if not matches:
            return
        for (other_row, other_bits), net in matches.items():
            bits = delta.bits & other_bits
            if bits == 0 or net == 0:
                continue
            sign = delta.sign * (INSERT if net > 0 else DELETE)
            if left_side:
                row = delta.row + other_row
            else:
                row = other_row + delta.row
            for _ in range(abs(net)):
                out.append(Delta(row, sign, bits))

    def state_size(self):
        """Net stored entries (both sides); used by tests and diagnostics."""
        total = sum(abs(n) for m in self._left_table.values() for n in m.values())
        total += sum(abs(n) for m in self._right_table.values() for n in m.values())
        for handle in (self._left_arranged, self._right_arranged):
            if handle is not None:
                total += sum(
                    abs(n)
                    for m in handle.version.table.values()
                    for n in m.values()
                )
        return total


def _key_getter(schema, keys):
    indexes = tuple(schema.index_of(name) for name in keys)
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: row[index]
    return lambda row: tuple(row[i] for i in indexes)


def _table_update(table, key, delta):
    """Apply one delta to a hash table; returns the entry-count change."""
    entry = table.setdefault(key, {})
    slot = (delta.row, delta.bits)
    previous = entry.get(slot, 0)
    net = previous + delta.sign
    if net == 0:
        entry.pop(slot, None)
        if not entry:
            table.pop(key, None)
        return -1 if previous != 0 else 0
    entry[slot] = net
    return 1 if previous == 0 else 0


def _count_per_q(deltas, acc):
    for delta in deltas:
        for qid in qids_of(delta.bits):
            acc[qid] = acc.get(qid, 0) + 1


class _SumState:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def update(self, value, sign, meter, name):
        self.value += sign * value

    def current(self):
        return self.value


class _CountState:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def update(self, value, sign, meter, name):
        self.count += sign

    def current(self):
        return self.count


class _AvgState:
    """AVG with exact int accumulation and compensated float summation.

    A plain ``total += sign * value`` accumulates float rounding error
    that never cancels under delete-heavy update streams, so a group
    whose contributions all retract could report a nonzero average drift.
    Integer inputs stay on an exact int fast path; float inputs use
    Neumaier compensated summation, and when the group empties out the
    accumulator snaps back to exactly zero.
    """

    __slots__ = ("total", "count", "compensation")

    def __init__(self):
        self.total = 0
        self.count = 0
        self.compensation = 0.0

    def update(self, value, sign, meter, name):
        count = self.count + sign
        self.count = count
        if sign == DELETE:
            value = -value
        total = self.total
        if type(total) is int and type(value) is int:
            self.total = total + value
        else:
            new_total = total + value
            if abs(total) >= abs(value):
                self.compensation += (total - new_total) + value
            else:
                self.compensation += (value - new_total) + total
            self.total = new_total
        if count == 0:
            # exact cancellation: an empty multiset has drifted nowhere
            self.total = 0
            self.compensation = 0.0

    def current(self):
        if self.count == 0:
            return None
        compensation = self.compensation
        if compensation:
            return (self.total + compensation) / self.count
        return self.total / self.count


class _MinMaxState:
    """MIN/MAX with rescan-on-delete.

    Values are kept in a multiset; when a deletion removes the current
    extremum the state rescans all stored values to find the new one,
    charging one rescan work unit per value scanned (paper section 5.3:
    "the max operator needs to rescan all arrived values to find the new
    max one").
    """

    __slots__ = ("is_max", "values", "extremum")

    def __init__(self, is_max):
        self.is_max = is_max
        self.values = {}
        self.extremum = None

    def update(self, value, sign, meter, name):
        if sign == INSERT:
            self.values[value] = self.values.get(value, 0) + 1
            if self.extremum is None:
                self.extremum = value
            elif self.is_max and value > self.extremum:
                self.extremum = value
            elif not self.is_max and value < self.extremum:
                self.extremum = value
            return
        count = self.values.get(value, 0)
        if count <= 0:
            # Deleting a value that never arrived would silently drive the
            # multiset count negative and corrupt every later rescan.
            raise ExecutionError(
                "%s: MIN/MAX delete of value %r not present in the multiset"
                % (name, value)
            )
        if count == 1:
            del self.values[value]
        else:
            self.values[value] = count - 1
        if value == self.extremum and value not in self.values:
            meter.charge_rescan(name, len(self.values))
            if self.values:
                self.extremum = max(self.values) if self.is_max else min(self.values)
            else:
                self.extremum = None

    def current(self):
        return self.extremum


def _make_state(spec):
    if spec.func == "sum":
        return _SumState()
    if spec.func == "count":
        return _CountState()
    if spec.func == "avg":
        return _AvgState()
    return _MinMaxState(spec.func == "max")


class _GroupQueryState:
    """Aggregate state of one group for one query."""

    __slots__ = ("contributions", "states")

    def __init__(self, specs):
        self.contributions = 0
        self.states = [_make_state(spec) for spec in specs]


_AGG_KINDS = {"sum": 0, "count": 1, "avg": 2}  # anything else: min/max = 3


class _AggregateArtifacts:
    """Compiled group-key getter and input closures of one aggregate node.

    ``group_index`` is the column position for single-column group keys
    and ``spec_kinds`` int-codes each aggregate function so the batched
    absorb loop can dispatch state updates without per-record method
    calls.
    """

    __slots__ = ("group_key", "group_index", "input_fns", "spec_kinds")

    def __init__(self, node):
        child_schema = node.children[0].out_schema
        if node.group_by:
            indexes = tuple(child_schema.index_of(name) for name in node.group_by)
            if len(indexes) == 1:
                index = indexes[0]
                self.group_index = index
                self.group_key = lambda row: (row[index],)
            else:
                self.group_index = None
                self.group_key = lambda row: tuple(row[i] for i in indexes)
        else:
            self.group_index = None
            self.group_key = None
        self.input_fns = tuple(spec.expr.compile(child_schema) for spec in node.aggs)
        self.spec_kinds = tuple(
            _AGG_KINDS.get(spec.func, 3) for spec in node.aggs
        )


class AggregateExec:
    """Shared group-by aggregate with per-query state and retractions.

    Processing updates per-(group, query) states according to each delta's
    bitvector.  At the end of each incremental execution the operator
    emits, for every touched (group, query), a retraction of the
    previously emitted row and an insertion of the new row (or just a
    deletion when the group emptied).  Emissions that coincide across
    queries are coalesced into one delta with OR-ed bits, so fully shared
    inputs emit exactly one physical tuple per group like SharedDB.
    """

    def __init__(self, node, child, subplan_mask, meter, stats_mode=False,
                 state_factor=0.0):
        self.node = node
        self.child = child
        self.subplan_mask = subplan_mask
        self.meter = meter
        self.state_factor = state_factor
        self.state_count = 0
        self.name = "agg:%d" % node.uid
        artifacts = cached_artifacts(("agg", node.uid), lambda: _AggregateArtifacts(node))
        self._group_key = artifacts.group_key
        self._group_index = artifacts.group_index
        self.specs = node.aggs
        self._input_fns = artifacts.input_fns
        self._spec_kinds = artifacts.spec_kinds
        self.groups = {}
        self.last_emitted = {}
        self._touched = set()
        self.decorations = Decorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.in_total = 0
        self.in_per_q = {}
        self.in_deletes = 0
        self.out_total = 0

    def reset(self):
        self.child.reset()
        self.groups.clear()
        self.last_emitted.clear()
        self._touched.clear()
        self.state_count = 0
        self.in_total = 0
        self.in_per_q = {}
        self.in_deletes = 0
        self.out_total = 0
        self.decorations.reset_stats()

    def advance(self):
        deltas = self.child.advance()
        if FAULTS.drop_agg_retraction and HOTPATH.batched:
            # test-only injected bug: see repro.physical.faults
            deltas = drop_first_retraction(deltas)
        self.meter.charge_input(self.name, len(deltas))
        if self.stats_mode:
            self.in_total += len(deltas)
            _count_per_q(deltas, self.in_per_q)
            self.in_deletes += sum(1 for d in deltas if d.sign == DELETE)
        if HOTPATH.batched:
            self._absorb_batch(deltas)
            out = self._emit_batched()
        else:
            for delta in deltas:
                self._absorb(delta)
            out = self._emit()
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(self.name, self.state_factor * self.state_count)
        if self.stats_mode:
            self.out_total += len(out)
        return self.decorations.apply(out, self.meter)

    # -- batched hot path ----------------------------------------------------

    def _absorb_batch(self, deltas):
        # The inner dispatch inlines the state-update bodies by spec kind
        # so the per-(delta, query) cost carries no method-call frames.
        # The arithmetic is copied verbatim from the state classes (an
        # identical operation sequence keeps float results bit-identical
        # to the reference path); min/max keeps the method call because
        # it charges the work meter on rescans.
        groups = self.groups
        groups_get = groups.get
        group_key = self._group_key
        gidx = self._group_index
        input_fns = self._input_fns
        kinds = self._spec_kinds
        specs = self.specs
        mask = self.subplan_mask
        touched_add = self._touched.add
        meter = self.meter
        name = self.name
        state_count = self.state_count
        qids_cache_get = _QIDS_CACHE.get
        arity = len(kinds)
        single = arity == 1
        two = arity == 2
        fn0 = input_fns[0] if input_fns else None
        fn1 = input_fns[1] if arity > 1 else None
        kind0 = kinds[0] if kinds else 3
        kind1 = kinds[1] if arity > 1 else 3
        # group keys are interned per batch: the key tuple is built once
        # per distinct group, and every later delta of the group probes
        # groups/_touched with the identical object (identity fast path)
        key_cache = {}
        key_cache_get = key_cache.get
        for delta in deltas:
            row = delta.row
            sign = delta.sign
            if gidx is not None:
                value = row[gidx]
                key = key_cache_get(value)
                if key is None:
                    key = key_cache[value] = (value,)
            elif group_key is not None:
                key = group_key(row)
                interned = key_cache_get(key)
                if interned is None:
                    key_cache[key] = key
                else:
                    key = interned
            else:
                key = ()
            per_query = groups_get(key)
            if per_query is None:
                per_query = groups[key] = {}
            touched_add(key)
            masked = delta.bits & mask
            qids = qids_cache_get(masked)
            if qids is None:
                qids = qids_of(masked)
            per_query_get = per_query.get
            if single:
                value0 = fn0(row)
                for qid in qids:
                    state = per_query_get(qid)
                    if state is None:
                        state = per_query[qid] = _GroupQueryState(specs)
                        state_count += 1
                    state.contributions += sign
                    st = state.states[0]
                    if kind0 == 0:
                        st.value += value0 if sign == 1 else -value0
                    elif kind0 == 1:
                        st.count += sign
                    elif kind0 == 2:
                        count = st.count + sign
                        st.count = count
                        if count == 0:
                            st.total = 0
                            st.compensation = 0.0
                        else:
                            value = -value0 if sign == DELETE else value0
                            total = st.total
                            if type(total) is int and type(value) is int:
                                st.total = total + value
                            else:
                                new_total = total + value
                                if abs(total) >= abs(value):
                                    st.compensation += (total - new_total) + value
                                else:
                                    st.compensation += (value - new_total) + total
                                st.total = new_total
                    else:
                        st.update(value0, sign, meter, name)
            elif two:
                # unrolled two-spec shape (e.g. SUM + AVG): no values list,
                # no inner spec loop
                value_a = fn0(row)
                value_b = fn1(row)
                for qid in qids:
                    state = per_query_get(qid)
                    if state is None:
                        state = per_query[qid] = _GroupQueryState(specs)
                        state_count += 1
                    state.contributions += sign
                    states = state.states
                    st = states[0]
                    if kind0 == 0:
                        st.value += value_a if sign == 1 else -value_a
                    elif kind0 == 1:
                        st.count += sign
                    elif kind0 == 2:
                        count = st.count + sign
                        st.count = count
                        if count == 0:
                            st.total = 0
                            st.compensation = 0.0
                        else:
                            value = -value_a if sign == DELETE else value_a
                            total = st.total
                            if type(total) is int and type(value) is int:
                                st.total = total + value
                            else:
                                new_total = total + value
                                if abs(total) >= abs(value):
                                    st.compensation += (total - new_total) + value
                                else:
                                    st.compensation += (value - new_total) + total
                                st.total = new_total
                    else:
                        st.update(value_a, sign, meter, name)
                    st = states[1]
                    if kind1 == 0:
                        st.value += value_b if sign == 1 else -value_b
                    elif kind1 == 1:
                        st.count += sign
                    elif kind1 == 2:
                        count = st.count + sign
                        st.count = count
                        if count == 0:
                            st.total = 0
                            st.compensation = 0.0
                        else:
                            value = -value_b if sign == DELETE else value_b
                            total = st.total
                            if type(total) is int and type(value) is int:
                                st.total = total + value
                            else:
                                new_total = total + value
                                if abs(total) >= abs(value):
                                    st.compensation += (total - new_total) + value
                                else:
                                    st.compensation += (value - new_total) + total
                                st.total = new_total
                    else:
                        st.update(value_b, sign, meter, name)
            else:
                values = [fn(row) for fn in input_fns]
                for qid in qids:
                    state = per_query_get(qid)
                    if state is None:
                        state = per_query[qid] = _GroupQueryState(specs)
                        state_count += 1
                    state.contributions += sign
                    states = state.states
                    i = 0
                    for kind in kinds:
                        value = values[i]
                        st = states[i]
                        i += 1
                        if kind == 0:
                            st.value += value if sign == 1 else -value
                        elif kind == 1:
                            st.count += sign
                        elif kind == 2:
                            count = st.count + sign
                            st.count = count
                            if count == 0:
                                st.total = 0
                                st.compensation = 0.0
                            else:
                                if sign == DELETE:
                                    value = -value
                                total = st.total
                                if type(total) is int and type(value) is int:
                                    st.total = total + value
                                else:
                                    new_total = total + value
                                    if abs(total) >= abs(value):
                                        st.compensation += (total - new_total) + value
                                    else:
                                        st.compensation += (value - new_total) + total
                                    st.total = new_total
                        else:
                            st.update(value, sign, meter, name)
        self.state_count = state_count

    def _emit_batched(self):
        emissions = {}
        emissions_get = emissions.get
        groups = self.groups
        last_emitted = self.last_emitted
        state_count = self.state_count
        for key in self._touched:
            per_query = groups.get(key)
            if per_query is None:
                per_query = {}
            emitted = last_emitted.get(key)
            if emitted is None:
                emitted = last_emitted[key] = {}
            emitted_get = emitted.get
            for qid in list(per_query):
                state = per_query[qid]
                contributions = state.contributions
                previous = emitted_get(qid)
                if contributions <= 0:
                    if contributions < 0:
                        raise ExecutionError(
                            "negative multiplicity in group %r for q%d" % (key, qid)
                        )
                    if previous is not None:
                        slot = (previous, DELETE)
                        emissions[slot] = emissions_get(slot, 0) | (1 << qid)
                        del emitted[qid]
                    del per_query[qid]
                    state_count -= 1
                    continue
                row = key + tuple(s.current() for s in state.states)
                if row == previous:
                    continue
                if previous is not None:
                    slot = (previous, DELETE)
                    emissions[slot] = emissions_get(slot, 0) | (1 << qid)
                slot = (row, INSERT)
                emissions[slot] = emissions_get(slot, 0) | (1 << qid)
                emitted[qid] = row
            if not per_query:
                groups.pop(key, None)
            if not emitted:
                last_emitted.pop(key, None)
        self._touched.clear()
        self.state_count = state_count
        if not emissions:
            return []
        # deterministic order: deletions first so downstream never sees a
        # transient duplicate, then insertions
        ordered = sorted(
            emissions.items(), key=lambda item: (item[0][1], _sort_key(item[0][0]))
        )
        return [make_delta(row, sign, bits) for (row, sign), bits in ordered]

    # -- per-tuple reference path --------------------------------------------

    def _absorb(self, delta):
        key = self._group_key(delta.row) if self._group_key else ()
        per_query = self.groups.get(key)
        if per_query is None:
            per_query = self.groups[key] = {}
        values = [fn(delta.row) for fn in self._input_fns]
        for qid in bitvec.iter_bits(delta.bits & self.subplan_mask):
            state = per_query.get(qid)
            if state is None:
                state = per_query[qid] = _GroupQueryState(self.specs)
                self.state_count += 1
            state.contributions += delta.sign
            for agg_state, value in zip(state.states, values):
                agg_state.update(value, delta.sign, self.meter, self.name)
        self._touched.add(key)

    def _emit(self):
        emissions = {}

        def emit(row, sign, qid):
            slot = (row, sign)
            emissions[slot] = emissions.get(slot, 0) | (1 << qid)

        for key in self._touched:
            per_query = self.groups.get(key, {})
            emitted = self.last_emitted.setdefault(key, {})
            for qid in list(per_query):
                state = per_query[qid]
                previous = emitted.get(qid)
                if state.contributions <= 0:
                    if state.contributions < 0:
                        raise ExecutionError(
                            "negative multiplicity in group %r for q%d" % (key, qid)
                        )
                    if previous is not None:
                        emit(previous, DELETE, qid)
                        del emitted[qid]
                    del per_query[qid]
                    self.state_count -= 1
                    continue
                row = key + tuple(s.current() for s in state.states)
                if row == previous:
                    continue
                if previous is not None:
                    emit(previous, DELETE, qid)
                emit(row, INSERT, qid)
                emitted[qid] = row
            if not per_query:
                self.groups.pop(key, None)
            if not emitted:
                self.last_emitted.pop(key, None)
        self._touched.clear()
        # deterministic order: deletions first so downstream never sees a
        # transient duplicate, then insertions
        ordered = sorted(
            emissions.items(), key=lambda item: (item[0][1], _sort_key(item[0][0]))
        )
        return [Delta(row, sign, bits) for (row, sign), bits in ordered]

    def group_count(self, qid=None):
        """Number of live groups (optionally for one query); diagnostics."""
        if qid is None:
            return len(self.groups)
        return sum(1 for per_query in self.groups.values() if qid in per_query)


_TYPE_NAMES = {}


def _sort_key(row):
    # str(type(v)) is memoized per type; the rendered value is not (rows
    # rarely repeat within one emission sort).
    names = _TYPE_NAMES
    key = []
    for value in row:
        value_type = type(value)
        name = names.get(value_type)
        if name is None:
            name = names[value_type] = str(value_type)
        key.append((name, str(value)))
    return tuple(key)
