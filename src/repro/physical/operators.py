"""Incremental physical operators with SharedDB bitvector semantics.

Each physical operator is *stateful across incremental executions*: a call
to :meth:`advance` processes exactly the new deltas visible since the
previous call (one incremental execution of the owning subplan) and
returns the output deltas.  Every tuple carries a query bitvector; shared
select operators *mark* bits instead of dropping tuples (dropping only
when no query wants the tuple), joins AND the bitvectors of matching
tuples, and shared aggregates keep per-query state so queries whose
upstream marks differ still see correct aggregates.

Deletions follow classic IVM: an aggregate whose group value changed
retracts the previously emitted row (sign -1) and emits the new one
(sign +1).  MIN/MAX aggregates rescan their stored value multiset when a
deletion removes the current extremum -- the exact behaviour that makes
TPC-H Q15 non-incrementable in the paper's section 5.3.
"""

from ..errors import ExecutionError
from ..relational import bitvec
from ..relational.tuples import Delta, DELETE, INSERT, consolidate


class Decorations:
    """Compiled per-node mark-filter and union projection."""

    __slots__ = (
        "filter_name",
        "project_name",
        "compiled_filters",
        "filter_mask",
        "projection",
        "stats_mode",
        "filter_in_per_q",
        "filter_out_per_q",
    )

    def __init__(self, node, stats_mode=False):
        core_schema = node.core_schema
        self.filter_name = "filter:%d" % node.uid
        self.project_name = "proj:%d" % node.uid
        self.compiled_filters = {
            qid: predicate.compile(core_schema)
            for qid, predicate in node.filters.items()
        }
        self.filter_mask = bitvec.mask_of(self.compiled_filters)
        union = node.union_projection()
        if union is None:
            self.projection = None
        else:
            self.projection = [(alias, expr.compile(core_schema)) for alias, expr in union]
        self.stats_mode = stats_mode
        self.filter_in_per_q = {}
        self.filter_out_per_q = {}

    def apply(self, deltas, meter):
        """Mark-filter then project ``deltas``; returns the surviving list."""
        out = deltas
        if self.compiled_filters:
            filtered = []
            meter.charge_input(self.filter_name, len(out))
            for delta in out:
                bits = delta.bits
                if self.stats_mode:
                    for qid in bitvec.iter_bits(bits):
                        self.filter_in_per_q[qid] = self.filter_in_per_q.get(qid, 0) + 1
                relevant = bits & self.filter_mask
                for qid in bitvec.iter_bits(relevant):
                    if not self.compiled_filters[qid](delta.row):
                        bits &= ~(1 << qid)
                if bits == 0:
                    continue
                if self.stats_mode:
                    for qid in bitvec.iter_bits(bits):
                        self.filter_out_per_q[qid] = self.filter_out_per_q.get(qid, 0) + 1
                filtered.append(delta if bits == delta.bits else delta.with_bits(bits))
            out = filtered
        if self.projection is not None:
            meter.charge_input(self.project_name, len(out))
            out = [
                Delta(
                    tuple(fn(delta.row) for _, fn in self.projection),
                    delta.sign,
                    delta.bits,
                )
                for delta in out
            ]
        return out


class SourceExec:
    """Reads new deltas from a buffer (base table log or child subplan).

    Applies the implicit bits filter against the owning subplan's query
    mask (the paper's sigma-filter when pulling from a shared buffer) and
    then the node's decorations.
    """

    def __init__(self, node, reader, subplan_mask, meter, stats_mode=False,
                 consolidate_reads=False):
        self.node = node
        self.reader = reader
        self.subplan_mask = subplan_mask
        self.meter = meter
        self.name = "src:%d" % node.uid
        self.decorations = Decorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.consolidate_reads = consolidate_reads
        self.scanned_total = 0
        self.kept_total = 0
        self.kept_per_q = {}
        self.deletes_kept = 0

    def advance(self):
        new_deltas = self.reader.read_new()
        if self.consolidate_reads and new_deltas:
            # Reading from a child subplan's buffer: retract/insert churn
            # that cancelled within the unread window is compacted away
            # (the buffer behaves like a compacted Kafka topic / state
            # store), so a lazy consumer only processes net changes --
            # this is what makes delaying a parent subplan save work
            # (paper Figure 3c).
            new_deltas = consolidate(new_deltas)
        self.meter.charge_input(self.name, len(new_deltas))
        self.scanned_total += len(new_deltas)
        kept = []
        for delta in new_deltas:
            bits = delta.bits & self.subplan_mask
            if bits == 0:
                continue
            kept.append(delta if bits == delta.bits else delta.with_bits(bits))
        if self.stats_mode:
            self.kept_total += len(kept)
            for delta in kept:
                if delta.sign == DELETE:
                    self.deletes_kept += 1
                for qid in bitvec.iter_bits(delta.bits):
                    self.kept_per_q[qid] = self.kept_per_q.get(qid, 0) + 1
        return self.decorations.apply(kept, self.meter)


class JoinExec:
    """Symmetric (pipelined) hash join over delta streams.

    Both sides keep net-multiplicity hash tables keyed by the join key;
    output bitvectors are the AND of the matching inputs' bitvectors, and
    deletions propagate with multiplied signs.
    """

    def __init__(self, node, left, right, meter, stats_mode=False,
                 state_factor=0.0):
        self.node = node
        self.left = left
        self.right = right
        self.meter = meter
        self.state_factor = state_factor
        self.entry_count = 0
        self.name = "join:%d" % node.uid
        left_schema = node.children[0].out_schema
        right_schema = node.children[1].out_schema
        self._left_key = _key_getter(left_schema, node.left_keys)
        self._right_key = _key_getter(right_schema, node.right_keys)
        # key -> {(row, bits): net multiplicity}
        self._left_table = {}
        self._right_table = {}
        self.decorations = Decorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.in_left = 0
        self.in_right = 0
        self.out_total = 0
        self.in_left_per_q = {}
        self.in_right_per_q = {}
        self.out_per_q = {}

    def advance(self):
        left_deltas = self.left.advance()
        right_deltas = self.right.advance()
        self.meter.charge_input(self.name, len(left_deltas) + len(right_deltas))
        out = []
        # 1) probe new left deltas against the old right state
        for delta in left_deltas:
            self._probe(delta, self._right_table, self._left_key, out, left_side=True)
        # 2) install new left deltas
        for delta in left_deltas:
            self.entry_count += _table_update(
                self._left_table, self._left_key(delta.row), delta
            )
        # 3) probe new right deltas against the *new* left state
        for delta in right_deltas:
            self._probe(delta, self._left_table, self._right_key, out, left_side=False)
        # 4) install new right deltas
        for delta in right_deltas:
            self.entry_count += _table_update(
                self._right_table, self._right_key(delta.row), delta
            )
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(self.name, self.state_factor * self.entry_count)
        if self.stats_mode:
            self.in_left += len(left_deltas)
            self.in_right += len(right_deltas)
            self.out_total += len(out)
            _count_per_q(left_deltas, self.in_left_per_q)
            _count_per_q(right_deltas, self.in_right_per_q)
            _count_per_q(out, self.out_per_q)
        return self.decorations.apply(out, self.meter)

    def _probe(self, delta, table, key_fn, out, left_side):
        matches = table.get(key_fn(delta.row))
        if not matches:
            return
        for (other_row, other_bits), net in matches.items():
            bits = delta.bits & other_bits
            if bits == 0 or net == 0:
                continue
            sign = delta.sign * (INSERT if net > 0 else DELETE)
            if left_side:
                row = delta.row + other_row
            else:
                row = other_row + delta.row
            for _ in range(abs(net)):
                out.append(Delta(row, sign, bits))

    def state_size(self):
        """Net stored entries (both sides); used by tests and diagnostics."""
        left = sum(abs(n) for m in self._left_table.values() for n in m.values())
        right = sum(abs(n) for m in self._right_table.values() for n in m.values())
        return left + right


def _key_getter(schema, keys):
    indexes = tuple(schema.index_of(name) for name in keys)
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: row[index]
    return lambda row: tuple(row[i] for i in indexes)


def _table_update(table, key, delta):
    """Apply one delta to a hash table; returns the entry-count change."""
    entry = table.setdefault(key, {})
    slot = (delta.row, delta.bits)
    previous = entry.get(slot, 0)
    net = previous + delta.sign
    if net == 0:
        entry.pop(slot, None)
        if not entry:
            table.pop(key, None)
        return -1 if previous != 0 else 0
    entry[slot] = net
    return 1 if previous == 0 else 0


def _count_per_q(deltas, acc):
    for delta in deltas:
        for qid in bitvec.iter_bits(delta.bits):
            acc[qid] = acc.get(qid, 0) + 1


class _SumState:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def update(self, value, sign, meter, name):
        self.value += sign * value

    def current(self):
        return self.value


class _CountState:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def update(self, value, sign, meter, name):
        self.count += sign

    def current(self):
        return self.count


class _AvgState:
    __slots__ = ("total", "count")

    def __init__(self):
        self.total = 0
        self.count = 0

    def update(self, value, sign, meter, name):
        self.total += sign * value
        self.count += sign

    def current(self):
        if self.count == 0:
            return None
        return self.total / self.count


class _MinMaxState:
    """MIN/MAX with rescan-on-delete.

    Values are kept in a multiset; when a deletion removes the current
    extremum the state rescans all stored values to find the new one,
    charging one rescan work unit per value scanned (paper section 5.3:
    "the max operator needs to rescan all arrived values to find the new
    max one").
    """

    __slots__ = ("is_max", "values", "extremum")

    def __init__(self, is_max):
        self.is_max = is_max
        self.values = {}
        self.extremum = None

    def update(self, value, sign, meter, name):
        if sign == INSERT:
            self.values[value] = self.values.get(value, 0) + 1
            if self.extremum is None:
                self.extremum = value
            elif self.is_max and value > self.extremum:
                self.extremum = value
            elif not self.is_max and value < self.extremum:
                self.extremum = value
            return
        count = self.values.get(value, 0) - 1
        if count <= 0:
            self.values.pop(value, None)
        else:
            self.values[value] = count
        if value == self.extremum and value not in self.values:
            meter.charge_rescan(name, len(self.values))
            if self.values:
                self.extremum = max(self.values) if self.is_max else min(self.values)
            else:
                self.extremum = None

    def current(self):
        return self.extremum


def _make_state(spec):
    if spec.func == "sum":
        return _SumState()
    if spec.func == "count":
        return _CountState()
    if spec.func == "avg":
        return _AvgState()
    return _MinMaxState(spec.func == "max")


class _GroupQueryState:
    """Aggregate state of one group for one query."""

    __slots__ = ("contributions", "states")

    def __init__(self, specs):
        self.contributions = 0
        self.states = [_make_state(spec) for spec in specs]


class AggregateExec:
    """Shared group-by aggregate with per-query state and retractions.

    Processing updates per-(group, query) states according to each delta's
    bitvector.  At the end of each incremental execution the operator
    emits, for every touched (group, query), a retraction of the
    previously emitted row and an insertion of the new row (or just a
    deletion when the group emptied).  Emissions that coincide across
    queries are coalesced into one delta with OR-ed bits, so fully shared
    inputs emit exactly one physical tuple per group like SharedDB.
    """

    def __init__(self, node, child, subplan_mask, meter, stats_mode=False,
                 state_factor=0.0):
        self.node = node
        self.child = child
        self.subplan_mask = subplan_mask
        self.meter = meter
        self.state_factor = state_factor
        self.state_count = 0
        self.name = "agg:%d" % node.uid
        child_schema = node.children[0].out_schema
        if node.group_by:
            indexes = tuple(child_schema.index_of(name) for name in node.group_by)
            self._group_key = lambda row: tuple(row[i] for i in indexes)
        else:
            self._group_key = None
        self.specs = node.aggs
        self._input_fns = [spec.expr.compile(child_schema) for spec in self.specs]
        self.groups = {}
        self.last_emitted = {}
        self._touched = set()
        self.decorations = Decorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.in_total = 0
        self.in_per_q = {}
        self.in_deletes = 0
        self.out_total = 0

    def advance(self):
        deltas = self.child.advance()
        self.meter.charge_input(self.name, len(deltas))
        if self.stats_mode:
            self.in_total += len(deltas)
            _count_per_q(deltas, self.in_per_q)
            self.in_deletes += sum(1 for d in deltas if d.sign == DELETE)
        for delta in deltas:
            self._absorb(delta)
        out = self._emit()
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(self.name, self.state_factor * self.state_count)
        if self.stats_mode:
            self.out_total += len(out)
        return self.decorations.apply(out, self.meter)

    def _absorb(self, delta):
        key = self._group_key(delta.row) if self._group_key else ()
        per_query = self.groups.get(key)
        if per_query is None:
            per_query = self.groups[key] = {}
        values = [fn(delta.row) for fn in self._input_fns]
        for qid in bitvec.iter_bits(delta.bits & self.subplan_mask):
            state = per_query.get(qid)
            if state is None:
                state = per_query[qid] = _GroupQueryState(self.specs)
                self.state_count += 1
            state.contributions += delta.sign
            for agg_state, value in zip(state.states, values):
                agg_state.update(value, delta.sign, self.meter, self.name)
        self._touched.add(key)

    def _emit(self):
        emissions = {}

        def emit(row, sign, qid):
            slot = (row, sign)
            emissions[slot] = emissions.get(slot, 0) | (1 << qid)

        for key in self._touched:
            per_query = self.groups.get(key, {})
            emitted = self.last_emitted.setdefault(key, {})
            for qid in list(per_query):
                state = per_query[qid]
                previous = emitted.get(qid)
                if state.contributions <= 0:
                    if state.contributions < 0:
                        raise ExecutionError(
                            "negative multiplicity in group %r for q%d" % (key, qid)
                        )
                    if previous is not None:
                        emit(previous, DELETE, qid)
                        del emitted[qid]
                    del per_query[qid]
                    self.state_count -= 1
                    continue
                row = key + tuple(s.current() for s in state.states)
                if row == previous:
                    continue
                if previous is not None:
                    emit(previous, DELETE, qid)
                emit(row, INSERT, qid)
                emitted[qid] = row
            if not per_query:
                self.groups.pop(key, None)
            if not emitted:
                self.last_emitted.pop(key, None)
        self._touched.clear()
        # deterministic order: deletions first so downstream never sees a
        # transient duplicate, then insertions
        ordered = sorted(
            emissions.items(), key=lambda item: (item[0][1], _sort_key(item[0][0]))
        )
        return [Delta(row, sign, bits) for (row, sign), bits in ordered]

    def group_count(self, qid=None):
        """Number of live groups (optionally for one query); diagnostics."""
        if qid is None:
            return len(self.groups)
        return sum(1 for per_query in self.groups.values() if qid in per_query)


def _sort_key(row):
    return tuple((str(type(v)), str(v)) for v in row)
