"""Physical incremental operators and work accounting."""

from .work import WorkMeter
from .operators import SourceExec, JoinExec, AggregateExec, Decorations

__all__ = ["WorkMeter", "SourceExec", "JoinExec", "AggregateExec", "Decorations"]
