"""Test-only fault injection for validating the differential fuzzer.

The fuzzer (:mod:`repro.fuzz`) is itself code that can rot: a generator
that stops covering retractions, or an oracle comparison that stops
looking, would silently pass forever.  This module provides a *known
bug* that can be switched on in tests -- the fuzzer must then find it
within a bounded case budget and shrink it to a minimal repro
(``tests/test_fuzz.py``).

The injected bug mimics a classic incremental-view-maintenance mistake:
the batched aggregate path silently drops the first retraction (DELETE
delta) of every incremental execution, so any workload with churn that
reaches an aggregate produces results that diverge from the per-tuple
reference path.

All flags default off and the hook in
:class:`~repro.physical.operators.AggregateExec` is a single attribute
check, so production behavior and benchmarks are unaffected.
"""

from contextlib import contextmanager


class FaultFlags:
    """Mutable registry of injectable engine bugs (all default off)."""

    __slots__ = ("drop_agg_retraction",)

    def __init__(self):
        #: batched aggregate path drops the first DELETE delta per execution
        self.drop_agg_retraction = False

    def reset(self):
        self.drop_agg_retraction = False

    def __repr__(self):
        return "FaultFlags(drop_agg_retraction=%s)" % self.drop_agg_retraction


#: process-wide injected-fault flags; mutate via :func:`inject_fault`
FAULTS = FaultFlags()


@contextmanager
def inject_fault(drop_agg_retraction=None):
    """Temporarily switch on injected engine bugs (tests only)."""
    saved = FAULTS.drop_agg_retraction
    if drop_agg_retraction is not None:
        FAULTS.drop_agg_retraction = bool(drop_agg_retraction)
    try:
        yield FAULTS
    finally:
        FAULTS.drop_agg_retraction = saved


def drop_first_retraction(deltas):
    """The injected bug's behavior: lose the first DELETE of a batch."""
    for index, delta in enumerate(deltas):
        if delta.sign == -1:
            return deltas[:index] + deltas[index + 1:]
    return deltas
