"""Hot-path engine configuration and shared compile-time caches.

The incremental engine has two interchangeable execution paths:

* the **batched** path (default) processes whole delta lists per operator
  with hoisted attribute lookups, pre-bound closures, cached bits->query
  decodings and multiplicity-shared delta expansion;
* the **reference** path applies every delta through the original
  per-tuple calls.

Both paths produce bit-identical :class:`~repro.engine.metrics.RunResult`
work/latency numbers and identical output delta streams -- the reference
path exists as the correctness oracle (``tests/test_hotpath_equivalence``)
and as the baseline of ``benchmarks/bench_engine_hotpath.py``.

Independently toggleable (``batched``/``compile_cache``/``reuse_trees``
default on, ``columnar`` defaults off):

``batched``
    batched delta application in the physical operators.
``columnar``
    struct-of-arrays delta batches with NumPy-vectorized operator
    kernels (:mod:`repro.physical.columnar`); results are
    tolerance-equivalent to the batched path and WorkMeter charges are
    exactly identical (docs/PERFORMANCE.md).  The request is honoured
    only when :func:`columnar_available` says so (NumPy importable, kill
    switch not set) and the plan's query ids fit an int64 bitvector.
``compile_cache``
    process-wide reuse of compiled per-node artifacts (predicate and
    projection closures, join key getters, aggregate input closures)
    keyed on the node's unique id, so repeated ``PlanExecutor`` builds
    over the same plan stop re-paying expression compilation.
``reuse_trees``
    reuse of a :class:`~repro.engine.executor.PlanExecutor`'s compiled
    operator tree across ``run()`` calls (state is deterministically
    reset between runs instead of rebuilt).

``arrangements``
    shared join arrangements (:mod:`repro.engine.arrangements`): one
    multi-reader index per ``(table, key columns)`` replaces the
    eligible joins' private hash tables.  Results and WorkMeter charges
    stay bit-identical to the private path (the fuzz oracle
    ``shared-arranged`` enforces it); resident state and maintenance
    work drop (docs/ARRANGEMENTS.md).  Defaults on.

``fusion``
    fused kernel codegen (:mod:`repro.physical.fused`): the columnar
    backend's filter -> project -> aggregate-input chains collapse into
    single generated NumPy kernels, compiled once per node and memoized
    through :func:`cached_artifacts`.  Results, records and WorkMeter
    charges are bit-identical to the unfused columnar path (the fuzz
    oracle ``shared-columnar-nofuse`` enforces it).  Defaults on; only
    affects the columnar backend.

Environment overrides (read once at import): ``REPRO_ENGINE_UNBATCHED``,
``REPRO_ENGINE_NO_COMPILE_CACHE``, ``REPRO_ENGINE_NO_PLAN_REUSE``,
``REPRO_ENGINE_NO_ARRANGEMENTS`` (kill switch restoring per-join
private state), ``REPRO_ENGINE_NO_FUSION`` (kill switch restoring the
per-expression closure chain), and ``REPRO_ENGINE_COLUMNAR`` (``1``
turns the columnar backend on by default, ``0`` is a kill switch that
pins it off even when ``engine_mode(columnar=True)`` asks for it).
"""

import os
from contextlib import contextmanager

_COLUMNAR_ENV = os.environ.get("REPRO_ENGINE_COLUMNAR", "").strip().lower()

#: kill switch: ``REPRO_ENGINE_COLUMNAR=0`` (or ``off``) disables the
#: columnar backend regardless of :data:`HOTPATH`; tests monkeypatch it
COLUMNAR_KILLED = _COLUMNAR_ENV in ("0", "off", "no", "false")

_NUMPY_OK = None


def columnar_available():
    """Whether the columnar backend can run at all in this process."""
    global _NUMPY_OK
    if _NUMPY_OK is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _NUMPY_OK = False
        else:
            _NUMPY_OK = True
    return _NUMPY_OK and not COLUMNAR_KILLED


class EngineMode:
    """Mutable toggles for the engine's hot-path optimisations."""

    __slots__ = ("batched", "compile_cache", "reuse_trees", "columnar",
                 "arrangements", "fusion")

    def __init__(self, batched=True, compile_cache=True, reuse_trees=True,
                 columnar=False, arrangements=True, fusion=True):
        self.batched = bool(batched)
        self.compile_cache = bool(compile_cache)
        self.reuse_trees = bool(reuse_trees)
        self.columnar = bool(columnar)
        self.arrangements = bool(arrangements)
        self.fusion = bool(fusion)

    def __repr__(self):
        return (
            "EngineMode(batched=%s, compile_cache=%s, reuse_trees=%s, "
            "columnar=%s, arrangements=%s, fusion=%s)"
            % (self.batched, self.compile_cache, self.reuse_trees,
               self.columnar, self.arrangements, self.fusion)
        )


#: process-wide engine mode; mutate via :func:`engine_mode` in tests
HOTPATH = EngineMode(
    batched=not os.environ.get("REPRO_ENGINE_UNBATCHED"),
    compile_cache=not os.environ.get("REPRO_ENGINE_NO_COMPILE_CACHE"),
    reuse_trees=not os.environ.get("REPRO_ENGINE_NO_PLAN_REUSE"),
    columnar=_COLUMNAR_ENV in ("1", "on", "yes", "true"),
    arrangements=not os.environ.get("REPRO_ENGINE_NO_ARRANGEMENTS"),
    fusion=not os.environ.get("REPRO_ENGINE_NO_FUSION"),
)


def engine_mode_label():
    """Short backend name for reports/metadata: which path would run."""
    if HOTPATH.columnar and columnar_available():
        return "columnar"
    return "batched" if HOTPATH.batched else "reference"


@contextmanager
def engine_mode(batched=None, compile_cache=None, reuse_trees=None,
                columnar=None, arrangements=None, fusion=None):
    """Temporarily override :data:`HOTPATH` toggles (tests, benchmarks)."""
    saved = (HOTPATH.batched, HOTPATH.compile_cache, HOTPATH.reuse_trees,
             HOTPATH.columnar, HOTPATH.arrangements, HOTPATH.fusion)
    if batched is not None:
        HOTPATH.batched = bool(batched)
    if compile_cache is not None:
        HOTPATH.compile_cache = bool(compile_cache)
    if reuse_trees is not None:
        HOTPATH.reuse_trees = bool(reuse_trees)
    if columnar is not None:
        HOTPATH.columnar = bool(columnar)
    if arrangements is not None:
        HOTPATH.arrangements = bool(arrangements)
    if fusion is not None:
        HOTPATH.fusion = bool(fusion)
    try:
        yield HOTPATH
    finally:
        (HOTPATH.batched, HOTPATH.compile_cache, HOTPATH.reuse_trees,
         HOTPATH.columnar, HOTPATH.arrangements, HOTPATH.fusion) = saved


# -- bits -> query-id decoding cache ----------------------------------------
#
# Delta bitvectors repeat heavily (most tuples of a batch carry the same
# query set), so decoding a mask to its query ids through the iter_bits
# generator per record is the single hottest per-tuple cost in shared
# aggregates.  Decodings are memoized per distinct (non-negative) mask.

_QIDS_CACHE = {0: ()}
_QIDS_LIMIT = 1 << 16


def qids_of(bits):
    """The tuple of query ids set in ``bits`` (must be non-negative).

    Callers mask deltas against a subplan/filter mask first; raw ``~0``
    bitvectors would not terminate.
    """
    cached = _QIDS_CACHE.get(bits)
    if cached is None:
        if len(_QIDS_CACHE) >= _QIDS_LIMIT:
            _QIDS_CACHE.clear()
            _QIDS_CACHE[0] = ()
        qids = []
        mask = bits
        qid = 0
        while mask:
            if mask & 1:
                qids.append(qid)
            mask >>= 1
            qid += 1
        cached = _QIDS_CACHE[bits] = tuple(qids)
    return cached


# -- compiled per-node artifact cache ---------------------------------------
#
# OpNode uids are unique for the lifetime of the process and a node's
# decorations/keys/schemas are immutable after plan construction, so the
# compiled closures can be shared by every operator instantiation of the
# node -- across PlanExecutor builds, across run() calls and across
# processes' repeated sweep cells.  The cache is bounded: when it fills,
# it is cleared wholesale (recompilation is cheap relative to a leak).

_ARTIFACTS = {}
_ARTIFACTS_LIMIT = 4096

#: (hits, misses) counters; surfaced through repro.obs when enabled
compile_cache_stats = {"hits": 0, "misses": 0}


def cached_artifacts(key, builder):
    """Fetch (or build and memoize) the compiled artifacts of one node.

    ``key`` is a hashable cache key, conventionally ``(kind, node.uid)``
    so different artifact families of the same node do not collide.
    ``builder`` is a zero-argument callable producing the artifact object;
    it runs exactly once per key while the cache holds the entry.  With
    ``HOTPATH.compile_cache`` off, the builder runs every time.
    """
    if not HOTPATH.compile_cache:
        return builder()
    artifacts = _ARTIFACTS.get(key)
    if artifacts is None:
        if len(_ARTIFACTS) >= _ARTIFACTS_LIMIT:
            _ARTIFACTS.clear()
        artifacts = _ARTIFACTS[key] = builder()
        compile_cache_stats["misses"] += 1
    else:
        compile_cache_stats["hits"] += 1
    return artifacts


def clear_compiled_caches():
    """Drop every memoized artifact and bits decoding (tests)."""
    _ARTIFACTS.clear()
    _QIDS_CACHE.clear()
    _QIDS_CACHE[0] = ()
    compile_cache_stats["hits"] = 0
    compile_cache_stats["misses"] = 0
