"""Columnar (struct-of-arrays) physical operators with vectorized kernels.

The third engine mode (``HOTPATH.columnar``): delta batches flow between
operators as :class:`~repro.engine.columns.ColumnBatch` structs and the
per-delta interpreter work of the batched path becomes NumPy array ops --
mask-based mark filters, dict-of-row-ranges hash-join probes expanded
with ``np.repeat``/``np.tile``, and grouped SUM/COUNT/AVG via stable
sort + ``np.add.reduceat`` segment reduction with retraction as signed
multiplicities.

Two invariants tie this backend to the batched path:

* **exact WorkMeter parity** -- every charge is computed from array
  lengths that equal the batched path's list lengths, and the aggregate
  only uses segment reduction when the arithmetic is provably exact
  (ints, integral floats), falling back to the reference's sequential
  per-delta arithmetic otherwise so emission *counts* (and therefore
  output/work accounting) never diverge;
* **order preservation** -- join output order is delta-major with
  matches in state insertion order, and per-(group, query) aggregate
  update order is the original delta order (stable sorts throughout),
  because MIN/MAX rescan charges depend on it.

Results are tolerance-equivalent to the batched path (float segment
sums may associate differently only on the exact paths where it cannot
matter); ``tests/test_columnar_equivalence.py`` and the
``shared-columnar`` fuzz oracle enforce both invariants.
"""

import os

from ..engine.columns import (
    ColumnBatch,
    as_columns,
    column_array,
    concat_batches,
    np,
)
from ..relational.expressions import (
    And,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Contains,
    InList,
    Not,
    Or,
    StartsWith,
)
from .fused import (
    fused_aggregate_inputs,
    fused_decoration_kernel,
    fused_source_kernel,
    fusion_active,
)
from .hotpath import cached_artifacts, qids_of
from .operators import AggregateExec, _GroupQueryState


# -- vectorized expression compilation ---------------------------------------


class _NotVectorizable(Exception):
    """Internal: fall back to the row-wise closure for this expression."""


_ARITH_SAFE = {"+", "-", "*"}


def _vec(expr, schema):
    """Build ``fn(batch) -> ndarray-or-scalar`` for a vectorizable tree."""
    if isinstance(expr, Col):
        index = schema.index_of(expr.name)
        # per-column access: a row-backed batch materializes (and
        # caches) only the columns an expression actually reads
        return lambda batch: batch.column(index)
    if isinstance(expr, Const):
        value = expr.value
        return lambda batch: value
    if isinstance(expr, BinaryOp):
        left = _vec(expr.left, schema)
        right = _vec(expr.right, schema)
        op = expr.op
        if op in _ARITH_SAFE:
            if op == "+":
                return lambda batch: left(batch) + right(batch)
            if op == "-":
                return lambda batch: left(batch) - right(batch)
            return lambda batch: left(batch) * right(batch)
        # division vectorizes only by a nonzero constant: NumPy yields
        # inf/nan where the scalar path raises ZeroDivisionError, and the
        # error class is part of the differential-oracle contract
        if not (isinstance(expr.right, Const) and expr.right.value != 0):
            raise _NotVectorizable
        if op == "/":
            return lambda batch: left(batch) / right(batch)
        return lambda batch: left(batch) // right(batch)
    if isinstance(expr, Comparison):
        left = _vec(expr.left, schema)
        right = _vec(expr.right, schema)
        op = expr.op
        if op == "==":
            return lambda batch: left(batch) == right(batch)
        if op == "!=":
            return lambda batch: left(batch) != right(batch)
        if op == "<":
            return lambda batch: left(batch) < right(batch)
        if op == "<=":
            return lambda batch: left(batch) <= right(batch)
        if op == ">":
            return lambda batch: left(batch) > right(batch)
        return lambda batch: left(batch) >= right(batch)
    if isinstance(expr, And):
        left = _vec(expr.left, schema)
        right = _vec(expr.right, schema)
        return lambda batch: np.logical_and(
            _truthy(left(batch), len(batch)), _truthy(right(batch), len(batch))
        )
    if isinstance(expr, Or):
        left = _vec(expr.left, schema)
        right = _vec(expr.right, schema)
        return lambda batch: np.logical_or(
            _truthy(left(batch), len(batch)), _truthy(right(batch), len(batch))
        )
    if isinstance(expr, Not):
        child = _vec(expr.child, schema)
        return lambda batch: np.logical_not(_truthy(child(batch), len(batch)))
    if isinstance(expr, InList):
        child = _vec(expr.child, schema)
        values = frozenset(expr.values)

        def isin(batch):
            # frozenset membership per element keeps hash-equality
            # semantics identical to the scalar closure
            x = child(batch)
            if isinstance(x, np.ndarray):
                return np.fromiter(
                    (v in values for v in x.tolist()), np.bool_, len(x)
                )
            return x in values

        return isin
    if isinstance(expr, StartsWith):
        child = _vec(expr.child, schema)
        prefix = expr.prefix

        def starts(batch):
            x = child(batch)
            if isinstance(x, np.ndarray):
                return np.fromiter(
                    (v.startswith(prefix) for v in x.tolist()),
                    np.bool_, len(x),
                )
            return x.startswith(prefix)

        return starts
    if isinstance(expr, Contains):
        child = _vec(expr.child, schema)
        needle = expr.needle

        def contains(batch):
            x = child(batch)
            if isinstance(x, np.ndarray):
                return np.fromiter(
                    (needle in v for v in x.tolist()), np.bool_, len(x)
                )
            return needle in x

        return contains
    raise _NotVectorizable


def compile_columnar(expr, schema):
    """``fn(batch) -> column`` for ``expr``; row-wise fallback when the
    tree has a shape the vectorizer does not cover (exact by
    construction: it runs the same scalar closure the other paths use).
    """
    try:
        return _vec(expr, schema)
    except _NotVectorizable:
        scalar = expr.compile(schema)

        def rowwise(batch):
            return column_array([scalar(row) for row in batch.rows()])

        return rowwise


def _truthy(x, n):
    """Coerce a predicate result to a bool mask (or scalar bool)."""
    if isinstance(x, np.ndarray):
        if x.dtype == np.bool_:
            return x
        if x.dtype == object:
            return np.fromiter((bool(v) for v in x), np.bool_, len(x))
        return x.astype(np.bool_)
    return bool(x)


def _bool_mask(x, n):
    """A full-length bool mask from a predicate result."""
    x = _truthy(x, n)
    if isinstance(x, np.ndarray):
        return x
    return np.full(n, x, dtype=np.bool_)


def _materialize(x, n):
    """A full-length column from a projection result (broadcast scalars)."""
    if isinstance(x, np.ndarray):
        if x.ndim != 0:
            return x
        x = x.item()
    if isinstance(x, (bool, np.bool_)):
        return np.full(n, bool(x), dtype=np.bool_)
    if isinstance(x, (int, np.integer)):
        return np.full(n, int(x), dtype=np.int64)
    if isinstance(x, (float, np.floating)):
        return np.full(n, float(x), dtype=np.float64)
    arr = np.empty(n, dtype=object)
    arr.fill(x)
    return arr


def _count_bits(bits, acc):
    """Per-query counters from a bits array (stats mode)."""
    if not len(bits):
        return
    values, counts = np.unique(bits, return_counts=True)
    for value, count in zip(values.tolist(), counts.tolist()):
        for qid in qids_of(value):
            acc[qid] = acc.get(qid, 0) + count


# -- columnar decorations ----------------------------------------------------


class _ColumnarDecorationArtifacts:
    """Vector-compiled mark filters and union projection (shareable)."""

    __slots__ = ("filter_pairs", "projection_fns")

    def __init__(self, node):
        core_schema = node.core_schema
        self.filter_pairs = tuple(
            (1 << qid, ~(1 << qid), compile_columnar(predicate, core_schema))
            for qid, predicate in sorted(node.filters.items())
        )
        union = node.union_projection()
        if union is None:
            self.projection_fns = None
        else:
            self.projection_fns = tuple(
                compile_columnar(expr, core_schema) for _, expr in union
            )


class ColumnarDecorations:
    """Columnar twin of :class:`~repro.physical.operators.Decorations`.

    Charges the same amounts under the same operator names: the filter
    charge is the pre-filter batch length, the projection charge the
    post-filter length, exactly like the batched path.
    """

    __slots__ = ("filter_name", "project_name", "filter_pairs",
                 "projection_fns", "stats_mode", "filter_in_per_q",
                 "filter_out_per_q", "fused")

    def __init__(self, node, stats_mode=False):
        artifacts = cached_artifacts(
            ("cdeco", node.uid), lambda: _ColumnarDecorationArtifacts(node)
        )
        self.filter_name = "filter:%d" % node.uid
        self.project_name = "proj:%d" % node.uid
        self.filter_pairs = artifacts.filter_pairs
        self.projection_fns = artifacts.projection_fns
        self.stats_mode = stats_mode
        # stats mode needs the unfused path's per-filter counters; the
        # fused kernel only covers the plain hot path
        if stats_mode or not fusion_active():
            self.fused = None
        else:
            self.fused = fused_decoration_kernel(node)
        self.filter_in_per_q = {}
        self.filter_out_per_q = {}

    def reset_stats(self):
        self.filter_in_per_q.clear()
        self.filter_out_per_q.clear()

    def apply(self, batch, meter):
        fused = self.fused
        if fused is not None:
            return fused(batch, meter)
        pairs = self.filter_pairs
        if pairs:
            n = len(batch)
            meter.charge_input(self.filter_name, n)
            if self.stats_mode:
                _count_bits(batch.bits, self.filter_in_per_q)
            bits = batch.bits
            for bit, clear, fn in pairs:
                has = (bits & bit) != 0
                if not has.any():
                    continue
                pred = _bool_mask(fn(batch), n)
                # clear the query's bit where its predicate rejects the
                # row; rows without the bit are unaffected by design
                drop = has & ~pred
                if drop.any():
                    bits = np.where(drop, bits & clear, bits)
            keep = bits != 0
            if keep.all():
                batch = batch.with_bits(bits)
            else:
                batch = batch.with_bits(bits).take(np.flatnonzero(keep))
            if self.stats_mode:
                _count_bits(batch.bits, self.filter_out_per_q)
        fns = self.projection_fns
        if fns is not None:
            n = len(batch)
            meter.charge_input(self.project_name, n)
            columns = tuple(_materialize(fn(batch), n) for fn in fns)
            batch = ColumnBatch(columns, batch.signs, batch.bits)
        return batch


# -- source ------------------------------------------------------------------


def _consolidated_batch(deltas, batches, width):
    """Fused ``consolidate`` + ``from_deltas``: one pass from raw deltas
    (and/or columnar buffer segments) to a row-backed batch, no
    intermediate Delta allocations.

    Emits exactly :func:`repro.relational.tuples.consolidate`'s
    sequence -- first-seen ``(row, bits)`` order, net multiplicity
    expanded back into unit entries -- so the batch is indistinguishable
    from ``from_deltas(consolidate(deltas), width)`` over the
    concatenated input.
    """
    net = {}
    order = []
    order_append = order.append
    for delta in deltas:
        key = (delta.row, delta.bits)
        if key in net:
            net[key] += delta.sign
        else:
            net[key] = delta.sign
            order_append(key)
    for batch in batches:
        for row, sign, bit in zip(
            batch.rows(), batch.signs.tolist(), batch.bits.tolist()
        ):
            key = (row, bit)
            if key in net:
                net[key] += sign
            else:
                net[key] = sign
                order_append(key)
    rows = []
    signs = []
    bits = []
    for key in order:
        count = net[key]
        if count == 0:
            continue
        if count > 0:
            sign = 1
        else:
            sign = -1
            count = -count
        row, bit = key
        if count == 1:
            rows.append(row)
            signs.append(sign)
            bits.append(bit)
        else:
            rows.extend([row] * count)
            signs.extend([sign] * count)
            bits.extend([bit] * count)
    return ColumnBatch.from_rows(
        rows,
        np.array(signs, dtype=np.int64),
        np.array(bits, dtype=np.int64),
        width,
    )


class ColumnarSourceExec:
    """Columnar twin of :class:`~repro.physical.operators.SourceExec`."""

    def __init__(self, node, reader, subplan_mask, meter, stats_mode=False,
                 consolidate_reads=False):
        self.node = node
        self.reader = reader
        self.subplan_mask = subplan_mask
        self.meter = meter
        self.name = "src:%d" % node.uid
        self.decorations = ColumnarDecorations(node, stats_mode)
        # one generated kernel for mask -> filters -> projection; gated
        # exactly like the decoration kernel (off in stats mode)
        if self.decorations.fused is not None:
            self._fused = fused_source_kernel(node)
        else:
            self._fused = None
        self.stats_mode = stats_mode
        self.consolidate_reads = consolidate_reads
        self.width = len(node.core_schema)
        self.scanned_total = 0
        self.kept_total = 0
        self.kept_per_q = {}
        self.deletes_kept = 0

    def reset(self):
        self.reader.offset = 0
        self.scanned_total = 0
        self.kept_total = 0
        self.kept_per_q = {}
        self.deletes_kept = 0
        self.decorations.reset_stats()

    def _combine(self, new_deltas, segments):
        parts = []
        if new_deltas:
            parts.append(ColumnBatch.from_deltas(new_deltas, self.width))
        parts.extend(segments)
        return concat_batches(parts, self.width)

    def advance(self):
        reader = self.reader
        start = reader.offset
        new_deltas, segments = reader.read_new_segments()
        width = self.width
        if self.consolidate_reads and (new_deltas or segments):
            # consolidation depends only on the logical span read, so
            # same-pace consumers of one buffer share a single pass
            batch = reader.buffer.cache_view(
                (start, reader.offset, True),
                lambda: _consolidated_batch(new_deltas, segments, width),
            )
        elif len(segments) == 1 and not new_deltas:
            # the common columnar-native case: the producer's segment is
            # consumed as-is, sharing its lazy column cache across every
            # reader of the buffer
            batch = segments[0]
        elif segments:
            batch = reader.buffer.cache_view(
                (start, reader.offset, False),
                lambda: self._combine(new_deltas, segments),
            )
        else:
            batch = ColumnBatch.from_deltas(new_deltas, width)
        self.meter.charge_input(self.name, len(batch))
        self.scanned_total += len(batch)
        fused = self._fused
        if fused is not None:
            return fused(batch, self.subplan_mask, self.meter)
        bits = batch.bits & self.subplan_mask
        keep = bits != 0
        if keep.all():
            kept = batch.with_bits(bits)
        else:
            kept = batch.with_bits(bits).take(np.flatnonzero(keep))
        if self.stats_mode:
            self.kept_total += len(kept)
            self.deletes_kept += int((kept.signs < 0).sum())
            _count_bits(kept.bits, self.kept_per_q)
        return self.decorations.apply(kept, self.meter)


# -- join --------------------------------------------------------------------


class _ColumnarJoinSide:
    """One side's hash state: append-only column chunks plus live indices.

    Slot bookkeeping mirrors the batched ``key -> {(row, bits): net}``
    tables exactly -- per-key slot lists keep insertion order (matching
    dict insertion order in the batched path, including remove-then-
    reinsert moving a slot to the tail), and materialized arrays are
    maintained incrementally so each advance pays O(batch), not O(state).
    """

    __slots__ = ("width", "rows_raw", "bits_raw", "net", "slots",
                 "arrays", "net_array", "materialized", "net_dirty",
                 "live", "dead")

    def __init__(self, width):
        self.width = width
        self.reset()

    def reset(self):
        self.rows_raw = []  # one tuple per slot; columnized lazily
        self.bits_raw = []
        self.net = []
        # key -> {(row, bits): slot index}; dict order IS the probe
        # order (insertion order, removals free their position, a
        # reinsertion lands at the tail -- exactly the batched tables)
        self.slots = {}
        self.arrays = None
        self.net_array = None
        self.materialized = 0
        self.net_dirty = []
        self.live = 0
        self.dead = 0

    def _columnize(self, rows):
        if self.width:
            return tuple(column_array(col) for col in zip(*rows))
        return ()

    def materialize(self):
        """Current (columns, bits, net) arrays, extended incrementally."""
        total = len(self.net)
        if self.arrays is None:
            columns = self._columnize(self.rows_raw)
            bits = np.fromiter(self.bits_raw, np.int64, total)
            self.net_array = np.fromiter(self.net, np.int64, total)
            self.arrays = (columns, bits)
            self.materialized = total
            self.net_dirty = []
            return self.arrays[0], self.arrays[1], self.net_array
        start = self.materialized
        if total > start:
            old_columns, old_bits = self.arrays
            tails = self._columnize(self.rows_raw[start:])
            new_columns = []
            for position, (old, tail) in enumerate(zip(old_columns, tails)):
                if tail.dtype == old.dtype:
                    new_columns.append(np.concatenate([old, tail]))
                else:
                    # a column changed type across batches: rebuild with
                    # the strict detector so ints stay ints
                    new_columns.append(
                        column_array([row[position] for row in self.rows_raw])
                    )
            bits_tail = np.fromiter(self.bits_raw[start:], np.int64,
                                    total - start)
            new_bits = np.concatenate([old_bits, bits_tail])
            net_tail = np.fromiter(self.net[start:], np.int64, total - start)
            self.net_array = np.concatenate([self.net_array, net_tail])
            self.arrays = (tuple(new_columns), new_bits)
            self.materialized = total
        if self.net_dirty:
            net_array = self.net_array
            net = self.net
            for idx in self.net_dirty:
                net_array[idx] = net[idx]
            self.net_dirty = []
        return self.arrays[0], self.arrays[1], self.net_array

    def compact(self):
        """Rebuild the raw chunks from live slots only.

        Installs free a slot's index when its net retracts to zero, but
        the append-only ``rows_raw``/``bits_raw``/``net`` chunks (and
        their materialized arrays) kept the dead positions forever, so
        delete-heavy churn leaked memory proportional to total churn
        instead of live state.  Reindexing walks the slot dicts in their
        existing order, so per-key probe order — the only order probes
        observe — is untouched.
        """
        rows_raw = []
        bits_raw = []
        net = []
        old_net = self.net
        for per_key in self.slots.values():
            for slot in per_key:
                idx = per_key[slot]
                per_key[slot] = len(net)
                rows_raw.append(slot[0])
                bits_raw.append(slot[1])
                net.append(old_net[idx])
        self.rows_raw = rows_raw
        self.bits_raw = bits_raw
        self.net = net
        self.arrays = None
        self.net_array = None
        self.materialized = 0
        self.net_dirty = []
        self.dead = 0


# Batches below this row count probe with the scalar loop: per-delta
# python emission beats the arange/repeat expansion until the probe
# fan-out is large.  Exported so tests can force either path; the
# ``REPRO_SCALAR_PROBE_MAX`` environment variable overrides the default
# (0 forces the vectorized probe for every batch).  The default sits at
# the measured crossover: the probe sweep in
# benchmarks/bench_engine_hotpath.py (``probe_crossover`` in
# BENCH_columnar.json) shows the vectorized probe overtaking the scalar
# loop at 16 rows -- lazy gather emission (ColumnBatch.from_gather)
# removed the per-probe column materialization that used to push the
# crossover past 100 rows -- so only single-digit delta trickles stay
# scalar.
try:
    SCALAR_PROBE_MAX = int(
        os.environ.get("REPRO_SCALAR_PROBE_MAX", "") or 16
    )
except ValueError:  # unparseable override: keep the measured default
    SCALAR_PROBE_MAX = 16


class ColumnarJoinExec:
    """Columnar twin of :class:`~repro.physical.operators.JoinExec`.

    Installs stay scalar (they are per-slot dict bookkeeping either
    way); the probe is vectorized per distinct key and reassembled into
    the batched path's exact output order: delta-major, matches in state
    insertion order, |net| copies each via ``np.repeat``.
    """

    def __init__(self, node, left, right, meter, stats_mode=False,
                 state_factor=0.0):
        self.node = node
        self.left = left
        self.right = right
        self.meter = meter
        self.state_factor = state_factor
        self._private_entries = 0
        self._left_arranged = None
        self._right_arranged = None
        self.name = "join:%d" % node.uid
        left_schema = node.children[0].out_schema
        right_schema = node.children[1].out_schema
        self.left_width = len(left_schema)
        self.right_width = len(right_schema)
        self.out_width = self.left_width + self.right_width
        self._left_key_idx = tuple(
            left_schema.index_of(name) for name in node.left_keys
        )
        self._right_key_idx = tuple(
            right_schema.index_of(name) for name in node.right_keys
        )
        self._left_state = _ColumnarJoinSide(self.left_width)
        self._right_state = _ColumnarJoinSide(self.right_width)
        self.decorations = ColumnarDecorations(node, stats_mode)
        self.stats_mode = stats_mode
        self.in_left = 0
        self.in_right = 0
        self.out_total = 0
        self.in_left_per_q = {}
        self.in_right_per_q = {}
        self.out_per_q = {}

    def attach_arrangement(self, side, handle):
        """Serve one side (0=left, 1=right) from a shared arrangement."""
        if side == 0:
            self._left_arranged = handle
        else:
            self._right_arranged = handle

    @property
    def entry_count(self):
        """Net stored entries this join is charged for (private + shared)."""
        count = self._private_entries
        if self._left_arranged is not None:
            count += self._left_arranged.version.entries
        if self._right_arranged is not None:
            count += self._right_arranged.version.entries
        return count

    def reset(self):
        self.left.reset()
        self.right.reset()
        self._left_state.reset()
        self._right_state.reset()
        self._private_entries = 0
        self.in_left = 0
        self.in_right = 0
        self.out_total = 0
        self.in_left_per_q = {}
        self.in_right_per_q = {}
        self.out_per_q = {}
        self.decorations.reset_stats()

    def advance(self):
        left_batch = as_columns(self.left.advance(), self.left_width)
        right_batch = as_columns(self.right.advance(), self.right_width)
        self.meter.charge_input(
            self.name, len(left_batch) + len(right_batch)
        )
        outputs = []
        if self._left_arranged is not None or self._right_arranged is not None:
            self._advance_arranged(left_batch, right_batch, outputs)
        else:
            if len(left_batch):
                keys = self._keys(left_batch, self._left_key_idx)
                # probe new left deltas against the old right state, then
                # install them -- installs only touch the left table, so
                # batch-level probe/install matches the fused per-delta
                # order
                self._probe(left_batch, keys, self._right_state, True,
                            outputs)
                self._private_entries += self._install(
                    self._left_state, left_batch, keys
                )
            if len(right_batch):
                keys = self._keys(right_batch, self._right_key_idx)
                # probe new right deltas against the *new* left state
                self._probe(right_batch, keys, self._left_state, False,
                            outputs)
                self._private_entries += self._install(
                    self._right_state, right_batch, keys
                )
        out = concat_batches(outputs, self.out_width)
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(
                self.name, self.state_factor * self.entry_count
            )
        if self.stats_mode:
            self.in_left += len(left_batch)
            self.in_right += len(right_batch)
            self.out_total += len(out)
            _count_bits(left_batch.bits, self.in_left_per_q)
            _count_bits(right_batch.bits, self.in_right_per_q)
            _count_bits(out.bits, self.out_per_q)
        return self.decorations.apply(out, self.meter)

    def _advance_arranged(self, left_batch, right_batch, outputs):
        """The four-pass advance with arranged sides swapped in.

        Mirrors :meth:`~repro.physical.operators.JoinExec
        ._advance_arranged`: probe left against the *old* right state,
        install left, probe right against the *new* left state, install
        right.  An arranged install is ``advance_to`` on the shared
        index; a private side keeps the columnar probe/install verbatim.
        """
        la = self._left_arranged
        ra = self._right_arranged
        if len(left_batch):
            keys = self._keys(left_batch, self._left_key_idx)
            if ra is not None:
                self._probe_arranged(left_batch, keys, ra, True, outputs)
            else:
                self._probe(left_batch, keys, self._right_state, True,
                            outputs)
            if la is None:
                self._private_entries += self._install(
                    self._left_state, left_batch, keys
                )
        if la is not None:
            la.advance_to(self.left.reader.offset)
        if len(right_batch):
            keys = self._keys(right_batch, self._right_key_idx)
            if la is not None:
                self._probe_arranged(right_batch, keys, la, False, outputs)
            else:
                self._probe(right_batch, keys, self._left_state, False,
                            outputs)
            if ra is None:
                self._private_entries += self._install(
                    self._right_state, right_batch, keys
                )
        if ra is not None:
            ra.advance_to(self.right.reader.offset)

    def _probe_arranged(self, batch, keys, handle, left_side, outputs):
        """Per-delta probe against an arranged side's current version.

        Always scalar: the arrangement's ``key -> {row: net}`` dicts are
        shared with readers at other offsets, so there is no per-reader
        array form to vectorize over.  Emits exactly
        :meth:`_probe_scalar`'s sequence — delta-major, matches in
        insertion order, ``|net|`` copies, output bits the probing
        delta's bits (see the exactness contract in
        :mod:`repro.engine.arrangements`).
        """
        table_get = handle.version.table.get
        rows = batch.rows()
        signs = batch.signs.tolist()
        bits_list = batch.bits.tolist()
        out_rows = []
        out_signs = []
        out_bits = []
        rows_append = out_rows.append
        signs_append = out_signs.append
        bits_append = out_bits.append
        for position, key in enumerate(keys):
            matches = table_get(key)
            if not matches:
                continue
            dbits = bits_list[position]
            if dbits == 0:
                continue
            row = rows[position]
            sign = signs[position]
            for other, entry_net in matches.items():
                if entry_net > 0:
                    out_sign, reps = sign, entry_net
                else:
                    out_sign, reps = -sign, -entry_net
                joined = row + other if left_side else other + row
                if reps == 1:
                    rows_append(joined)
                    signs_append(out_sign)
                    bits_append(dbits)
                else:
                    out_rows.extend([joined] * reps)
                    out_signs.extend([out_sign] * reps)
                    out_bits.extend([dbits] * reps)
        if not out_rows:
            return
        outputs.append(ColumnBatch.from_rows(
            out_rows,
            np.array(out_signs, dtype=np.int64),
            np.array(out_bits, dtype=np.int64),
            self.out_width,
        ))

    @staticmethod
    def _keys(batch, key_idx):
        """Python-typed join keys per row (hash-compatible across sides)."""
        if len(key_idx) == 1:
            return batch.column_values(key_idx[0])
        key_cols = [batch.column_values(i) for i in key_idx]
        return list(zip(*key_cols))

    def _probe(self, batch, keys, state, left_side, outputs):
        if state.live == 0:
            return
        if len(keys) < SCALAR_PROBE_MAX:
            # small batches: the arange/repeat machinery costs more than
            # it saves, so walk the state slots directly (same order)
            self._probe_scalar(batch, keys, state, left_side, outputs)
            return
        index = state.slots
        # resolve each distinct key's match list once; ``flat`` holds the
        # concatenated per-key state indices in insertion order, so the
        # arange/repeat expansion below yields delta-major output with
        # per-delta matches in state insertion order -- exactly the
        # batched path's emission order, with no sort
        slots_get = index.get
        flat = []
        key_column = None
        if len(self._left_key_idx if left_side else self._right_key_idx) == 1:
            idx = (self._left_key_idx if left_side
                   else self._right_key_idx)[0]
            candidate = batch.column(idx)
            if candidate.dtype != object:
                key_column = candidate
        if key_column is not None:
            # single non-object key: resolve each *distinct* key once
            # (the multiplicity-bag regime repeats keys heavily, so the
            # per-delta python resolution loop was the dominant cost);
            # ``inverse`` scatters the per-distinct spans back to
            # delta order, preserving the emission order exactly
            uniq, inverse = np.unique(key_column, return_inverse=True)
            n_uniq = len(uniq)
            u_starts = np.zeros(n_uniq, dtype=np.int64)
            u_lens = np.zeros(n_uniq, dtype=np.int64)
            for j, key in enumerate(uniq.tolist()):
                per_key = slots_get(key)
                if per_key is not None:
                    u_starts[j] = len(flat)
                    u_lens[j] = len(per_key)
                    flat.extend(per_key.values())
            if not flat:
                return
            starts_arr = u_starts[inverse]
            counts = u_lens[inverse]
        else:
            cache = {}
            cache_get = cache.get
            starts = []
            lens = []
            for key in keys:
                entry = cache_get(key)
                if entry is None:
                    per_key = slots_get(key)
                    if per_key is None:
                        entry = (0, 0)
                    else:
                        entry = (len(flat), len(per_key))
                        flat.extend(per_key.values())
                    cache[key] = entry
                starts.append(entry[0])
                lens.append(entry[1])
            if not flat:
                return
            starts_arr = np.asarray(starts, dtype=np.int64)
            counts = np.asarray(lens, dtype=np.int64)
        state_columns, state_bits, state_net = state.materialize()
        total = int(counts.sum())
        delta_idx = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - offsets
        state_idx = np.asarray(flat, dtype=np.int64)[
            np.repeat(starts_arr, counts) + within
        ]
        bits_out = batch.bits[delta_idx] & state_bits[state_idx]
        valid = bits_out != 0
        if not valid.all():
            delta_idx = delta_idx[valid]
            state_idx = state_idx[valid]
            bits_out = bits_out[valid]
        if not len(bits_out):
            return
        net = state_net[state_idx]
        signs_out = np.where(
            net > 0, batch.signs[delta_idx], -batch.signs[delta_idx]
        )
        reps = np.abs(net)
        if not (reps == 1).all():
            delta_idx = np.repeat(delta_idx, reps)
            state_idx = np.repeat(state_idx, reps)
            bits_out = np.repeat(bits_out, reps)
            signs_out = np.repeat(signs_out, reps)
        # emit an index view instead of gathering every column: the
        # state arrays and ``rows_raw`` are append-only snapshots
        # (growth concatenates into fresh arrays, compaction reassigns),
        # so the view stays valid after this advance, and only the
        # columns a downstream consumer actually reads materialize
        own = (batch, None, delta_idx)
        other = (state_columns, state.rows_raw, state_idx)
        parts = (own, other) if left_side else (other, own)
        outputs.append(ColumnBatch.from_gather(
            parts, signs_out, bits_out, self.out_width,
        ))

    def _probe_scalar(self, batch, keys, state, left_side, outputs):
        """Per-delta probe for small batches (no arrays touched).

        Emits exactly the vectorized path's sequence: delta-major, per
        delta the matches in state insertion order, ``|net|`` copies
        each, zero-bit pairs dropped.
        """
        slots_get = state.slots.get
        net = state.net
        rows = batch.rows()
        signs = batch.signs.tolist()
        bits_list = batch.bits.tolist()
        out_rows = []
        out_signs = []
        out_bits = []
        rows_append = out_rows.append
        signs_append = out_signs.append
        bits_append = out_bits.append
        for position, key in enumerate(keys):
            per_key = slots_get(key)
            if per_key is None:
                continue
            row = rows[position]
            sign = signs[position]
            dbits = bits_list[position]
            # the slot key carries (row, bits) directly; only the net
            # lives behind the index, so hits cost one list lookup each
            for (other, sbits), idx in per_key.items():
                joined_bits = dbits & sbits
                if joined_bits == 0:
                    continue
                entry_net = net[idx]
                if entry_net > 0:
                    out_sign, reps = sign, entry_net
                else:
                    out_sign, reps = -sign, -entry_net
                joined = row + other if left_side else other + row
                if reps == 1:
                    rows_append(joined)
                    signs_append(out_sign)
                    bits_append(joined_bits)
                else:
                    out_rows.extend([joined] * reps)
                    out_signs.extend([out_sign] * reps)
                    out_bits.extend([joined_bits] * reps)
        if not out_rows:
            return
        # row-backed output: the (wide) joined columns materialize only
        # if a downstream operator actually reads them
        outputs.append(ColumnBatch.from_rows(
            out_rows,
            np.array(out_signs, dtype=np.int64),
            np.array(out_bits, dtype=np.int64),
            self.out_width,
        ))

    @staticmethod
    def _install(state, batch, keys):
        rows = batch.rows()
        signs = batch.signs.tolist()
        bits_list = batch.bits.tolist()
        slots = state.slots
        net = state.net
        materialized = state.materialized
        net_dirty = state.net_dirty
        entries = 0
        live = 0
        slots_get = slots.get
        net_append = net.append
        rows_append = state.rows_raw.append
        bits_append = state.bits_raw.append
        for key, row, sign, bit in zip(keys, rows, signs, bits_list):
            per_key = slots_get(key)
            if per_key is None:
                per_key = slots[key] = {}
            slot = (row, bit)
            idx = per_key.get(slot)
            if idx is None:
                per_key[slot] = len(net)
                net_append(sign)
                rows_append(row)
                bits_append(bit)
                entries += 1
                live += 1
            else:
                # stored nets are never 0 (empty slots are removed), so
                # a +-1 step either moves the net or empties the slot;
                # reinsertion later lands at the key's tail like dict
                # insertion order in the batched tables
                updated = net[idx] + sign
                net[idx] = updated
                if idx < materialized:
                    net_dirty.append(idx)
                if updated == 0:
                    del per_key[slot]
                    if not per_key:
                        del slots[key]
                    entries -= 1
                    live -= 1
                    state.dead += 1
        state.live += live
        # bound dead-slot waste: once retracted slots outnumber live
        # ones (with a floor so tiny states never thrash), rebuild
        if state.dead > 32 and state.dead >= state.live:
            state.compact()
        return entries

    def state_size(self):
        """Net stored entries (both sides); used by tests and diagnostics."""
        total = 0
        for state in (self._left_state, self._right_state):
            for per_key in state.slots.values():
                for idx in per_key.values():
                    total += abs(state.net[idx])
        for handle in (self._left_arranged, self._right_arranged):
            if handle is not None:
                total += sum(
                    abs(n)
                    for m in handle.version.table.values()
                    for n in m.values()
                )
        return total


# -- aggregate ---------------------------------------------------------------


class _ColumnarAggArtifacts:
    """Vector input closures and group-column indices (shareable)."""

    __slots__ = ("input_fns", "group_indexes", "child_width")

    def __init__(self, node):
        child_schema = node.children[0].out_schema
        self.child_width = len(child_schema)
        self.input_fns = tuple(
            compile_columnar(spec.expr, child_schema) for spec in node.aggs
        )
        if node.group_by:
            self.group_indexes = tuple(
                child_schema.index_of(name) for name in node.group_by
            )
        else:
            self.group_indexes = None


#: reduceat is used only when segment sums are provably exact: integral
#: values bounded so every partial sum stays under 2**53 regardless of
#: association order (values <= 2**31, at most 2**20 of them per batch)
_EXACT_VALUE_BOUND = float(1 << 31)
_EXACT_COUNT_BOUND = 1 << 20


def _reduceat_exact(arr):
    dtype = arr.dtype
    if dtype == np.int64 or dtype == np.bool_:
        return True
    if dtype != np.float64:
        return False
    if arr.size == 0:
        return True
    if arr.size > _EXACT_COUNT_BOUND:
        return False
    peak = np.abs(arr).max()
    if not peak <= _EXACT_VALUE_BOUND:  # NaN/inf fail this comparison
        return False
    return bool((arr == np.floor(arr)).all())


class ColumnarAggregateExec(AggregateExec):
    """Columnar twin of :class:`~repro.physical.operators.AggregateExec`.

    Absorption is vectorized (per-query row selection by bit test,
    stable sort by group code, segment reduction per aggregate);
    emission reuses the batched ``_emit_batched`` verbatim, so emission
    coalescing, ordering and state-count bookkeeping are shared code.
    SUM/AVG use ``np.add.reduceat`` only while every input batch has
    been exact-summable (ints / bounded integral floats); the first
    batch that is not flips the spec to the reference's sequential
    per-delta arithmetic forever, keeping state values -- and therefore
    emission decisions and work charges -- bit-identical to the batched
    path.  MIN/MAX always runs sequentially per segment because its
    rescan work charges depend on per-delta order.
    """

    def __init__(self, node, child, subplan_mask, meter, stats_mode=False,
                 state_factor=0.0):
        AggregateExec.__init__(
            self, node, child, subplan_mask, meter, stats_mode,
            state_factor=state_factor,
        )
        artifacts = cached_artifacts(
            ("cagg", node.uid), lambda: _ColumnarAggArtifacts(node)
        )
        self._vec_input_fns = artifacts.input_fns
        self._group_indexes = artifacts.group_indexes
        self._child_width = artifacts.child_width
        if stats_mode or not fusion_active() or not self._vec_input_fns:
            self._fused_inputs = None
        else:
            self._fused_inputs = fused_aggregate_inputs(node)
        self._exact_ok = [True] * len(self.specs)

    def reset(self):
        AggregateExec.reset(self)
        self._exact_ok = [True] * len(self.specs)

    def advance(self):
        batch = as_columns(self.child.advance(), self._child_width)
        n = len(batch)
        self.meter.charge_input(self.name, n)
        if self.stats_mode:
            self.in_total += n
            _count_bits(batch.bits, self.in_per_q)
            self.in_deletes += int((batch.signs < 0).sum())
        if n:
            self._absorb_columns(batch)
        out = self._emit_batched()
        self.meter.charge_output(self.name, len(out))
        if self.state_factor:
            self.meter.charge_state(
                self.name, self.state_factor * self.state_count
            )
        if self.stats_mode:
            self.out_total += len(out)
        return self.decorations.apply(out, self.meter)

    def _absorb_columns(self, batch):
        n = len(batch)
        masked = batch.bits & self.subplan_mask
        keep = masked != 0
        if not keep.all():
            # rows no query wants only "touch" their group in the
            # batched path, which is observably a no-op (state carried
            # across emissions always re-emits identically)
            indices = np.flatnonzero(keep)
            batch = batch.take(indices)
            masked = masked[indices]
            n = len(batch)
            if n == 0:
                return
        codes, keys = self._group_codes(batch, n)
        touched_add = self._touched.add
        for key in keys:
            touched_add(key)

        fused_inputs = self._fused_inputs
        if fused_inputs is not None:
            input_arrays = fused_inputs(batch, n)
        else:
            input_arrays = [
                _materialize(fn(batch), n) for fn in self._vec_input_fns
            ]
        plists = []
        vec_ok = []
        kinds = self._spec_kinds
        for si, arr in enumerate(input_arrays):
            kind = kinds[si]
            if kind == 3:
                vec_ok.append(False)
            elif self._exact_ok[si]:
                exact = _reduceat_exact(arr)
                if not exact:
                    self._exact_ok[si] = False
                vec_ok.append(exact)
            else:
                vec_ok.append(False)
            plists.append(None)

        groups = self.groups
        specs = self.specs
        meter = self.meter
        name = self.name
        state_count = self.state_count
        signs = batch.signs
        union = int(np.bitwise_or.reduce(masked))
        for qid in qids_of(union):
            bit = 1 << qid
            selected = np.flatnonzero((masked & bit) != 0)
            if not selected.size:
                continue
            group_codes = codes[selected]
            order = np.argsort(group_codes, kind="stable")
            take = selected[order]
            sorted_codes = group_codes[order]
            if sorted_codes.size == 1:
                starts = np.zeros(1, dtype=np.int64)
            else:
                boundaries = np.flatnonzero(
                    sorted_codes[1:] != sorted_codes[:-1]
                ) + 1
                starts = np.concatenate(
                    (np.zeros(1, dtype=np.int64), boundaries)
                )
            sorted_signs = signs[take]
            contribs = np.add.reduceat(sorted_signs, starts).tolist()
            seg_codes = sorted_codes[starts].tolist()
            take_list = None
            signs_list = None

            spec_data = []
            for si, kind in enumerate(kinds):
                if kind == 1:
                    spec_data.append(None)  # count: contribs already has it
                elif vec_ok[si]:
                    values = input_arrays[si][take]
                    if values.dtype == np.bool_:
                        values = values.astype(np.int64)
                    seg = np.add.reduceat(values * sorted_signs, starts)
                    spec_data.append(seg.tolist())
                else:
                    plist = plists[si]
                    if plist is None:
                        plist = plists[si] = input_arrays[si].tolist()
                    if take_list is None:
                        take_list = take.tolist()
                        signs_list = sorted_signs.tolist()
                    spec_data.append(plist)

            seg_count = len(seg_codes)
            ends = starts[1:].tolist() + [len(take)]
            starts_list = starts.tolist()
            for s in range(seg_count):
                key = keys[seg_codes[s]]
                per_query = groups.get(key)
                if per_query is None:
                    per_query = groups[key] = {}
                state = per_query.get(qid)
                if state is None:
                    state = per_query[qid] = _GroupQueryState(specs)
                    state_count += 1
                state.contributions += contribs[s]
                states = state.states
                for si, kind in enumerate(kinds):
                    st = states[si]
                    data = spec_data[si]
                    if kind == 1:
                        st.count += contribs[s]
                    elif kind == 0:
                        if vec_ok[si]:
                            st.value += data[s]
                        else:
                            value = st.value
                            for j in range(starts_list[s], ends[s]):
                                v = data[take_list[j]]
                                value += v if signs_list[j] == 1 else -v
                            st.value = value
                    elif kind == 2:
                        if vec_ok[si]:
                            count = st.count + contribs[s]
                            st.count = count
                            if count == 0:
                                st.total = 0
                                st.compensation = 0.0
                            else:
                                value = data[s]
                                total = st.total
                                if type(total) is int and type(value) is int:
                                    st.total = total + value
                                else:
                                    new_total = total + value
                                    if abs(total) >= abs(value):
                                        st.compensation += (
                                            (total - new_total) + value
                                        )
                                    else:
                                        st.compensation += (
                                            (value - new_total) + total
                                        )
                                    st.total = new_total
                        else:
                            for j in range(starts_list[s], ends[s]):
                                st.update(
                                    data[take_list[j]], signs_list[j],
                                    meter, name,
                                )
                    else:
                        # MIN/MAX: sequential in original delta order so
                        # rescan charges match the batched path exactly
                        for j in range(starts_list[s], ends[s]):
                            st.update(
                                data[take_list[j]], signs_list[j],
                                meter, name,
                            )
        self.state_count = state_count

    def _group_codes(self, batch, n):
        """(codes array, distinct key tuples) with first-seen stability."""
        indexes = self._group_indexes
        if indexes is None:
            return np.zeros(n, dtype=np.int64), [()]
        if len(indexes) == 1:
            column = batch.column(indexes[0])
            if column.dtype != object:
                uniques, inverse = np.unique(column, return_inverse=True)
                keys = [(value,) for value in uniques.tolist()]
                return inverse.astype(np.int64, copy=False), keys
            values = column.tolist()
            keys = []
            mapping = {}
            codes = np.empty(n, dtype=np.int64)
            for i, value in enumerate(values):
                code = mapping.get(value)
                if code is None:
                    code = mapping[value] = len(keys)
                    keys.append((value,))
                codes[i] = code
            return codes, keys
        value_lists = [batch.column_values(i) for i in indexes]
        rows = list(zip(*value_lists))
        keys = []
        mapping = {}
        codes = np.empty(n, dtype=np.int64)
        for i, row in enumerate(rows):
            code = mapping.get(row)
            if code is None:
                code = mapping[row] = len(keys)
                keys.append(row)
            codes[i] = code
        return codes, keys
