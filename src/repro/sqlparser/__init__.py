"""SQL subset frontend: lexer, recursive-descent parser, plan lowering."""

from .lexer import tokenize, Token
from .parser import parse_sql, Parser
from .lower import lower_select, parse_query

__all__ = ["tokenize", "Token", "parse_sql", "Parser", "lower_select", "parse_query"]
