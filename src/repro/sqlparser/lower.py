"""Lowering: SQL AST -> logical plans.

The lowering targets the engine's operator set directly: FROM/JOIN build
the join tree, WHERE becomes a select, GROUP BY + aggregate select items
become an aggregate (with a pre-projection when grouping keys or
aggregate inputs are computed expressions), HAVING becomes a select above
the aggregate, and the SELECT list becomes the final projection.
"""

from ..errors import ParseError
from ..logical.builder import PlanBuilder
from ..relational.expressions import (
    AggSpec,
    And,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Contains,
    InList,
    Not,
    Or,
    StartsWith,
)
from .ast import (
    AggCall,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    InExpr,
    JoinSource,
    LikeExpr,
    Literal,
    SubquerySource,
    TableSource,
    UnaryExpr,
)


def lower_select(catalog, statement):
    """Lower a parsed SELECT into a logical plan (returns the root op)."""
    builder = _lower_source(catalog, statement.source)
    if statement.where is not None:
        builder = builder.where(_lower_scalar(statement.where))

    agg_items = [item for item in statement.items if isinstance(item.expr, AggCall)]
    if agg_items or statement.group_by:
        builder = _lower_aggregate(builder, statement)
        if statement.having is not None:
            builder = builder.where(_lower_scalar(statement.having))
    else:
        if statement.having is not None:
            raise ParseError("HAVING without aggregation")
        exprs = []
        for position, item in enumerate(statement.items):
            alias = item.alias or _default_alias(item.expr, position)
            exprs.append((alias, _lower_scalar(item.expr)))
        builder = builder.project(exprs)
    return builder.build()


def parse_query(catalog, text, query_id, name):
    """Parse + lower + wrap into a :class:`~repro.logical.ops.Query`."""
    from .parser import parse_sql

    statement = parse_sql(text)
    root = lower_select(catalog, statement)
    return PlanBuilder.wrap(root).as_query(query_id, name)


def _lower_source(catalog, source):
    if isinstance(source, TableSource):
        return PlanBuilder.scan(catalog, source.name)
    if isinstance(source, SubquerySource):
        return PlanBuilder.wrap(lower_select(catalog, source.query))
    if isinstance(source, JoinSource):
        left = _lower_source(catalog, source.left)
        right = _lower_source(catalog, source.right)
        return left.join(right, [source.left_key], [source.right_key])
    raise ParseError("unknown source %r" % (source,))


def _lower_aggregate(builder, statement):
    group_by = list(statement.group_by)
    schema = builder.schema
    # computed aggregate inputs are fine (AggSpec takes expressions);
    # grouping keys must be existing columns of the child
    for key in group_by:
        if not schema.has(key):
            raise ParseError("GROUP BY column %r not in input" % key)
    aggs = []
    out_names = set(group_by)
    for position, item in enumerate(statement.items):
        expr = item.expr
        if isinstance(expr, AggCall):
            alias = item.alias or "%s_%d" % (expr.func, position)
            if alias in out_names:
                raise ParseError("duplicate output column %r" % alias)
            out_names.add(alias)
            argument = (
                _lower_scalar(expr.argument) if expr.argument is not None else None
            )
            aggs.append(AggSpec(expr.func, argument, alias))
        elif isinstance(expr, ColumnRef):
            if expr.name not in group_by:
                raise ParseError(
                    "non-aggregate select item %r must appear in GROUP BY" % expr.name
                )
        else:
            raise ParseError(
                "select items under GROUP BY must be columns or aggregates"
            )
    if not aggs:
        raise ParseError("GROUP BY without aggregate select items")
    return builder.aggregate(group_by, aggs)


def _default_alias(expr, position):
    if isinstance(expr, ColumnRef):
        return expr.name
    return "col_%d" % position


def _lower_scalar(expr):
    if isinstance(expr, Literal):
        return Const(expr.value)
    if isinstance(expr, ColumnRef):
        return Col(expr.name)
    if isinstance(expr, BinaryExpr):
        left = _lower_scalar(expr.left)
        right = _lower_scalar(expr.right)
        if expr.op == "and":
            return And(left, right)
        if expr.op == "or":
            return Or(left, right)
        if expr.op in ("==", "!=", "<", "<=", ">", ">="):
            return Comparison(expr.op, left, right)
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryExpr):
        if expr.op == "not":
            return Not(_lower_scalar(expr.child))
        raise ParseError("unknown unary operator %r" % expr.op)
    if isinstance(expr, InExpr):
        lowered = InList(_lower_scalar(expr.child), expr.values)
        return Not(lowered) if expr.negated else lowered
    if isinstance(expr, BetweenExpr):
        child = _lower_scalar(expr.child)
        return And(
            Comparison(">=", child, _lower_scalar(expr.low)),
            Comparison("<=", child, _lower_scalar(expr.high)),
        )
    if isinstance(expr, LikeExpr):
        lowered = _lower_like(expr)
        return Not(lowered) if expr.negated else lowered
    if isinstance(expr, AggCall):
        raise ParseError("aggregate call outside SELECT list")
    raise ParseError("cannot lower expression %r" % (expr,))


def _lower_like(expr):
    pattern = expr.pattern
    child = _lower_scalar(expr.child)
    if pattern.endswith("%") and "%" not in pattern[:-1] and "_" not in pattern:
        return StartsWith(child, pattern[:-1])
    if (
        pattern.startswith("%")
        and pattern.endswith("%")
        and "%" not in pattern[1:-1]
        and "_" not in pattern
    ):
        return Contains(child, pattern[1:-1])
    if "%" not in pattern and "_" not in pattern:
        return Comparison("==", child, Const(pattern))
    raise ParseError(
        "unsupported LIKE pattern %r (prefix%% and %%infix%% only)" % pattern
    )
