"""Tokenizer for the SQL subset.

Token kinds: keywords (case-insensitive), identifiers, numbers, strings,
operators and punctuation.  Positions are tracked for error messages.
"""

from ..errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS", "JOIN", "ON",
    "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "SUM", "COUNT", "AVG",
    "MIN", "MAX", "TRUE", "FALSE", "NULL",
}

#: multi-character operators first so maximal munch works
OPERATORS = ("<=", ">=", "<>", "!=", "==", "=", "<", ">", "+", "-", "*", "/",
             "(", ")", ",", ".")


class Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind  # "keyword" | "ident" | "number" | "string" | "op" | "eof"
        self.value = value
        self.position = position

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(text):
    """Tokenize ``text``; raises :class:`~repro.errors.ParseError`."""
    tokens = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "-" and text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = text.find("'", index + 1)
            if end < 0:
                raise ParseError("unterminated string literal", index)
            tokens.append(Token("string", text[index + 1:end], index))
            index = end + 1
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length and text[index + 1].isdigit()):
            start = index
            seen_dot = False
            while index < length and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
                if text[index] == ".":
                    # don't swallow a dot that is qualification (e.g. t.col)
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            literal = text[start:index]
            value = float(literal) if "." in literal else int(literal)
            tokens.append(Token("number", value, start))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] in "_#"):
                index += 1
            word = text[start:index]
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper(), start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        for op in OPERATORS:
            if text.startswith(op, index):
                tokens.append(Token("op", op, index))
                index += len(op)
                break
        else:
            raise ParseError("unexpected character %r" % ch, index)
    tokens.append(Token("eof", None, length))
    return tokens
