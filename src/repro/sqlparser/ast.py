"""AST for the SQL subset.

The grammar covers the shape of the paper's workload queries::

    SELECT item [, item ...]
    FROM source [JOIN source ON col = col ...]
    [WHERE predicate]
    [GROUP BY col [, col ...]]
    [HAVING predicate]

where a *source* is a table name or a parenthesized subquery with an
alias, and *items* are expressions (optionally aliased) or aggregate
calls ``SUM/COUNT/AVG/MIN/MAX``.
"""


class SelectStmt:
    __slots__ = ("items", "source", "where", "group_by", "having")

    def __init__(self, items, source, where=None, group_by=(), having=None):
        self.items = items          # list of SelectItem
        self.source = source        # TableSource | SubquerySource | JoinSource
        self.where = where          # expression AST or None
        self.group_by = tuple(group_by)
        self.having = having

    def __repr__(self):
        return "SelectStmt(%d items)" % len(self.items)


class SelectItem:
    __slots__ = ("expr", "alias")

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias

    def __repr__(self):
        return "SelectItem(%r AS %r)" % (self.expr, self.alias)


class TableSource:
    __slots__ = ("name", "alias")

    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias

    def __repr__(self):
        return "TableSource(%r)" % self.name


class SubquerySource:
    __slots__ = ("query", "alias")

    def __init__(self, query, alias):
        self.query = query
        self.alias = alias

    def __repr__(self):
        return "SubquerySource(%r)" % self.alias


class JoinSource:
    __slots__ = ("left", "right", "left_key", "right_key")

    def __init__(self, left, right, left_key, right_key):
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def __repr__(self):
        return "JoinSource(%s = %s)" % (self.left_key, self.right_key)


# -- expression AST --------------------------------------------------------------

class ColumnRef:
    __slots__ = ("qualifier", "name")

    def __init__(self, name, qualifier=None):
        self.qualifier = qualifier
        self.name = name

    def __repr__(self):
        if self.qualifier:
            return "ColumnRef(%s.%s)" % (self.qualifier, self.name)
        return "ColumnRef(%s)" % self.name


class Literal:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Literal(%r)" % (self.value,)


class BinaryExpr:
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return "BinaryExpr(%r)" % self.op


class UnaryExpr:
    __slots__ = ("op", "child")

    def __init__(self, op, child):
        self.op = op
        self.child = child


class InExpr:
    __slots__ = ("child", "values", "negated")

    def __init__(self, child, values, negated=False):
        self.child = child
        self.values = tuple(values)
        self.negated = negated


class BetweenExpr:
    __slots__ = ("child", "low", "high")

    def __init__(self, child, low, high):
        self.child = child
        self.low = low
        self.high = high


class LikeExpr:
    __slots__ = ("child", "pattern", "negated")

    def __init__(self, child, pattern, negated=False):
        self.child = child
        self.pattern = pattern
        self.negated = negated


class AggCall:
    __slots__ = ("func", "argument")

    def __init__(self, func, argument):
        self.func = func            # "sum" | "count" | "avg" | "min" | "max"
        self.argument = argument    # expression AST or None for COUNT(*)

    def __repr__(self):
        return "AggCall(%s)" % self.func
