"""Recursive-descent parser for the SQL subset."""

from ..errors import ParseError
from .ast import (
    AggCall,
    BetweenExpr,
    BinaryExpr,
    ColumnRef,
    InExpr,
    JoinSource,
    LikeExpr,
    Literal,
    SelectItem,
    SelectStmt,
    SubquerySource,
    TableSource,
    UnaryExpr,
)
from .lexer import tokenize

_AGG_KEYWORDS = {"SUM": "sum", "COUNT": "count", "AVG": "avg", "MIN": "min", "MAX": "max"}

_COMPARISONS = {"=": "==", "==": "==", "<>": "!=", "!=": "!=",
                "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Parser:
    def __init__(self, text):
        self.tokens = tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def at_keyword(self, *words):
        token = self.peek()
        return token.kind == "keyword" and token.value in words

    def accept_keyword(self, *words):
        if self.at_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word):
        token = self.advance()
        if token.kind != "keyword" or token.value != word:
            raise ParseError("expected %s, got %r" % (word, token.value), token.position)
        return token

    def at_op(self, *ops):
        token = self.peek()
        return token.kind == "op" and token.value in ops

    def accept_op(self, *ops):
        if self.at_op(*ops):
            return self.advance()
        return None

    def expect_op(self, op):
        token = self.advance()
        if token.kind != "op" or token.value != op:
            raise ParseError("expected %r, got %r" % (op, token.value), token.position)
        return token

    def expect_ident(self):
        token = self.advance()
        if token.kind != "ident":
            raise ParseError("expected identifier, got %r" % (token.value,), token.position)
        return token.value

    # -- statements ------------------------------------------------------------

    def parse_select(self):
        self.expect_keyword("SELECT")
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        source = self.parse_source()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_name())
            while self.accept_op(","):
                group_by.append(self.parse_column_name())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expression()
        return SelectStmt(items, source, where, group_by, having)

    def parse_select_item(self):
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_column_name(self):
        name = self.expect_ident()
        if self.accept_op("."):
            name = self.expect_ident()  # qualifier dropped; columns are unique
        return name

    # -- sources -----------------------------------------------------------------

    def parse_source(self):
        source = self.parse_source_primary()
        while self.accept_keyword("JOIN"):
            right = self.parse_source_primary()
            self.expect_keyword("ON")
            left_key = self.parse_column_name()
            self.expect_op("=")
            right_key = self.parse_column_name()
            source = JoinSource(source, right, left_key, right_key)
        return source

    def parse_source_primary(self):
        if self.accept_op("("):
            query = self.parse_select()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias = self.expect_ident()
            return SubquerySource(query, alias)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.advance().value
        return TableSource(name, alias)

    # -- expressions (precedence climbing) ------------------------------------------

    def parse_expression(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = BinaryExpr("or", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = BinaryExpr("and", left, self.parse_not())
        return left

    def parse_not(self):
        if self.accept_keyword("NOT"):
            return UnaryExpr("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "op" and token.value in _COMPARISONS:
            self.advance()
            return BinaryExpr(_COMPARISONS[token.value], left, self.parse_additive())
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            self.expect_op("(")
            values = [self.parse_literal_value()]
            while self.accept_op(","):
                values.append(self.parse_literal_value())
            self.expect_op(")")
            return InExpr(left, values, negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            expr = BetweenExpr(left, low, high)
            return UnaryExpr("not", expr) if negated else expr
        if self.accept_keyword("LIKE"):
            pattern = self.advance()
            if pattern.kind != "string":
                raise ParseError("LIKE needs a string pattern", pattern.position)
            return LikeExpr(left, pattern.value, negated)
        if negated:
            raise ParseError("dangling NOT", token.position)
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while True:
            token = self.accept_op("+", "-")
            if not token:
                return left
            left = BinaryExpr(token.value, left, self.parse_multiplicative())

    def parse_multiplicative(self):
        left = self.parse_primary()
        while True:
            token = self.accept_op("*", "/")
            if not token:
                return left
            left = BinaryExpr(token.value, left, self.parse_primary())

    def parse_literal_value(self):
        token = self.advance()
        if token.kind in ("number", "string"):
            return token.value
        raise ParseError("expected a literal, got %r" % (token.value,), token.position)

    def parse_primary(self):
        token = self.peek()
        if token.kind == "op" and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        if token.kind == "op" and token.value == "-":
            self.advance()
            return BinaryExpr("-", Literal(0), self.parse_primary())
        if token.kind == "number" or token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "keyword" and token.value in _AGG_KEYWORDS:
            self.advance()
            self.expect_op("(")
            if self.accept_op("*"):
                argument = None
            else:
                argument = self.parse_expression()
            self.expect_op(")")
            return AggCall(_AGG_KEYWORDS[token.value], argument)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return Literal(token.value == "TRUE")
        if token.kind == "ident":
            self.advance()
            if self.accept_op("."):
                return ColumnRef(self.expect_ident(), qualifier=token.value)
            return ColumnRef(token.value)
        raise ParseError("unexpected token %r" % (token.value,), token.position)


def parse_sql(text):
    """Parse one SELECT statement; raises :class:`~repro.errors.ParseError`."""
    parser = Parser(text)
    statement = parser.parse_select()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError("trailing input %r" % (trailing.value,), trailing.position)
    return statement
