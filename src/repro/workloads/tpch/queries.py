"""The 22 TPC-H-class queries over the engine's shared operator set.

Each query is expressed with scan / select / project / inner equi-join /
group-by aggregate -- the operators the paper's shared execution engine
supports (section 2.3).  ORDER BY / LIMIT / outer joins / EXISTS are
rewritten or dropped (documented in DESIGN.md); they do not affect the
work accounting of the shared pipeline.

Join chains are built from canonical building blocks (consistent join
order and keys) so structurally identical sub-expressions across queries
get identical signatures -- the role a join-order-normalizing MQO
optimizer plays for the paper's prototype.  The paper's sharing-friendly
subset (section 5.3) is exported as :data:`SHARING_FRIENDLY`.
"""

from ...logical.builder import PlanBuilder
from ...relational.expressions import (
    Const,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    col,
    contains,
    starts_with,
)
from .schema import date_of

#: extended price net of discount -- the TPC-H "revenue" expression
REVENUE = col("l_extendedprice") * (1 - col("l_discount"))

#: order year for per-year group-bys (float-floored whole years)
O_YEAR = col("o_orderdate") // 365.25 + 1992


# -- canonical join building blocks ------------------------------------------
# Consistent construction order means identical sub-expressions across
# queries share structure signatures.

def _orders_lineitem(catalog):
    """orders |X| lineitem on the order key."""
    return PlanBuilder.scan(catalog, "orders").join(
        PlanBuilder.scan(catalog, "lineitem"), "o_orderkey", "l_orderkey"
    )


def _customer_orders_lineitem(catalog):
    """customer |X| (orders |X| lineitem)."""
    return PlanBuilder.scan(catalog, "customer").join(
        _orders_lineitem(catalog), "c_custkey", "o_custkey"
    )


def _col_supplier(catalog):
    """(customer |X| orders |X| lineitem) |X| supplier."""
    return _customer_orders_lineitem(catalog).join(
        PlanBuilder.scan(catalog, "supplier"), "l_suppkey", "s_suppkey"
    )


def _cols_nation(catalog):
    """... |X| nation on the supplier's nation."""
    return _col_supplier(catalog).join(
        PlanBuilder.scan(catalog, "nation"), "s_nationkey", "n_nationkey"
    )


def _cols_nation_region(catalog):
    """... |X| region."""
    return _cols_nation(catalog).join(
        PlanBuilder.scan(catalog, "region"), "n_regionkey", "r_regionkey"
    )


def _orders_lineitem_supplier(catalog):
    """(orders |X| lineitem) |X| supplier (no customer)."""
    return _orders_lineitem(catalog).join(
        PlanBuilder.scan(catalog, "supplier"), "l_suppkey", "s_suppkey"
    )


def _lineitem_part(catalog):
    """lineitem |X| part."""
    return PlanBuilder.scan(catalog, "lineitem").join(
        PlanBuilder.scan(catalog, "part"), "l_partkey", "p_partkey"
    )


def _partsupp_supplier_nation(catalog):
    """partsupp |X| supplier |X| nation."""
    return (
        PlanBuilder.scan(catalog, "partsupp")
        .join(PlanBuilder.scan(catalog, "supplier"), "ps_suppkey", "s_suppkey")
        .join(PlanBuilder.scan(catalog, "nation"), "s_nationkey", "n_nationkey")
    )


def _supplier_revenue(catalog, date_lo, months=3):
    """The Q15 revenue view: per-supplier revenue over a 3-month window."""
    date_hi = date_lo + int(months * 30.44)
    return (
        PlanBuilder.scan(catalog, "lineitem")
        .where((col("l_shipdate") >= date_lo) & (col("l_shipdate") < date_hi))
        .aggregate(["l_suppkey"], [agg_sum(REVENUE, "total_revenue")])
    )


# -- the queries ---------------------------------------------------------------

def q1(catalog):
    """Pricing summary report."""
    return (
        PlanBuilder.scan(catalog, "lineitem")
        .where(col("l_shipdate") <= date_of(1998, 9, 2))
        .aggregate(
            ["l_returnflag", "l_linestatus"],
            [
                agg_sum(col("l_quantity"), "sum_qty"),
                agg_sum(col("l_extendedprice"), "sum_base_price"),
                agg_sum(REVENUE, "sum_disc_price"),
                agg_avg(col("l_quantity"), "avg_qty"),
                agg_count("count_order"),
            ],
        )
    )


def q2(catalog):
    """Minimum cost supplier (min aggregate over the partsupp chain)."""
    return (
        _partsupp_supplier_nation(catalog)
        .join(PlanBuilder.scan(catalog, "region"), "n_regionkey", "r_regionkey")
        .where(col("r_name") == "EUROPE")
        .join(PlanBuilder.scan(catalog, "part"), "ps_partkey", "p_partkey")
        .where((col("p_size") <= 15) & contains(col("p_type"), "BRASS"))
        .aggregate(["p_partkey"], [agg_min(col("ps_supplycost"), "min_cost")])
    )


def q3(catalog):
    """Shipping priority: unshipped orders of one market segment."""
    return (
        _customer_orders_lineitem(catalog)
        .where(
            (col("c_mktsegment") == "BUILDING")
            & (col("o_orderdate") < date_of(1995, 3, 15))
            & (col("l_shipdate") > date_of(1995, 3, 15))
        )
        .aggregate(
            ["l_orderkey", "o_orderdate"], [agg_sum(REVENUE, "revenue")]
        )
    )


def q4(catalog):
    """Order priority checking (EXISTS rewritten as a join + count)."""
    return (
        _orders_lineitem(catalog)
        .where(
            (col("o_orderdate") >= date_of(1993, 7, 1))
            & (col("o_orderdate") < date_of(1993, 10, 1))
            & (col("l_commitdate") < col("l_receiptdate"))
        )
        .aggregate(["o_orderpriority"], [agg_count("order_count")])
    )


def q5(catalog):
    """Local supplier volume within one region and year."""
    return (
        _cols_nation_region(catalog)
        .where(
            (col("r_name") == "ASIA")
            & (col("o_orderdate") >= date_of(1994, 1, 1))
            & (col("o_orderdate") < date_of(1995, 1, 1))
        )
        .aggregate(["n_name"], [agg_sum(REVENUE, "revenue")])
    )


def q6(catalog):
    """Forecasting revenue change (single-table selective aggregate)."""
    return (
        PlanBuilder.scan(catalog, "lineitem")
        .where(
            (col("l_shipdate") >= date_of(1994, 1, 1))
            & (col("l_shipdate") < date_of(1995, 1, 1))
            & (col("l_discount") >= 0.05)
            & (col("l_discount") <= 0.07)
            & (col("l_quantity") < 24)
        )
        .aggregate([], [agg_sum(col("l_extendedprice") * col("l_discount"), "revenue")])
    )


def q7(catalog):
    """Volume shipping between two nations, by year."""
    return (
        _cols_nation(catalog)
        .where(
            col("n_name").isin(["FRANCE", "GERMANY"])
            & (col("l_shipdate") >= date_of(1995, 1, 1))
            & (col("l_shipdate") <= date_of(1996, 12, 31))
        )
        .project(
            [
                ("supp_nation", col("n_name")),
                ("l_year", col("l_shipdate") // 365.25 + 1992),
                ("volume", REVENUE),
            ]
        )
        .aggregate(["supp_nation", "l_year"], [agg_sum(col("volume"), "revenue")])
    )


def q8(catalog):
    """National market share within a region, by year."""
    return (
        _cols_nation_region(catalog)
        .join(PlanBuilder.scan(catalog, "part"), "l_partkey", "p_partkey")
        .where(
            (col("r_name") == "AMERICA")
            & (col("o_orderdate") >= date_of(1995, 1, 1))
            & (col("o_orderdate") <= date_of(1996, 12, 31))
            & contains(col("p_type"), "ECONOMY")
        )
        .project(
            [
                ("o_year", O_YEAR),
                ("volume", REVENUE),
                ("brazil_volume", (col("n_name") == "BRAZIL") * REVENUE),
            ]
        )
        .aggregate(
            ["o_year"],
            [
                agg_sum(col("brazil_volume"), "nation_volume"),
                agg_sum(col("volume"), "total_volume"),
            ],
        )
    )


def q9(catalog):
    """Product type profit measure, by nation and year."""
    return (
        _orders_lineitem_supplier(catalog)
        .join(PlanBuilder.scan(catalog, "part"), "l_partkey", "p_partkey")
        .join(PlanBuilder.scan(catalog, "nation"), "s_nationkey", "n_nationkey")
        .where(contains(col("p_type"), "STANDARD"))
        .project(
            [
                ("nation", col("n_name")),
                ("o_year", O_YEAR),
                ("amount", REVENUE - 0.4 * col("l_quantity") * col("p_retailprice") / 10),
            ]
        )
        .aggregate(["nation", "o_year"], [agg_sum(col("amount"), "sum_profit")])
    )


def q10(catalog):
    """Returned item reporting: lost revenue per customer."""
    return (
        _customer_orders_lineitem(catalog)
        .where(
            (col("l_returnflag") == "R")
            & (col("o_orderdate") >= date_of(1993, 10, 1))
            & (col("o_orderdate") < date_of(1994, 1, 1))
        )
        .aggregate(["c_custkey", "c_nationkey"], [agg_sum(REVENUE, "revenue")])
    )


def q11(catalog):
    """Important stock identification in one nation."""
    return (
        _partsupp_supplier_nation(catalog)
        .where(col("n_name") == "GERMANY")
        .aggregate(
            ["ps_partkey"],
            [agg_sum(col("ps_supplycost") * col("ps_availqty"), "value")],
        )
    )


def q12(catalog):
    """Shipping mode and order priority."""
    return (
        _orders_lineitem(catalog)
        .where(
            col("l_shipmode").isin(["MAIL", "SHIP"])
            & (col("l_commitdate") < col("l_receiptdate"))
            & (col("l_shipdate") < col("l_commitdate"))
            & (col("l_receiptdate") >= date_of(1994, 1, 1))
            & (col("l_receiptdate") < date_of(1995, 1, 1))
        )
        .project(
            [
                ("l_shipmode", col("l_shipmode")),
                (
                    "high_line",
                    col("o_orderpriority").isin(["1-URGENT", "2-HIGH"]) * 1,
                ),
                (
                    "low_line",
                    (~col("o_orderpriority").isin(["1-URGENT", "2-HIGH"])) * 1,
                ),
            ]
        )
        .aggregate(
            ["l_shipmode"],
            [
                agg_sum(col("high_line"), "high_line_count"),
                agg_sum(col("low_line"), "low_line_count"),
            ],
        )
    )


def q13(catalog):
    """Customer order-count distribution (two-level aggregate)."""
    return (
        PlanBuilder.scan(catalog, "customer")
        .join(PlanBuilder.scan(catalog, "orders"), "c_custkey", "o_custkey")
        .where(~contains(col("o_orderpriority"), "SPECIAL"))
        .aggregate(["c_custkey"], [agg_count("c_count")])
        .aggregate(["c_count"], [agg_count("custdist")])
    )


def q14(catalog):
    """Promotion effect: promo revenue share in one month."""
    return (
        _lineitem_part(catalog)
        .where(
            (col("l_shipdate") >= date_of(1995, 9, 1))
            & (col("l_shipdate") < date_of(1995, 10, 1))
        )
        .project(
            [
                ("promo_rev", starts_with(col("p_type"), "PROMO") * REVENUE),
                ("total_rev", REVENUE),
            ]
        )
        .aggregate(
            [],
            [
                agg_sum(col("promo_rev"), "promo_revenue"),
                agg_sum(col("total_rev"), "total_revenue"),
            ],
        )
    )


def q15(catalog):
    """Top supplier: revenue view + MAX over it (non-incrementable).

    The revenue view feeds both the global MAX aggregate and the
    supplier join that selects the top supplier(s) by value equality --
    the classic Q15 shape whose eager maintenance forces MAX rescans
    (paper section 5.3).
    """
    revenue = _supplier_revenue(catalog, date_of(1996, 1, 1)).build()
    max_revenue = (
        PlanBuilder.wrap(revenue)
        .aggregate([], [agg_max(col("total_revenue"), "max_revenue")])
        .project([("mr_one", Const(1)), ("max_revenue", col("max_revenue"))])
    )
    return (
        PlanBuilder.wrap(revenue)
        .project(
            [
                ("rv_one", Const(1)),
                ("l_suppkey", col("l_suppkey")),
                ("total_revenue", col("total_revenue")),
            ]
        )
        .join(max_revenue, "rv_one", "mr_one")
        .where(col("total_revenue") >= col("max_revenue"))
        .join(PlanBuilder.scan(catalog, "supplier"), "l_suppkey", "s_suppkey")
        .project(["s_suppkey", "total_revenue"])
    )


def q16(catalog):
    """Parts/supplier relationship counts."""
    return (
        PlanBuilder.scan(catalog, "part")
        .join(PlanBuilder.scan(catalog, "partsupp"), "p_partkey", "ps_partkey")
        .where(
            (col("p_brand") != "Brand#45")
            & ~starts_with(col("p_type"), "MEDIUM POLISHED")
            & col("p_size").isin([49, 14, 23, 45, 19, 3, 36, 9])
        )
        .aggregate(["p_brand", "p_type", "p_size"], [agg_count("supplier_cnt")])
    )


def q17(catalog):
    """Small-quantity-order revenue (correlated subquery as self-join)."""
    avg_qty = (
        PlanBuilder.scan(catalog, "lineitem")
        .aggregate(["l_partkey"], [agg_avg(col("l_quantity"), "aq")])
        .project([("aq_partkey", col("l_partkey")), ("avg_qty", col("aq"))])
    )
    return (
        _lineitem_part(catalog)
        .where((col("p_brand") == "Brand#23") & starts_with(col("p_container"), "MED"))
        .join(avg_qty, "l_partkey", "aq_partkey")
        .where(col("l_quantity") < 0.6 * col("avg_qty"))
        .aggregate([], [agg_sum(col("l_extendedprice"), "avg_yearly")])
    )


def q18(catalog):
    """Large volume customers (HAVING via select above aggregate)."""
    big_orders = (
        PlanBuilder.scan(catalog, "lineitem")
        .aggregate(["l_orderkey"], [agg_sum(col("l_quantity"), "sum_qty")])
        .where(col("sum_qty") > 150)
    )
    return (
        PlanBuilder.scan(catalog, "customer")
        .join(PlanBuilder.scan(catalog, "orders"), "c_custkey", "o_custkey")
        .join(big_orders, "o_orderkey", "l_orderkey")
        .aggregate(
            ["c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"],
            [agg_sum(col("sum_qty"), "total_qty")],
        )
    )


def q19(catalog):
    """Discounted revenue under disjunctive brand/container predicates."""
    clause1 = (
        (col("p_brand") == "Brand#12")
        & col("p_container").isin(["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
        & (col("l_quantity") >= 1) & (col("l_quantity") <= 11)
    )
    clause2 = (
        (col("p_brand") == "Brand#23")
        & col("p_container").isin(["MED BAG", "MED BOX", "MED PKG", "MED PACK"])
        & (col("l_quantity") >= 10) & (col("l_quantity") <= 20)
    )
    clause3 = (
        (col("p_brand") == "Brand#34")
        & col("p_container").isin(["LG CASE", "LG BOX", "LG PACK", "LG PKG"])
        & (col("l_quantity") >= 20) & (col("l_quantity") <= 30)
    )
    return (
        _lineitem_part(catalog)
        .where(clause1 | clause2 | clause3)
        .aggregate([], [agg_sum(REVENUE, "revenue")])
    )


def q20(catalog):
    """Potential part promotion (nested aggregate + availability check)."""
    half_qty = (
        PlanBuilder.scan(catalog, "lineitem")
        .where(
            (col("l_shipdate") >= date_of(1994, 1, 1))
            & (col("l_shipdate") < date_of(1995, 1, 1))
        )
        .aggregate(
            ["l_partkey", "l_suppkey"],
            [agg_sum(col("l_quantity") * 0.5, "half_qty")],
        )
    )
    return (
        _partsupp_supplier_nation(catalog)
        .where(col("n_name").isin(["CANADA", "BRAZIL", "INDIA", "FRANCE", "CHINA"]))
        .join(PlanBuilder.scan(catalog, "part"), "ps_partkey", "p_partkey")
        .where(starts_with(col("p_type"), "STANDARD"))
        .join(half_qty, ["ps_partkey", "ps_suppkey"], ["l_partkey", "l_suppkey"])
        .where(col("ps_availqty") > col("half_qty"))
        .aggregate(["s_suppkey"], [agg_count("part_count")])
    )


def q21(catalog):
    """Suppliers who kept orders waiting."""
    return (
        _orders_lineitem_supplier(catalog)
        .join(PlanBuilder.scan(catalog, "nation"), "s_nationkey", "n_nationkey")
        .where(
            (col("o_orderstatus") == "F")
            & (col("l_receiptdate") > col("l_commitdate"))
            & col("n_name").isin(["SAUDI ARABIA", "EGYPT", "IRAN", "IRAQ", "JORDAN"])
        )
        .aggregate(["s_suppkey"], [agg_count("numwait")])
    )


def q22(catalog):
    """Global sales opportunity: well-funded inactive customers."""
    return (
        PlanBuilder.scan(catalog, "customer")
        .where(
            col("c_nationkey").isin([13, 31, 23, 29, 30, 18, 17])
            & (col("c_acctbal") > 0.0)
        )
        .aggregate(
            ["c_nationkey"],
            [agg_count("numcust"), agg_sum(col("c_acctbal"), "totacctbal")],
        )
    )


#: builders by canonical name
QUERY_BUILDERS = {
    "Q1": q1, "Q2": q2, "Q3": q3, "Q4": q4, "Q5": q5, "Q6": q6, "Q7": q7,
    "Q8": q8, "Q9": q9, "Q10": q10, "Q11": q11, "Q12": q12, "Q13": q13,
    "Q14": q14, "Q15": q15, "Q16": q16, "Q17": q17, "Q18": q18, "Q19": q19,
    "Q20": q20, "Q21": q21, "Q22": q22,
}

ALL_QUERY_NAMES = tuple("Q%d" % i for i in range(1, 23))

#: the 10-query subset with significant overlapping work (section 5.3)
SHARING_FRIENDLY = ("Q4", "Q5", "Q7", "Q8", "Q9", "Q15", "Q17", "Q18", "Q20", "Q21")


def build_query(catalog, name, query_id):
    """Build one named TPC-H query as a :class:`~repro.logical.ops.Query`."""
    builder = QUERY_BUILDERS[name]
    return builder(catalog).as_query(query_id, name)


def build_workload(catalog, names=ALL_QUERY_NAMES):
    """Build a query batch with dense ids in the given order."""
    return [build_query(catalog, name, qid) for qid, name in enumerate(names)]
