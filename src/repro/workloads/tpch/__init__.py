"""TPC-H micro benchmark: schema, data generator, 22 queries, variants."""

from .schema import TABLE_SCHEMAS, date_of, DATE_MIN, DATE_MAX
from .datagen import generate_catalog, rows_for, BASE_ROWS, add_lineitem_updates
from .queries import (
    ALL_QUERY_NAMES,
    QUERY_BUILDERS,
    SHARING_FRIENDLY,
    build_query,
    build_workload,
)
from .paper_queries import build_qa, build_qb, build_pair
from .variants import mutate_query, build_variant_workload

__all__ = [
    "TABLE_SCHEMAS",
    "date_of",
    "DATE_MIN",
    "DATE_MAX",
    "generate_catalog",
    "add_lineitem_updates",
    "rows_for",
    "BASE_ROWS",
    "ALL_QUERY_NAMES",
    "QUERY_BUILDERS",
    "SHARING_FRIENDLY",
    "build_query",
    "build_workload",
    "build_qa",
    "build_qb",
    "build_pair",
    "mutate_query",
    "build_variant_workload",
]
