"""The paper's running-example queries Q_A and Q_B (Figure 2, section 5.2).

Both aggregate per-part lineitem quantities; Q_A sums them over all
parts, Q_B averages them over one selective brand/size slice and then
finds partsupp rows with less availability than that average.  The MQO
optimizer shares the ``part |X| (lineitem group-by)`` block with Q_B's
selection turned into a marking select -- exactly Figure 2's
``Q_AB``.
"""

from ...logical.builder import PlanBuilder
from ...relational.expressions import Const, agg_avg, agg_sum, col


def _part_quantities(catalog, part_filter=None):
    """part |X| (SELECT l_partkey, SUM(l_quantity) FROM lineitem GROUP BY ...)."""
    agg_l = PlanBuilder.scan(catalog, "lineitem").aggregate(
        ["l_partkey"], [agg_sum(col("l_quantity"), "sum_quantity")]
    )
    part = PlanBuilder.scan(catalog, "part")
    if part_filter is not None:
        part = part.where(part_filter)
    return part.join(agg_l, "p_partkey", "l_partkey")


def build_qa(catalog, query_id=0):
    """Q_A: total quantity over all parts."""
    return (
        _part_quantities(catalog)
        .aggregate([], [agg_sum(col("sum_quantity"), "total_sum_quantity")])
        .as_query(query_id, "QA")
    )


def build_qb(catalog, query_id=1, brand="Brand#23", size=15):
    """Q_B: partsupp rows with availability below the brand's average.

    The scalar (uncorrelated) subquery average is joined to partsupp on a
    constant key; the inequality becomes a select above the join.
    """
    avg_quantity = (
        _part_quantities(
            catalog, (col("p_brand") == brand) & (col("p_size") == size)
        )
        .aggregate([], [agg_avg(col("sum_quantity"), "avg_quantity")])
        .project([("avg_one", Const(1)), ("avg_quantity", col("avg_quantity"))])
    )
    return (
        PlanBuilder.scan(catalog, "partsupp")
        .project(
            [
                ("ps_one", Const(1)),
                ("ps_partkey", col("ps_partkey")),
                ("ps_availqty", col("ps_availqty")),
            ]
        )
        .join(avg_quantity, "ps_one", "avg_one")
        .where(col("ps_availqty") < col("avg_quantity"))
        .project(["ps_partkey"])
        .as_query(query_id, "QB")
    )


def build_pair(catalog):
    """The (Q_A, Q_B) batch with ids 0 and 1."""
    return [build_qa(catalog, 0), build_qb(catalog, 1)]
