"""Predicate-mutation query variants (paper section 5.4).

The decomposition experiment takes the sharing-friendly queries, mutates
their predicates, and runs originals and variants together: "For 50% of
the equality predicates, we use a different value, and for a range-based
predicate, we generate a new predicate that with an overlap up to 50%."
Mutated queries still share join structure with the originals (structure
signatures ignore select predicates) while their marking selects diverge,
which is what gives decomposition room to pay off.
"""

import random

from ...logical.ops import Aggregate, Join, Project, Query, Scan, Select
from ...relational.expressions import (
    And,
    Col,
    Comparison,
    Const,
    Contains,
    InList,
    Not,
    Or,
    StartsWith,
)
from . import schema as tpch

#: string value domains searched for equality-replacement candidates
_DOMAINS = (
    tpch.BRANDS,
    tpch.SEGMENTS,
    tpch.CONTAINERS,
    tpch.SHIP_MODES,
    tpch.ORDER_PRIORITIES,
    tpch.NATIONS,
    tpch.REGIONS,
    tpch.TYPES,
)


def _alternative_value(value, rng):
    """A different value from the same domain (strings) or a nudge (numbers)."""
    if isinstance(value, str):
        for domain in _DOMAINS:
            if value in domain:
                options = [v for v in domain if v != value]
                return rng.choice(options)
        return value + "#alt"
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return round(value * 1.1 + 0.01, 4)
    return value


def _collect_ranges(expr, ranges):
    """Find per-column numeric [low, high) bounds inside a conjunction."""
    if isinstance(expr, And):
        _collect_ranges(expr.left, ranges)
        _collect_ranges(expr.right, ranges)
        return
    if (
        isinstance(expr, Comparison)
        and isinstance(expr.left, Col)
        and isinstance(expr.right, Const)
        and isinstance(expr.right.value, (int, float))
        and not isinstance(expr.right.value, bool)
    ):
        low, high = ranges.get(expr.left.name, (None, None))
        if expr.op in (">=", ">"):
            low = expr.right.value
        elif expr.op in ("<=", "<"):
            high = expr.right.value
        ranges[expr.left.name] = (low, high)


def _range_shift(ranges, name):
    """Half the window width: shifting both bounds by it leaves 50% overlap."""
    low, high = ranges.get(name, (None, None))
    if low is not None and high is not None and high > low:
        return (high - low) / 2.0
    return None


class PredicateMutator:
    """Rewrites select predicates per the section 5.4 recipe."""

    def __init__(self, rng, equality_probability=0.5):
        self.rng = rng
        self.equality_probability = equality_probability

    def mutate_predicate(self, predicate):
        ranges = {}
        _collect_ranges(predicate, ranges)
        return self._rewrite(predicate, ranges)

    def _rewrite(self, expr, ranges):
        if isinstance(expr, And):
            return And(self._rewrite(expr.left, ranges), self._rewrite(expr.right, ranges))
        if isinstance(expr, Or):
            return Or(self._rewrite(expr.left, ranges), self._rewrite(expr.right, ranges))
        if isinstance(expr, Not):
            return Not(self._rewrite(expr.child, ranges))
        if isinstance(expr, Comparison):
            return self._rewrite_comparison(expr, ranges)
        if isinstance(expr, InList):
            if self.rng.random() < self.equality_probability:
                values = tuple(
                    _alternative_value(value, self.rng) for value in expr.values
                )
                return InList(expr.child, values)
            return expr
        if isinstance(expr, (StartsWith, Contains)):
            return expr  # pattern predicates are left as-is (no clean domain)
        return expr

    def _rewrite_comparison(self, expr, ranges):
        if not (isinstance(expr.left, Col) and isinstance(expr.right, Const)):
            return expr
        value = expr.right.value
        if expr.op == "==":
            if self.rng.random() < self.equality_probability:
                return Comparison(
                    "==", expr.left, Const(_alternative_value(value, self.rng))
                )
            return expr
        if expr.op in (">=", ">", "<=", "<") and isinstance(value, (int, float)):
            shift = _range_shift(ranges, expr.left.name)
            if shift is None:
                return expr
            shifted = value + shift
            if isinstance(value, int):
                shifted = int(round(shifted))
            return Comparison(expr.op, expr.left, Const(shifted))
        return expr


def _rebuild(op, mutator):
    if isinstance(op, Scan):
        return op
    if isinstance(op, Select):
        return Select(
            _rebuild(op.child, mutator), mutator.mutate_predicate(op.predicate)
        )
    if isinstance(op, Project):
        return Project(_rebuild(op.child, mutator), op.exprs)
    if isinstance(op, Join):
        return Join(
            _rebuild(op.left, mutator),
            _rebuild(op.right, mutator),
            op.left_keys,
            op.right_keys,
        )
    if isinstance(op, Aggregate):
        return Aggregate(_rebuild(op.child, mutator), op.group_by, op.aggs)
    raise TypeError("cannot mutate operator %r" % (op,))


def mutate_query(query, new_query_id, seed=0):
    """A variant of ``query`` with mutated predicates (same structure)."""
    rng = random.Random("%s|%s" % (seed, query.name))
    mutator = PredicateMutator(rng)
    return Query(new_query_id, query.name + "'", _rebuild(query.root, mutator))


def build_variant_workload(catalog, names, builder, seed=0):
    """Originals + predicate-mutated variants with dense query ids.

    ``builder`` is ``queries.build_query``-compatible; returns the
    combined batch ``[Q..., Q'...]`` of the section 5.4 experiment.
    """
    originals = [builder(catalog, name, qid) for qid, name in enumerate(names)]
    variants = [
        mutate_query(query, len(originals) + index, seed)
        for index, query in enumerate(originals)
    ]
    return originals + variants
