"""Deterministic TPC-H-like data generator.

Stands in for dbgen: row counts follow the TPC-H table ratios (the paper
uses SF 5; we use a *micro scale factor* where ``scale=1.0`` produces
about 6,000 lineitem rows, small enough for the pure-Python engine while
keeping the relative table sizes, foreign-key fan-outs, value domains and
predicate selectivities that the workload's sharing/eagerness trade-offs
depend on).  Generation is seeded and fully deterministic.
"""

import random

from ...relational.table import Catalog
from . import schema as tpch


#: per-unit-scale row counts (TPC-H ratios at micro size)
BASE_ROWS = {
    "supplier": 50,
    "customer": 300,
    "part": 400,
    "partsupp": 1600,
    "orders": 1500,
    "lineitem": 6000,
}


def rows_for(table, scale):
    """Row count of ``table`` at ``scale`` (regions/nations are fixed)."""
    if table == "region":
        return len(tpch.REGIONS)
    if table == "nation":
        return len(tpch.NATIONS)
    return max(1, int(BASE_ROWS[table] * scale))


def generate_catalog(scale=1.0, seed=5):
    """Build a fully-populated catalog at the given micro scale factor."""
    rng = random.Random(seed)
    catalog = Catalog()

    region = catalog.create("region", tpch.REGION_SCHEMA)
    for key, name in enumerate(tpch.REGIONS):
        region.append((key, name))

    nation = catalog.create("nation", tpch.NATION_SCHEMA)
    for key, name in enumerate(tpch.NATIONS):
        nation.append((key, name, key % len(tpch.REGIONS)))

    n_supplier = rows_for("supplier", scale)
    supplier = catalog.create("supplier", tpch.SUPPLIER_SCHEMA)
    for key in range(n_supplier):
        supplier.append((
            key,
            rng.randrange(len(tpch.NATIONS)),
            round(rng.uniform(-999.99, 9999.99), 2),
        ))

    n_customer = rows_for("customer", scale)
    customer = catalog.create("customer", tpch.CUSTOMER_SCHEMA)
    for key in range(n_customer):
        customer.append((
            key,
            rng.randrange(len(tpch.NATIONS)),
            rng.choice(tpch.SEGMENTS),
            round(rng.uniform(-999.99, 9999.99), 2),
        ))

    n_part = rows_for("part", scale)
    part = catalog.create("part", tpch.PART_SCHEMA)
    for key in range(n_part):
        part.append((
            key,
            rng.choice(tpch.BRANDS),
            rng.choice(tpch.TYPES),
            rng.randint(1, 50),
            rng.choice(tpch.CONTAINERS),
            round(rng.uniform(900.0, 2000.0), 2),
        ))

    partsupp = catalog.create("partsupp", tpch.PARTSUPP_SCHEMA)
    suppliers_per_part = max(1, rows_for("partsupp", scale) // max(n_part, 1))
    suppliers_of_part = {}
    for part_key in range(n_part):
        chosen = rng.sample(
            range(n_supplier), min(suppliers_per_part, n_supplier)
        )
        suppliers_of_part[part_key] = chosen
        for supp_key in chosen:
            partsupp.append((
                part_key,
                supp_key,
                rng.randint(1, 9999),
                round(rng.uniform(1.0, 1000.0), 2),
            ))

    n_orders = rows_for("orders", scale)
    orders = catalog.create("orders", tpch.ORDERS_SCHEMA)
    order_dates = {}
    for key in range(n_orders):
        order_date = rng.randint(tpch.DATE_MIN, tpch.DATE_MAX - 151)
        order_dates[key] = order_date
        orders.append((
            key,
            rng.randrange(n_customer),
            rng.choice(tpch.ORDER_STATUSES),
            round(rng.uniform(1000.0, 450000.0), 2),
            order_date,
            rng.choice(tpch.ORDER_PRIORITIES),
        ))

    n_lineitem = rows_for("lineitem", scale)
    lineitem = catalog.create("lineitem", tpch.LINEITEM_SCHEMA)
    for _ in range(n_lineitem):
        order_key = rng.randrange(n_orders)
        ship_date = order_dates[order_key] + rng.randint(1, 121)
        commit_date = order_dates[order_key] + rng.randint(30, 90)
        receipt_date = ship_date + rng.randint(1, 30)
        quantity = float(rng.randint(1, 50))
        price_per_unit = rng.uniform(900.0, 2000.0) / 10.0
        part_key = rng.randrange(n_part)
        # like dbgen, a lineitem's supplier is one of the part's suppliers
        lineitem.append((
            order_key,
            part_key,
            rng.choice(suppliers_of_part[part_key]),
            quantity,
            round(quantity * price_per_unit, 2),
            round(rng.choice((0.0, 0.01, 0.02, 0.03, 0.04, 0.05,
                              0.06, 0.07, 0.08, 0.09, 0.10)), 2),
            round(rng.choice((0.0, 0.02, 0.04, 0.06, 0.08)), 2),
            rng.choice(tpch.RETURN_FLAGS),
            rng.choice(tpch.LINE_STATUSES),
            ship_date,
            commit_date,
            receipt_date,
            rng.choice(tpch.SHIP_MODES),
        ))

    # Shuffle the big fact tables so arrival order is not correlated with
    # key order (the stream source delivers rows in table order).
    rng.shuffle(orders.rows)
    rng.shuffle(lineitem.rows)
    return catalog


def add_lineitem_updates(catalog, fraction=0.05, seed=11):
    """Add update churn to the lineitem stream (paper section 2.3).

    A ``fraction`` of lineitem rows receive a quantity/price correction
    after arrival; each update reaches the stream as a deletion of the old
    row followed by an insertion of the corrected one, at a random point
    after the original arrival.  Returns the catalog for chaining.
    """
    rng = random.Random(seed)
    lineitem = catalog.get("lineitem")
    schema = lineitem.schema
    qty_index = schema.index_of("l_quantity")
    price_index = schema.index_of("l_extendedprice")
    count = max(1, int(len(lineitem.rows) * fraction))
    updates = []
    for row in rng.sample(lineitem.rows, count):
        new_row = list(row)
        new_row[qty_index] = float(rng.randint(1, 50))
        new_row[price_index] = round(
            new_row[qty_index] * rng.uniform(90.0, 200.0), 2
        )
        updates.append((row, tuple(new_row)))
    lineitem.apply_updates(updates, rng)
    return catalog
