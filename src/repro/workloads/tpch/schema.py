"""TPC-H schema (the columns the workload queries use).

Dates are integers counting days from 1992-01-01 (the TPC-H epoch); the
7-year date range spans 0..2555.  String-typed columns draw from the
standard TPC-H value domains (brands, segments, ship modes, ...).
"""

from ...relational.schema import Schema, INT, FLOAT, STR

#: days from 1992-01-01 to 1998-12-31
DATE_MIN = 0
DATE_MAX = 2555

EPOCH_YEAR = 1992


def date_of(year, month=1, day=1):
    """Approximate day number of a calendar date (30.44-day months)."""
    return int((year - EPOCH_YEAR) * 365.25 + (month - 1) * 30.44 + (day - 1))


def year_of_expr(days):
    """Inverse of :func:`date_of` for whole years (used in group-bys)."""
    return EPOCH_YEAR + int(days / 365.25)


REGION_SCHEMA = Schema.of(("r_regionkey", INT), ("r_name", STR))

NATION_SCHEMA = Schema.of(
    ("n_nationkey", INT), ("n_name", STR), ("n_regionkey", INT)
)

SUPPLIER_SCHEMA = Schema.of(
    ("s_suppkey", INT),
    ("s_nationkey", INT),
    ("s_acctbal", FLOAT),
)

CUSTOMER_SCHEMA = Schema.of(
    ("c_custkey", INT),
    ("c_nationkey", INT),
    ("c_mktsegment", STR),
    ("c_acctbal", FLOAT),
)

PART_SCHEMA = Schema.of(
    ("p_partkey", INT),
    ("p_brand", STR),
    ("p_type", STR),
    ("p_size", INT),
    ("p_container", STR),
    ("p_retailprice", FLOAT),
)

PARTSUPP_SCHEMA = Schema.of(
    ("ps_partkey", INT),
    ("ps_suppkey", INT),
    ("ps_availqty", INT),
    ("ps_supplycost", FLOAT),
)

ORDERS_SCHEMA = Schema.of(
    ("o_orderkey", INT),
    ("o_custkey", INT),
    ("o_orderstatus", STR),
    ("o_totalprice", FLOAT),
    ("o_orderdate", INT),
    ("o_orderpriority", STR),
)

LINEITEM_SCHEMA = Schema.of(
    ("l_orderkey", INT),
    ("l_partkey", INT),
    ("l_suppkey", INT),
    ("l_quantity", FLOAT),
    ("l_extendedprice", FLOAT),
    ("l_discount", FLOAT),
    ("l_tax", FLOAT),
    ("l_returnflag", STR),
    ("l_linestatus", STR),
    ("l_shipdate", INT),
    ("l_commitdate", INT),
    ("l_receiptdate", INT),
    ("l_shipmode", STR),
)

TABLE_SCHEMAS = {
    "region": REGION_SCHEMA,
    "nation": NATION_SCHEMA,
    "supplier": SUPPLIER_SCHEMA,
    "customer": CUSTOMER_SCHEMA,
    "part": PART_SCHEMA,
    "partsupp": PARTSUPP_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
}

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")

BRANDS = tuple("Brand#%d%d" % (m, n) for m in range(1, 6) for n in range(1, 6))

TYPES = tuple(
    "%s %s %s" % (a, b, c)
    for a in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for b in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for c in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
)

CONTAINERS = tuple(
    "%s %s" % (a, b)
    for a in ("SM", "LG", "MED", "JUMBO", "WRAP")
    for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
)

SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")

ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")

ORDER_STATUSES = ("F", "O", "P")

RETURN_FLAGS = ("R", "A", "N")

LINE_STATUSES = ("O", "F")
