"""Workloads: TPC-H-class queries, data generation, constraint sets."""

from .constraints import CONSTRAINT_LEVELS, random_constraints, uniform_constraints

__all__ = ["CONSTRAINT_LEVELS", "random_constraints", "uniform_constraints"]
