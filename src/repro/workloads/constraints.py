"""Relative final-work constraint generators (paper section 5.3).

The evaluation draws relative constraints from ``{1.0, 0.5, 0.2, 0.1}``
either uniformly (one value for all queries) or randomly per query.
"""

import random

#: the constraint levels the paper tests
CONSTRAINT_LEVELS = (1.0, 0.5, 0.2, 0.1)


def uniform_constraints(query_ids, level):
    """The same relative constraint for every query.

    The paper's figures use levels from :data:`CONSTRAINT_LEVELS`; other
    values in ``(0, 1]`` are accepted (Figure 15 uses 0.01).
    """
    if not 0.0 < level <= 1.0:
        raise ValueError("relative constraint must be in (0, 1], got %r" % (level,))
    return {qid: level for qid in query_ids}


def random_constraints(query_ids, seed=0, levels=CONSTRAINT_LEVELS):
    """A random constraint per query, reproducibly from ``seed``."""
    rng = random.Random(seed)
    return {qid: rng.choice(levels) for qid in query_ids}
