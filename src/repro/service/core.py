"""The long-running query service: a live shared plan under churn.

One :class:`QueryService` owns one shared plan for the lifetime of the
process.  Tenants register and deregister queries at runtime, each with
its own relative latency goal; simulated data arrival fires trigger
windows; between the two the optimizer re-optimizes *incrementally*
(:mod:`repro.core.incremental`) -- matched subplans keep their calibrated
statistics, memo rows, feedback corrections and paces, and only the
subplans whose query sets changed are recalibrated and re-searched.

Admission control evaluates every registration before adopting it: a
goal that cannot be met even at maximum eagerness under the current load
is provably unsatisfiable under the cost model and is rejected (or
queued, in ``admission="queue"`` mode, to be retried whenever a
deregistration frees capacity).  Per-tenant fairness is enforced through
work budgets: a tenant's registrations may not demand more estimated
solo work per window than its budget.

Statistics are calibrated against the service's *basis* window (the
first window's data) and then kept honest by the measured-execution
feedback loop (paper section 3.2): after every trigger the measured
per-subplan work recalibrates the cost model the next re-optimization
uses.
"""

from ..core.incremental import carry_paces, incremental_pace_search, merge_with_carry
from ..core.optimizer import OptimizerConfig
from ..core.pace import uniform_configuration
from ..engine.executor import PlanExecutor
from ..engine.metrics import missed_latency
from ..errors import OptimizationError, ServiceError
from ..logical.ops import Query
from ..obs import OBS
from ..obs.attribution import AttributionLedger
from ..obs.slack import SlackLedger


class Registration:
    """One tenant's live query with its latency goal."""

    __slots__ = ("query_id", "tenant", "name", "query", "relative_goal",
                 "registered_window")

    def __init__(self, query_id, tenant, query, relative_goal, registered_window):
        self.query_id = query_id
        self.tenant = tenant
        self.name = getattr(query, "name", None) or "q%d" % query_id
        self.query = query
        self.relative_goal = relative_goal
        self.registered_window = registered_window

    def __repr__(self):
        return "Registration(q%d, tenant=%s, goal=%g)" % (
            self.query_id, self.tenant, self.relative_goal
        )


class AdmissionDecision:
    """The audit record of one registration attempt."""

    __slots__ = ("query_id", "tenant", "status", "reason", "window")

    def __init__(self, query_id, tenant, status, reason, window):
        self.query_id = query_id
        self.tenant = tenant
        self.status = status  # admitted | rejected | queued
        self.reason = reason
        self.window = window

    def to_dict(self):
        return {
            "query_id": self.query_id,
            "tenant": self.tenant,
            "status": self.status,
            "reason": self.reason,
            "window": self.window,
        }

    def __repr__(self):
        return "AdmissionDecision(q%d %s: %s)" % (
            self.query_id, self.status, self.reason
        )


class TriggerOutcome:
    """What one trigger window produced, JSON-navigable via :meth:`to_dict`."""

    __slots__ = ("window", "total_work", "queries", "tenants", "reoptimized",
                 "run", "slack", "attribution", "conserved")

    def __init__(self, window, total_work, queries, tenants, reoptimized,
                 run=None, slack=None, attribution=None, conserved=True):
        self.window = window
        self.total_work = total_work
        #: {qid: {tenant, name, latency/goal seconds, missed}}
        self.queries = queries
        #: {tenant: {work, queries, slo_misses}}
        self.tenants = tenants
        self.reoptimized = reoptimized
        self.run = run  # the raw RunResult (not serialized)
        #: {qid: slack-ledger entry} (headroom, deferral, drift projection)
        self.slack = slack or {}
        #: {qid: attributed work} -- solo-cost-proportional, conservation-exact
        self.attribution = attribution or {}
        self.conserved = conserved

    def to_dict(self):
        return {
            "window": self.window,
            "total_work": self.total_work,
            "reoptimized": self.reoptimized,
            "queries": {str(qid): dict(q) for qid, q in sorted(self.queries.items())},
            "tenants": {t: dict(v) for t, v in sorted(self.tenants.items())},
            "slack": {
                str(qid): dict(entry)
                for qid, entry in sorted(self.slack.items())
            },
            "attribution": {
                "conserved": self.conserved,
                "queries": {
                    str(qid): work
                    for qid, work in sorted(self.attribution.items())
                },
            },
        }

    def __repr__(self):
        return "TriggerOutcome(window=%d, work=%.1f, queries=%d)" % (
            self.window, self.total_work, len(self.queries)
        )


class QueryService:
    """A long-running scheduler owning one live shared plan.

    Parameters
    ----------
    make_catalog:
        ``window -> Catalog`` factory for each trigger window's data
        (same schemas, fresh rows).  Window 0 doubles as the calibration
        basis.
    config:
        an :class:`~repro.core.optimizer.OptimizerConfig`; its stream
        config drives execution and the work-to-seconds conversion.
    admission:
        ``"reject"`` turns away an inadmissible registration for good;
        ``"queue"`` parks it and retries (FIFO) after each
        deregistration.
    tenant_budgets:
        optional ``{tenant: work_units}`` fairness budgets; a tenant's
        live queries may not demand more estimated solo batch work than
        its budget.
    use_feedback:
        apply each window's measured per-subplan work as cost-model
        corrections for the next re-optimization.
    """

    def __init__(self, make_catalog, config=None, admission="reject",
                 tenant_budgets=None, use_feedback=True):
        if admission not in ("reject", "queue"):
            raise ServiceError(
                "admission mode must be 'reject' or 'queue', got %r" % (admission,)
            )
        self.make_catalog = make_catalog
        self.config = config or OptimizerConfig()
        self.admission = admission
        self.tenant_budgets = dict(tenant_budgets or {})
        self.use_feedback = use_feedback
        self.window = 0
        self.registrations = {}  # qid -> Registration, insertion-ordered
        self.pending = []  # queued registrations (admission="queue")
        self.decisions = []  # every AdmissionDecision ever made
        self.plan = None
        self.model = None
        self.paces = None  # None marks the configuration dirty
        #: external query id -> dense bitvector slot in the live plan.
        #: The MQO layer needs ids 0..N-1; tenants pick arbitrary ids and
        #: churn leaves holes, so the service renumbers on every re-merge
        #: (registration order, so registering never moves a live slot).
        self.slots = {}
        self._initial_paces = {}
        self._executor = None
        self._basis = None
        self._last_merge = None
        self._goals = {}
        #: absolute final-work bounds keyed by dense slot, refreshed by
        #: every re-optimization (the slack ledger's goal_work)
        self._constraints = {}
        #: estimated per-slot final work at uniform max pace -- the
        #: eagerest plan the optimizer could have run; headroom over it
        #: is the slack budget the chosen paces were allowed to spend
        self._eager_final = {}
        self.slack = SlackLedger()
        self.attribution = AttributionLedger()

    # -- registration lifecycle ---------------------------------------------

    @property
    def basis_catalog(self):
        """The calibration-basis catalog (window 0's data), built lazily."""
        if self._basis is None:
            self._basis = self.make_catalog(0)
        return self._basis

    def register(self, query, tenant, relative_goal):
        """Attempt to admit ``query`` for ``tenant``.

        Returns the :class:`AdmissionDecision`; only ``"admitted"``
        changes the live plan.  Invalid *requests* (bad goal, duplicate
        id) raise :class:`~repro.errors.ServiceError`; an admissible
        request with an unsatisfiable goal is a valid request with a
        negative answer, not an error.
        """
        query_id = getattr(query, "query_id", None)
        if not isinstance(query_id, int) or isinstance(query_id, bool) or query_id < 0:
            raise ServiceError(
                "a registered query needs a non-negative integer query_id, "
                "got %r" % (query_id,)
            )
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError("tenant must be a non-empty string, got %r" % (tenant,))
        if not isinstance(relative_goal, (int, float)) or isinstance(relative_goal, bool) \
                or relative_goal <= 0:
            raise ServiceError(
                "query %d: latency goal must be a positive number, got %r"
                % (query_id, relative_goal)
            )
        if query_id in self.registrations or any(
            r.query_id == query_id for r in self.pending
        ):
            raise ServiceError(
                "query id %d is already registered%s; deregister it first or "
                "pick a fresh id" % (
                    query_id,
                    " (queued)" if query_id not in self.registrations else "",
                )
            )
        registration = Registration(
            query_id, tenant, query, float(relative_goal), self.window
        )
        decision = self._try_admit(registration)
        self.decisions.append(decision)
        if decision.status == "queued":
            self.pending.append(registration)
        if OBS.enabled:
            OBS.declog.log(
                "service_admission", **decision.to_dict()
            )
            OBS.metrics.counter(
                "service.admissions", status=decision.status
            ).inc()
        return decision

    def deregister(self, query_id):
        """Remove a live (or queued) query; frees capacity for the queue.

        Referencing an unknown or already-deregistered id raises a
        descriptive :class:`~repro.errors.OptimizationError`.
        """
        for index, registration in enumerate(self.pending):
            if registration.query_id == query_id:
                del self.pending[index]
                if OBS.enabled:
                    OBS.declog.log(
                        "service_deregister", query_id=query_id,
                        tenant=registration.tenant, queued=True,
                    )
                return registration
        registration = self.registrations.pop(query_id, None)
        if registration is None:
            live = sorted(self.registrations)
            raise OptimizationError(
                "cannot deregister query id %r: not registered (live ids: %s); "
                "was it already deregistered?"
                % (query_id, live if live else "none")
            )
        if OBS.enabled:
            OBS.declog.log(
                "service_deregister", query_id=query_id,
                tenant=registration.tenant, queued=False,
            )
        if self.registrations:
            merge, slots = self._merge(list(self.registrations.values()))
            self._adopt(merge, slots)
        else:
            self.plan = None
            self.model = None
            self.paces = None
            self.slots = {}
            self._initial_paces = {}
            self._last_merge = None
            self._goals = {}
            self._constraints = {}
            self._eager_final = {}
        self._retry_pending()
        return registration

    def _retry_pending(self):
        """FIFO re-admission pass over the queue after capacity changed."""
        still_pending = []
        for registration in self.pending:
            decision = self._try_admit(registration)
            decision.reason = "retry: " + decision.reason
            if decision.status == "queued":
                still_pending.append(registration)
            self.decisions.append(decision)
            if OBS.enabled:
                OBS.declog.log("service_admission", **decision.to_dict())
        self.pending = still_pending

    def _merge(self, registrations):
        """Re-merge ``registrations`` onto dense slots, carrying live state.

        Returns ``(merge, slots)`` where ``slots`` is the new external
        id -> dense slot map.  The qid translation handed to the matcher
        lets subplans keep their calibrated state even when a departed
        query shifted every later slot down.
        """
        queries = []
        slots = {}
        for slot, registration in enumerate(registrations):
            slots[registration.query_id] = slot
            queries.append(Query(slot, registration.name, registration.query.root))
        qid_map = {
            slots[ext]: self.slots[ext]
            for ext in slots
            if ext in self.slots
        }
        merge = merge_with_carry(
            self.basis_catalog, queries, self.config,
            self.plan, self.model, qid_map=qid_map,
        )
        return merge, slots

    def _try_admit(self, registration):
        """Check a registration against goal feasibility and tenant budget.

        Builds the candidate plan (incrementally, against the live one)
        and evaluates the new query's final work at maximum eagerness: if
        even ``P_max`` cannot meet the absolute bound, the goal is
        provably unsatisfiable under the cost model and current load.
        Admitting adopts the candidate plan; the pace search itself is
        deferred to the next trigger so bursts of churn coalesce into one
        re-search.
        """
        qid = registration.query_id
        queued = self.admission == "queue"
        candidates = list(self.registrations.values())
        candidates.append(registration)
        merge, slots = self._merge(candidates)
        slot = slots[qid]
        solo_total, _ = merge.model.solo_batch(slot)
        bound = registration.relative_goal * solo_total
        eager = merge.model.evaluate(
            uniform_configuration(merge.plan, self.config.max_pace)
        )
        final_at_max = eager.query_final_work.get(slot, 0.0)
        if final_at_max > bound:
            return AdmissionDecision(
                qid, registration.tenant,
                "queued" if queued else "rejected",
                "goal_unsatisfiable: final work %.1f at max pace %d exceeds "
                "bound %.1f (goal %g x solo %.1f)" % (
                    final_at_max, self.config.max_pace, bound,
                    registration.relative_goal, solo_total,
                ),
                self.window,
            )
        budget = self.tenant_budgets.get(registration.tenant)
        if budget is not None:
            demand = solo_total
            for other in self.registrations.values():
                if other.tenant == registration.tenant:
                    demand += merge.model.solo_batch(slots[other.query_id])[0]
            if demand > budget:
                return AdmissionDecision(
                    qid, registration.tenant,
                    "queued" if queued else "rejected",
                    "tenant_budget: estimated solo work %.1f exceeds budget "
                    "%.1f" % (demand, budget),
                    self.window,
                )
        self.registrations[qid] = registration
        self._adopt(merge, slots)
        return AdmissionDecision(
            qid, registration.tenant, "admitted", "capacity available",
            self.window,
        )

    def _adopt(self, merge, slots):
        """Make a merge outcome the live plan; pace search stays deferred."""
        current = self.paces if self.paces is not None else self._initial_paces
        self._initial_paces = carry_paces(
            merge.plan, merge.matched, current, self.config.max_pace
        )
        self.plan = merge.plan
        self.model = merge.model
        self.slots = slots
        self.paces = None  # dirty: re-searched lazily at the next trigger
        self._last_merge = merge

    # -- trigger firings ------------------------------------------------------

    def _reoptimize(self):
        """Subplan-scoped pace re-search for the current (dirty) plan."""
        constraints = {}  # keyed by dense slot: the model's id space
        goals = {}  # keyed by external id: the reporting id space
        for qid, registration in self.registrations.items():
            slot = self.slots[qid]
            solo_total, _ = self.model.solo_batch(slot)
            constraints[slot] = registration.relative_goal * solo_total
            goals[qid] = self.config.stream_config.seconds(constraints[slot])
        paces, evaluation, iterations = incremental_pace_search(
            self.model, constraints, self._initial_paces, self.config.max_pace
        )
        self.paces = paces
        self._goals = goals
        self._constraints = constraints
        # the eagerest configuration's estimated final work: the slack
        # baseline.  Admission already evaluated uniform max pace on this
        # model, so the memo makes this re-evaluation nearly free.
        eager = self.model.evaluate(
            uniform_configuration(self.plan, self.config.max_pace)
        )
        self._eager_final = dict(eager.query_final_work)
        merge = self._last_merge
        if OBS.enabled:
            OBS.declog.log(
                "service_reoptimize",
                window=self.window,
                scope="incremental" if merge is not None and merge.matched
                else "full",
                subplans=len(self.plan.subplans),
                reused=sorted(merge.matched) if merge is not None else [],
                recalibrated=list(merge.fresh_sids) if merge is not None else [],
                memo_rows_carried=merge.memo_rows_carried if merge is not None else 0,
                search_iterations=iterations,
                total_work=round(evaluation.total_work, 4),
            )
        return evaluation

    def run_window(self, collect_results=False):
        """Fire one trigger window; returns a :class:`TriggerOutcome`.

        Advances the window clock even when no query is live (an idle
        window), so registrations arriving later land on the right data.
        """
        window = self.window
        if not self.registrations:
            self.window += 1
            return TriggerOutcome(window, 0.0, {}, {}, reoptimized=False)
        reoptimized = self.paces is None
        if reoptimized:
            self._reoptimize()
        today = self.make_catalog(window) if window > 0 else self.basis_catalog
        if self._executor is None:
            self._executor = PlanExecutor(
                self.plan, self.config.stream_config, catalog=today
            )
        else:
            self._executor.rebind(plan=self.plan, catalog=today)
        run = self._executor.run(self.paces, collect_results=collect_results)

        queries = {}
        tenants = {}
        work_share = self._attribute_work(window, run)
        slack_entries = {}
        attribution = {}
        seconds = self.config.stream_config.seconds
        for qid, registration in self.registrations.items():
            slot = self.slots[qid]
            latency = run.query_latency_seconds(slot)
            goal = self._goals[qid]
            missed_abs, missed_rel = missed_latency(latency, goal)
            attributed = work_share.get(slot, 0.0)
            attribution[qid] = attributed
            queries[qid] = {
                "tenant": registration.tenant,
                "name": registration.name,
                "latency_seconds": latency,
                "goal_seconds": goal,
                "missed_seconds": missed_abs,
                "missed_relative": missed_rel,
                "attributed_work": attributed,
            }
            slack_entries[qid] = {
                "goal_work": self._constraints.get(slot, 0.0),
                "final_work": run.query_final_work.get(slot, 0.0),
                "eager_final_work": self._eager_final.get(slot),
            }
            bucket = tenants.setdefault(
                registration.tenant,
                {"work": 0.0, "queries": 0, "slo_misses": 0},
            )
            bucket["work"] += attributed
            bucket["queries"] += 1
            if missed_abs > 0:
                bucket["slo_misses"] += 1
        slack = self.slack.record_window(window, slack_entries, seconds=seconds)
        if self.use_feedback:
            self.model.apply_feedback(run, self.paces)
        if OBS.enabled:
            OBS.declog.log(
                "service_trigger", window=window,
                total_work=round(run.total_work, 4),
                queries=len(queries), reoptimized=reoptimized,
            )
            roll_up = self.slack.windows[-1][1]
            OBS.declog.log(
                "service_slack", window=window,
                min_headroom_work=roll_up["min_headroom_work"],
                missed=roll_up["missed"],
                projected_misses=roll_up["projected_misses"],
            )
            for qid in sorted(slack):
                OBS.metrics.histogram(
                    "service.slack.headroom_seconds"
                ).observe(slack[qid]["headroom_seconds"])
            for tenant, bucket in sorted(tenants.items()):
                OBS.metrics.counter(
                    "service.tenant.work", tenant=tenant
                ).inc(round(bucket["work"], 4))
                OBS.metrics.counter(
                    "service.tenant.slo_misses", tenant=tenant
                ).inc(bucket["slo_misses"])
        self.window += 1
        return TriggerOutcome(
            window, run.total_work, queries, tenants,
            reoptimized=reoptimized, run=run, slack=slack,
            attribution=attribution,
            conserved=not self.attribution.check_conservation(),
        )

    def _attribute_work(self, window, run):
        """Per-slot share of the measured work, conservation-exact.

        Each subplan's measured WorkMeter total is split across its
        beneficiary queries proportionally to their *calibrated solo
        cost* of that subplan (:meth:`PlanCostModel.solo_batch`'s
        per-subplan work) -- a heavy query sharing an operator with a
        light one pays most of the bill, as it would running alone.  The
        arithmetic runs in exact rationals
        (:mod:`repro.obs.attribution`): per window, the attributed
        shares sum *exactly* to the measured per-subplan totals.  This
        is the basis of the per-tenant fairness accounting.
        """
        solo_costs = {
            slot: self.model.solo_batch(slot)[1]
            for slot in self.slots.values()
        }
        tenant_of_slot = {
            self.slots[qid]: registration.tenant
            for qid, registration in self.registrations.items()
        }
        beneficiaries = {
            subplan.sid: subplan.query_ids() for subplan in self.plan.subplans
        }
        shares = self.attribution.record_window(
            window,
            run.subplan_total_work,
            lambda sid: beneficiaries.get(sid, ()),
            lambda sid, slot: solo_costs.get(slot, {}).get(sid, 0.0),
            tenant_of=tenant_of_slot.get,
        )
        return {slot: float(share) for slot, share in shares.items()}
