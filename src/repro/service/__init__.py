"""Long-running multi-tenant service mode (``python -m repro.service``).

See :mod:`repro.service.core` for the service itself,
:mod:`repro.service.schedule` for scripted churn schedules, and
:mod:`repro.harness.service` for the sharded multi-process driver.
"""

from .core import AdmissionDecision, QueryService, Registration, TriggerOutcome
from .schedule import DEMO_SCHEDULE, replay_schedule, validate_schedule

__all__ = [
    "AdmissionDecision",
    "QueryService",
    "Registration",
    "TriggerOutcome",
    "DEMO_SCHEDULE",
    "replay_schedule",
    "validate_schedule",
]
