"""Scripted churn schedules: JSON-native event streams for the service.

A schedule is one dict (JSON round-trippable, like fuzz cases)::

    {
      "workload": {"scale": 0.06, "seed": 100},     # TPC-H window factory
      "window_seconds": 60.0,   # simulated data-arrival period per trigger
      "windows": 4,             # total trigger firings
      "shards": 2,              # tenant shards (harness.service)
      "max_pace": 8,
      "admission": "reject",
      "tenant_budgets": {"gamma": 900.0},
      "events": [
        {"at": 0.0, "op": "register", "query_id": 0, "tenant": "alpha",
         "query": "Q1", "goal": 0.6},
        {"at": 130.0, "op": "deregister", "query_id": 0},
      ],
    }

The clock is event-driven: events are replayed in ``(at, position)``
order, and whenever the next event's timestamp crosses a window boundary
(multiples of ``window_seconds``) the due triggers fire first.  An event
therefore takes effect at the service *between* the windows its
timestamp falls between -- churn bursts inside one window coalesce into
a single re-optimization at the next trigger.
"""

from ..errors import ServiceError

_EVENT_OPS = ("register", "deregister")


def validate_schedule(schedule):
    """Structural validation; raises :class:`~repro.errors.ServiceError`.

    Returns the events sorted by ``(at, position)`` -- the replay order.
    """
    if not isinstance(schedule, dict):
        raise ServiceError("a schedule must be a dict, got %r" % type(schedule))
    windows = schedule.get("windows")
    if not isinstance(windows, int) or isinstance(windows, bool) or windows < 1:
        raise ServiceError(
            "schedule needs a positive integer 'windows', got %r" % (windows,)
        )
    window_seconds = schedule.get("window_seconds", 60.0)
    if not isinstance(window_seconds, (int, float)) or window_seconds <= 0:
        raise ServiceError(
            "schedule 'window_seconds' must be positive, got %r" % (window_seconds,)
        )
    events = schedule.get("events", [])
    if not isinstance(events, list):
        raise ServiceError("schedule 'events' must be a list")
    seen_registered = set()
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ServiceError("event %d is not a dict: %r" % (position, event))
        op = event.get("op")
        if op not in _EVENT_OPS:
            raise ServiceError(
                "event %d has unknown op %r (expected one of %s)"
                % (position, op, "/".join(_EVENT_OPS))
            )
        at = event.get("at")
        if not isinstance(at, (int, float)) or isinstance(at, bool) or at < 0:
            raise ServiceError(
                "event %d needs a non-negative 'at' timestamp, got %r"
                % (position, at)
            )
        qid = event.get("query_id")
        if not isinstance(qid, int) or isinstance(qid, bool) or qid < 0:
            raise ServiceError(
                "event %d needs a non-negative integer 'query_id', got %r"
                % (position, qid)
            )
        if op == "register":
            for field in ("tenant", "query"):
                if not isinstance(event.get(field), str) or not event[field]:
                    raise ServiceError(
                        "register event %d needs a non-empty %r" % (position, field)
                    )
            seen_registered.add(qid)
        else:
            if qid not in seen_registered:
                raise ServiceError(
                    "deregister event %d references query id %d that no "
                    "earlier event registered" % (position, qid)
                )
    return sorted(enumerate(events), key=lambda pair: (pair[1]["at"], pair[0]))


def tenant_of_events(events):
    """``{query_id: tenant}`` across a validated event list."""
    owners = {}
    for _, event in events:
        if event["op"] == "register":
            owners[event["query_id"]] = event["tenant"]
    return owners


def replay_schedule(service, schedule, build_query, collect_results=False):
    """Drive one :class:`~repro.service.core.QueryService` through a schedule.

    ``build_query`` is ``(name, query_id) -> Query`` (the tenant shard's
    query factory).  Fires every one of the schedule's ``windows``
    triggers; events apply between windows per their timestamps.  Returns
    ``(outcomes, decisions)`` with outcomes one per window.
    """
    ordered = validate_schedule(schedule)
    window_seconds = float(schedule.get("window_seconds", 60.0))
    total_windows = schedule["windows"]
    outcomes = []

    def fire_until(timestamp):
        while (
            len(outcomes) < total_windows
            and (len(outcomes) + 1) * window_seconds <= timestamp
        ):
            outcomes.append(service.run_window(collect_results=collect_results))

    for _, event in ordered:
        fire_until(event["at"])
        if event["op"] == "register":
            query = build_query(event["query"], event["query_id"])
            service.register(query, event["tenant"], event["goal"])
        else:
            service.deregister(event["query_id"])
    while len(outcomes) < total_windows:
        outcomes.append(service.run_window(collect_results=collect_results))
    return outcomes, list(service.decisions)


#: The scripted demo schedule `python -m repro.service` runs by default:
#: three tenants on a small TPC-H window stream; exercises incremental
#: re-optimization on register and deregister churn, a goal-unsatisfiable
#: rejection (query 4's absurd goal) and a tenant-budget rejection
#: (gamma's budget is below one query's solo work).
DEMO_SCHEDULE = {
    "workload": {"scale": 0.05, "seed": 100},
    "window_seconds": 60.0,
    "windows": 4,
    "shards": 2,
    "max_pace": 8,
    "admission": "reject",
    "tenant_budgets": {"gamma": 1.0},
    "events": [
        {"at": 0.0, "op": "register", "query_id": 0, "tenant": "alpha",
         "query": "Q1", "goal": 0.6},
        {"at": 5.0, "op": "register", "query_id": 1, "tenant": "alpha",
         "query": "Q6", "goal": 0.6},
        {"at": 10.0, "op": "register", "query_id": 2, "tenant": "beta",
         "query": "Q12", "goal": 0.5},
        {"at": 70.0, "op": "register", "query_id": 3, "tenant": "beta",
         "query": "Q18", "goal": 0.5},
        {"at": 75.0, "op": "register", "query_id": 4, "tenant": "alpha",
         "query": "Q14", "goal": 1e-9},
        {"at": 80.0, "op": "register", "query_id": 5, "tenant": "gamma",
         "query": "Q3", "goal": 0.8},
        {"at": 130.0, "op": "deregister", "query_id": 0},
        {"at": 190.0, "op": "register", "query_id": 6, "tenant": "alpha",
         "query": "Q19", "goal": 0.7},
    ],
}
