"""Command-line entry point for the long-running service mode.

Usage::

    python -m repro.service                        # built-in demo schedule
    python -m repro.service --schedule churn.json  # scripted churn schedule
    python -m repro.service --jobs 2 --out report.json

With no arguments the demo schedule (:data:`repro.service.schedule.DEMO_SCHEDULE`)
runs end-to-end: three tenants register and deregister TPC-H queries over
four trigger windows, incremental re-optimization fires on every churn
event, one registration is rejected for an unsatisfiable goal and one for
a tenant budget.  ``--jobs N`` runs tenant shards in worker processes;
the report is bit-identical to serial.

The report is printed as canonical JSON (sorted keys) so two runs can be
compared byte for byte.  ``--decision-log FILE`` additionally exports the
optimizer's decision log -- including the ``service_reoptimize`` records
showing which subplans each churn re-search reused versus recalibrated.

Telemetry exports (each enables observability, like ``--trace``):

* ``--telemetry FILE`` -- the exporter's JSON snapshot (summary, ring-
  buffered time series, slack ledger, attribution totals, regret);
* ``--prometheus FILE`` -- Prometheus text exposition (counters, gauges,
  ``_bucket{le=...}`` histogram series, service summary gauges);
* ``--dashboard FILE`` -- the static HTML dashboard (embeds the snapshot;
  round-trips through ``extract_dashboard_snapshot``);
* ``--regret FILE`` -- the per-decision regret report: every pace-search
  decision re-scored with the measured feedback factors;
* ``--serve [PORT]`` -- keep serving /metrics, /snapshot.json and the
  dashboard over HTTP after the replay (Ctrl-C to stop).
"""

import argparse
import json
import sys
import time

from .. import obs
from ..cost.cache import CalibrationCache, set_default_cache
from ..errors import ReproError
from ..harness.report import format_slack_table
from ..harness.service import run_service_schedule
from ..obs import OBS
from ..obs.export import TelemetryExporter, TelemetryServer, render_dashboard
from .schedule import DEMO_SCHEDULE


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a long-running multi-tenant service over a "
                    "scripted churn schedule.",
    )
    parser.add_argument("--schedule", default=None, metavar="FILE",
                        help="churn schedule JSON (default: built-in demo)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for tenant shards "
                             "(default 1 = serial, 0 = all cores)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the report JSON to FILE")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk calibration cache")
    parser.add_argument("--cache-dir", default=None,
                        help="calibration cache directory (default "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-calibration)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON of the run")
    parser.add_argument("--metrics", default=None, metavar="FILE",
                        help="write the final metrics snapshot as JSON")
    parser.add_argument("--decision-log", default=None, metavar="FILE",
                        help="write the optimizer decision log (JSON lines)")
    parser.add_argument("--telemetry", default=None, metavar="FILE",
                        help="write the telemetry exporter's JSON snapshot")
    parser.add_argument("--prometheus", default=None, metavar="FILE",
                        help="write the Prometheus text exposition")
    parser.add_argument("--dashboard", default=None, metavar="FILE",
                        help="write the static HTML telemetry dashboard")
    parser.add_argument("--regret", default=None, metavar="FILE",
                        help="write the pace-search regret report JSON")
    parser.add_argument("--serve", default=None, metavar="PORT", type=int,
                        nargs="?", const=0,
                        help="serve /metrics, /snapshot.json and the "
                             "dashboard over HTTP after the replay "
                             "(PORT 0 or omitted = ephemeral)")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="log the repro logger hierarchy to stderr")
    args = parser.parse_args(argv)

    if args.no_cache:
        set_default_cache(None)
    else:
        set_default_cache(CalibrationCache(args.cache_dir))

    telemetry_wanted = (
        args.telemetry or args.prometheus or args.dashboard
        or args.regret or args.serve is not None
    )
    if args.trace or args.metrics or args.decision_log or telemetry_wanted:
        obs.enable(process_name="repro-service")
    if args.log_level:
        obs.configure_logging(args.log_level)

    if args.schedule:
        try:
            with open(args.schedule) as handle:
                schedule = json.load(handle)
        except (OSError, ValueError) as exc:
            print("error: cannot read schedule %s: %s" % (args.schedule, exc),
                  file=sys.stderr)
            return 1
    else:
        schedule = DEMO_SCHEDULE

    started = time.monotonic()
    try:
        report = run_service_schedule(schedule, jobs=args.jobs)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    summary = report["summary"]
    print(
        "\n[%d shards, %d query-windows, SLO miss rate %.3f, "
        "work/query-window %.1f, admission %s, wall %.1fs]"
        % (
            report["schedule"]["shards"],
            summary["query_windows"],
            summary["slo_miss_rate"],
            summary["work_per_query_window"],
            summary["admission"],
            time.monotonic() - started,
        ),
        file=sys.stderr,
    )

    if OBS.enabled:
        if args.trace:
            OBS.tracer.export(args.trace)
        if args.metrics:
            with open(args.metrics, "w") as handle:
                json.dump(OBS.metrics.snapshot(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
        if args.decision_log:
            OBS.declog.export(args.decision_log)
            print(
                "[decision log: %d records -> %s]"
                % (len(OBS.declog.records), args.decision_log),
                file=sys.stderr,
            )
        if telemetry_wanted:
            exporter = _build_exporter(report)
            _write_telemetry(exporter, args)
            slack = report["summary"].get("slack") or {}
            print(
                "[slack: min headroom %s work, %s deferred, %d projected "
                "misses; attribution conserved: %s]"
                % (
                    _num(slack.get("min_headroom_work")),
                    _num(slack.get("deferred_work")),
                    slack.get("projected_misses", 0),
                    report["summary"].get("attribution_conserved"),
                ),
                file=sys.stderr,
            )
            print(format_slack_table(
                exporter.slack, title="Slack ledger (latest window per query)"
            ), file=sys.stderr)
            if args.serve is not None:
                server = TelemetryServer(exporter, port=args.serve)
                server.start()
                print("[telemetry server at %s -- Ctrl-C to stop]"
                      % server.url, file=sys.stderr)
                try:
                    while True:
                        time.sleep(3600)
                except KeyboardInterrupt:
                    pass
                finally:
                    server.stop()
    return 0


def _num(value):
    return "-" if value is None else "%.1f" % value


def _build_exporter(report):
    """Exporter over the merged report plus the session's obs state."""
    exporter = TelemetryExporter()
    exporter.ingest_report(report)
    exporter.ingest_metrics(OBS.metrics.snapshot())
    # each shard exported its measured feedback factors; the decision
    # log's run ids name the shard, so the regret oracle can re-score
    # every shard's decisions with its own factors
    feedback_by_run = {
        "shard-%d" % shard_report["shard"]: shard_report.get("feedback", {})
        for shard_report in report["shards"]
    }
    exporter.ingest_declog(OBS.declog.records, feedback_by_run=feedback_by_run)
    return exporter


def _write_telemetry(exporter, args):
    if args.telemetry:
        with open(args.telemetry, "w") as handle:
            json.dump(exporter.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.prometheus:
        with open(args.prometheus, "w") as handle:
            handle.write(exporter.prometheus())
    if args.dashboard:
        with open(args.dashboard, "w") as handle:
            handle.write(render_dashboard(exporter.snapshot()))
    if args.regret:
        with open(args.regret, "w") as handle:
            json.dump(exporter.regret, handle, indent=2, sort_keys=True)
            handle.write("\n")


if __name__ == "__main__":
    sys.exit(main())
