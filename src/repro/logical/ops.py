"""Logical operator trees.

A logical plan is an immutable tree over the operator set the paper's
shared execution engine supports (section 2.3): scan, select, project,
inner (equi-)join and group-by aggregate.  Each node derives its output
schema and exposes a *structural signature* used by the MQO optimizer's
sharability test: two subplans are sharable iff their signatures match,
where select predicates and project expressions are deliberately excluded
from the signature (they may differ between sharable plans and are merged
or marked, per section 2.3).
"""

from ..errors import PlanError
from ..relational.schema import Schema, Column, FLOAT, INT
from ..relational.expressions import Expression, AggSpec


class LogicalOp:
    """Base class for logical operators."""

    #: subclasses set this to their operator kind string
    kind = None

    def children(self):
        """The ordered child operators."""
        raise NotImplementedError

    @property
    def schema(self):
        """The output schema of this operator."""
        raise NotImplementedError

    def structural_signature(self):
        """Signature that ignores select predicates / project expressions.

        This is the sharability key of the MQO optimizer (section 2.3):
        "Two physical subplans are considered sharable if they have exactly
        the same structure and operators, with the exception of allowing
        their select and project operators to be different."
        """
        raise NotImplementedError

    def exact_signature(self):
        """Signature that includes every expression (full plan identity)."""
        raise NotImplementedError

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def operator_count(self):
        """Number of operators in this subtree."""
        return sum(1 for _ in self.walk())

    def is_blocking(self):
        """True for operators that pipeline-break (aggregates).

        NoShare-Nonuniform (section 5.2) breaks queries into subplans at
        blocking operators; this predicate defines those cut points.
        """
        return False


class Scan(LogicalOp):
    """Scan of a base relation (fed by the stream source)."""

    kind = "scan"

    def __init__(self, table_name, schema):
        if not isinstance(schema, Schema):
            raise PlanError("Scan needs the table schema, got %r" % (schema,))
        self.table_name = table_name
        self._schema = schema

    def children(self):
        return ()

    @property
    def schema(self):
        return self._schema

    def structural_signature(self):
        return "scan(%s)" % self.table_name

    def exact_signature(self):
        return self.structural_signature()

    def __repr__(self):
        return "Scan(%r)" % self.table_name


class Select(LogicalOp):
    """Filter by a boolean predicate."""

    kind = "select"

    def __init__(self, child, predicate):
        if not isinstance(predicate, Expression):
            raise PlanError("Select predicate must be an Expression, got %r" % (predicate,))
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    @property
    def schema(self):
        return self.child.schema

    def structural_signature(self):
        # Predicate deliberately excluded: differing selects are sharable.
        return "select[%s](%s)" % (
            ",".join(sorted(self.predicate.columns())),
            self.child.structural_signature(),
        )

    def exact_signature(self):
        return "select{%s}(%s)" % (
            self.predicate.signature(),
            self.child.exact_signature(),
        )

    def __repr__(self):
        return "Select(%r)" % (self.predicate,)


class Project(LogicalOp):
    """Compute output columns ``alias -> expression``."""

    kind = "project"

    def __init__(self, child, exprs):
        """``exprs`` is an ordered list of ``(alias, Expression)`` pairs."""
        exprs = tuple((alias, expr) for alias, expr in exprs)
        if not exprs:
            raise PlanError("Project needs at least one output expression")
        self.child = child
        self.exprs = exprs
        self._schema = Schema(tuple(Column(alias, FLOAT) for alias, _ in exprs))

    def children(self):
        return (self.child,)

    @property
    def schema(self):
        return self._schema

    def structural_signature(self):
        # Expressions deliberately excluded: differing projects are merged.
        return "project(%s)" % self.child.structural_signature()

    def exact_signature(self):
        body = ",".join("%s=%s" % (a, e.signature()) for a, e in self.exprs)
        return "project{%s}(%s)" % (body, self.child.exact_signature())

    def __repr__(self):
        return "Project(%s)" % ", ".join(alias for alias, _ in self.exprs)


class Join(LogicalOp):
    """Inner equi-join on key column lists."""

    kind = "join"

    def __init__(self, left, right, left_keys, right_keys):
        left_keys = tuple(left_keys)
        right_keys = tuple(right_keys)
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError(
                "Join needs equal-length non-empty key lists, got %r / %r"
                % (left_keys, right_keys)
            )
        for key in left_keys:
            left.schema.index_of(key)
        for key in right_keys:
            right.schema.index_of(key)
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self._schema = left.schema.concat(right.schema)

    def children(self):
        return (self.left, self.right)

    @property
    def schema(self):
        return self._schema

    def structural_signature(self):
        return "join[%s=%s](%s,%s)" % (
            ",".join(self.left_keys),
            ",".join(self.right_keys),
            self.left.structural_signature(),
            self.right.structural_signature(),
        )

    def exact_signature(self):
        return "join[%s=%s](%s,%s)" % (
            ",".join(self.left_keys),
            ",".join(self.right_keys),
            self.left.exact_signature(),
            self.right.exact_signature(),
        )

    def __repr__(self):
        return "Join(%s = %s)" % (self.left_keys, self.right_keys)


class Aggregate(LogicalOp):
    """Group-by aggregate; blocking."""

    kind = "aggregate"

    def __init__(self, child, group_by, aggs):
        group_by = tuple(group_by)
        aggs = tuple(aggs)
        if not aggs:
            raise PlanError("Aggregate needs at least one AggSpec")
        for spec in aggs:
            if not isinstance(spec, AggSpec):
                raise PlanError("Aggregate expects AggSpec entries, got %r" % (spec,))
        for name in group_by:
            child.schema.index_of(name)
        self.child = child
        self.group_by = group_by
        self.aggs = aggs
        columns = [child.schema.column(name) for name in group_by]
        columns += [
            Column(spec.alias, INT if spec.func == "count" else FLOAT) for spec in aggs
        ]
        self._schema = Schema(tuple(columns))

    def children(self):
        return (self.child,)

    @property
    def schema(self):
        return self._schema

    def is_blocking(self):
        return True

    def structural_signature(self):
        # Aggregates must match exactly to be sharable (only select/project
        # may differ), so the aggregate spec is part of the structure.
        return "agg[%s;%s](%s)" % (
            ",".join(self.group_by),
            ",".join(spec.signature() for spec in self.aggs),
            self.child.structural_signature(),
        )

    def exact_signature(self):
        return "agg[%s;%s](%s)" % (
            ",".join(self.group_by),
            ",".join(spec.signature() for spec in self.aggs),
            self.child.exact_signature(),
        )

    def __repr__(self):
        return "Aggregate(by=%s, %s)" % (
            list(self.group_by),
            [spec.alias for spec in self.aggs],
        )


class Query:
    """A named scheduled query: an id, a root plan, and display metadata.

    The final-work constraint is supplied separately at optimization time
    (:class:`repro.core.optimizer.QuerySpec`) because the same query can be
    re-optimized under different constraints.
    """

    __slots__ = ("query_id", "name", "root")

    def __init__(self, query_id, name, root):
        if not isinstance(root, LogicalOp):
            raise PlanError("Query root must be a LogicalOp, got %r" % (root,))
        self.query_id = query_id
        self.name = name
        self.root = root

    def __repr__(self):
        return "Query(%d, %r)" % (self.query_id, self.name)


def format_plan(op, indent=0):
    """Pretty-print a logical plan tree (debugging / examples)."""
    lines = ["%s%r" % ("  " * indent, op)]
    for child in op.children():
        lines.append(format_plan(child, indent + 1))
    return "\n".join(lines)
