"""Fluent builder for logical plans.

The builder is the primary programmatic frontend::

    plan = (
        PlanBuilder.scan(catalog, "lineitem")
        .where(col("l_quantity") > 10)
        .aggregate(["l_partkey"], [agg_sum(col("l_quantity"), "sum_qty")])
        .project([("l_partkey", col("l_partkey")), ("sum_qty", col("sum_qty"))])
        .build()
    )

Every combinator returns a new builder wrapping a new immutable logical
operator, so partial plans can be reused across queries (which is exactly
what makes sub-expressions shareable).
"""

from ..errors import PlanError
from ..relational.expressions import col
from .ops import Scan, Select, Project, Join, Aggregate, Query


class PlanBuilder:
    """Wraps a :class:`~repro.logical.ops.LogicalOp` and offers combinators."""

    __slots__ = ("op",)

    def __init__(self, op):
        self.op = op

    @classmethod
    def scan(cls, catalog, table_name):
        """Start a plan from a base table registered in ``catalog``."""
        table = catalog.get(table_name)
        return cls(Scan(table.name, table.schema))

    @classmethod
    def wrap(cls, op):
        """Wrap an existing logical operator."""
        return cls(op)

    def where(self, predicate):
        """Filter rows by ``predicate``."""
        return PlanBuilder(Select(self.op, predicate))

    def project(self, exprs):
        """Project to ``[(alias, expression), ...]``.

        Plain column names are accepted as shorthand for ``(name, col(name))``.
        """
        normalized = []
        for entry in exprs:
            if isinstance(entry, str):
                normalized.append((entry, col(entry)))
            else:
                alias, expr = entry
                normalized.append((alias, expr))
        return PlanBuilder(Project(self.op, normalized))

    def join(self, other, left_keys, right_keys=None):
        """Inner equi-join with another builder or logical op."""
        if isinstance(other, PlanBuilder):
            other = other.op
        if isinstance(left_keys, str):
            left_keys = [left_keys]
        if right_keys is None:
            right_keys = left_keys
        elif isinstance(right_keys, str):
            right_keys = [right_keys]
        return PlanBuilder(Join(self.op, other, left_keys, right_keys))

    def aggregate(self, group_by, aggs):
        """Group by ``group_by`` columns and compute ``aggs``."""
        if isinstance(group_by, str):
            group_by = [group_by]
        return PlanBuilder(Aggregate(self.op, group_by, aggs))

    def build(self):
        """Return the underlying logical operator tree."""
        return self.op

    def as_query(self, query_id, name):
        """Wrap the plan into a :class:`~repro.logical.ops.Query`."""
        return Query(query_id, name, self.op)

    @property
    def schema(self):
        return self.op.schema

    def __repr__(self):
        return "PlanBuilder(%r)" % (self.op,)


def scan(catalog, table_name):
    """Module-level shorthand for :meth:`PlanBuilder.scan`."""
    return PlanBuilder.scan(catalog, table_name)


def validate_query_ids(queries):
    """Check that a query batch has dense unique ids starting at 0.

    The shared execution engine indexes bitvector slots by query id, so a
    batch handed to the MQO optimizer must use ids ``0..N-1``.
    """
    seen = sorted(q.query_id for q in queries)
    expected = list(range(len(queries)))
    if seen != expected:
        raise PlanError(
            "query ids must be dense 0..N-1 for bitvector slots; got %r" % (seen,)
        )
