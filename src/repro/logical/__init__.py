"""Logical plans: operator trees, the fluent builder, signatures."""

from .ops import (
    LogicalOp,
    Scan,
    Select,
    Project,
    Join,
    Aggregate,
    Query,
    format_plan,
)
from .builder import PlanBuilder, scan, validate_query_ids

__all__ = [
    "LogicalOp",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "Query",
    "format_plan",
    "PlanBuilder",
    "scan",
    "validate_query_ids",
]
