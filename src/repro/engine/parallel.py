"""Intra-trigger parallelism: independent subplan components in processes.

A shared plan's subplans form a dependency DAG (parents read their
children's buffers), and with shared arrangements enabled two otherwise
independent subplans may also share one ``(table, key columns)`` join
index (:mod:`repro.engine.arrangements`).  :func:`plan_components`
partitions the subplans into *components* -- the connected components of
the union of those two edge sets.  Components never exchange data, never
touch each other's operator state, and never co-own an arrangement, so
one trigger window can execute them concurrently.

:func:`run_parallel` fans the components out over a
``ProcessPoolExecutor`` (the :mod:`repro.harness.parallel` pattern: the
plan ships once per worker via the pool initializer, tasks are tiny sid
lists).  Each worker compiles and runs *only* its component
(``PlanExecutor(plan, only=sids)``), rebuilding its own table streams
from the catalog -- base-table delta streams are a seeded simulation, so
every worker sees byte-identical table contents without sharing state.

Determinism contract (enforced by ``tests/test_intra_trigger_parallel``
and the fuzz-adjacent CI step): ``run_parallel(jobs=N)`` returns a
:class:`~repro.engine.metrics.RunResult` *bit-identical* to the serial
``PlanExecutor.run`` -- query results, total work, every execution
record, subplan final work, and the arrangement summary.  Three pieces
make that hold:

* every per-subplan WorkMeter charge happens inside exactly one worker,
  in the same operator order as the serial run, so each record's
  ``work``/``latency_work`` floats are the serial ones;
* the driver replays the merged records through
  ``RunResult.add_record`` in the serial schedule order -- ascending
  trigger fraction, then subplan topological position -- so the float
  accumulation sequence behind ``total_work`` is the serial one;
* per-worker arrangement summaries merge by the same sorted
  ``(table, key columns)`` order ``ArrangementStore.summary`` uses.

``jobs=1`` (and a single-component plan) bypasses multiprocessing
entirely and runs the exact serial path.  Observability payloads, when
enabled, are drained per worker and absorbed in component order --
deterministic at a fixed job count, exactly like the harness sweeps.
"""

from concurrent.futures import ProcessPoolExecutor
from fractions import Fraction

from .. import obs
from ..errors import ReproError
from ..harness.parallel import _CapturedError, _reraise, resolve_jobs
from ..physical.hotpath import HOTPATH
from .arrangements import arrangeable_side
from .executor import PlanExecutor
from .metrics import ExecutionRecord, RunResult
from .stream import StreamConfig


def _walk(node):
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children)


def plan_components(plan):
    """Partition the plan's subplans into independent components.

    Returns a list of sid lists; each inner list is in topological
    order, and the components are ordered by their first subplan's
    topological position.  Two subplans land in one component when they
    are dependency-connected or when any of their joins would share an
    arrangement (same ``(table, key columns)`` -- computed from the plan
    shape alone, so the partition is identical with arrangements on or
    off; grouping a little coarsely is always safe).
    """
    order = plan.topological_order()
    parent = {subplan.sid: subplan.sid for subplan in order}

    def find(sid):
        root = sid
        while parent[root] != root:
            root = parent[root]
        while parent[sid] != root:
            parent[sid], sid = root, parent[sid]
        return root

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    arrangement_owner = {}
    for subplan in order:
        for child in subplan.child_subplans():
            union(subplan.sid, child.sid)
        for node in _walk(subplan.root):
            if node.kind != "join":
                continue
            for side in (0, 1):
                spec = arrangeable_side(node, side)
                if spec is None:
                    continue
                table_name, key_indexes = spec
                key = (table_name, tuple(key_indexes))
                owner = arrangement_owner.get(key)
                if owner is None:
                    arrangement_owner[key] = subplan.sid
                else:
                    union(owner, subplan.sid)

    groups = {}
    for subplan in order:  # topological order within and across groups
        groups.setdefault(find(subplan.sid), []).append(subplan.sid)
    return list(groups.values())


# -- worker side ----------------------------------------------------------------

_WORKER = None


def _init_worker(plan, stream_config, stats_mode, toggles, obs_enabled):
    """Receive the plan once; component tasks then arrive as sid lists."""
    global _WORKER
    import os

    (HOTPATH.batched, HOTPATH.compile_cache, HOTPATH.reuse_trees,
     HOTPATH.columnar, HOTPATH.arrangements, HOTPATH.fusion) = toggles
    # a forked worker inherits the driver's enabled observability session
    # (parent pid, collected events) -- always start from a clean slate
    obs.disable()
    if obs_enabled:
        obs.enable(process_name="repro-engine-worker-%d" % os.getpid())
    _WORKER = (plan, stream_config, stats_mode)


def _run_component(index, sids, pace_config, collect_results):
    plan, stream_config, stats_mode = _WORKER
    if obs.OBS.enabled:
        obs.OBS.declog.set_run("component-%d" % index)
    try:
        executor = PlanExecutor(plan, stream_config, stats_mode, only=sids)
        result = executor.run(pace_config, collect_results=collect_results)
        payload = {
            "records": [
                (r.sid, r.fraction, r.work, r.output_count, r.latency_work)
                for r in result.records
            ],
            "query_results": dict(result.query_results),
            "arrangement_summary": result.metadata.get("arrangement_summary"),
        }
    except ReproError as exc:
        payload = _CapturedError(exc)
    return index, payload, obs.drain_worker_payload()


# -- driver side ----------------------------------------------------------------

def run_parallel(plan, pace_config, stream_config=None, jobs=1,
                 collect_results=True, stats_mode=False):
    """Execute ``plan`` under ``pace_config``, components in parallel.

    Bit-identical to ``PlanExecutor(plan, stream_config).run(...)`` at
    every job count; ``jobs=1`` *is* that serial call.  ``jobs=0`` means
    one worker per core (``resolve_jobs``), capped at the component
    count.
    """
    stream_config = stream_config or StreamConfig()
    jobs = resolve_jobs(jobs)
    components = plan_components(plan)
    if jobs <= 1 or len(components) <= 1:
        executor = PlanExecutor(plan, stream_config, stats_mode)
        return executor.run(pace_config, collect_results=collect_results)

    # fail fast on bad paces in the driver, not inside a worker
    serial = PlanExecutor(plan, stream_config, stats_mode)
    serial._validate_paces(pace_config)

    toggles = (HOTPATH.batched, HOTPATH.compile_cache, HOTPATH.reuse_trees,
               HOTPATH.columnar, HOTPATH.arrangements, HOTPATH.fusion)
    observing = obs.is_enabled()
    workers = min(jobs, len(components))
    payloads = [None] * len(components)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(plan, stream_config, stats_mode, toggles, observing),
    ) as pool:
        futures = [
            pool.submit(_run_component, index, sids, pace_config,
                        collect_results)
            for index, sids in enumerate(components)
        ]
        for future in futures:
            index, payload, obs_payload = future.result()
            payloads[index] = (payload, obs_payload)

    # absorb observability and surface errors in component (= submission)
    # order, so the merged trace and the failing component are stable
    merged = []
    for payload, obs_payload in payloads:
        obs.absorb_worker_payload(obs_payload)
        if isinstance(payload, _CapturedError):
            _reraise(payload)
        merged.append(payload)

    return _merge(plan, pace_config, stream_config, serial, merged,
                  collect_results)


def _merge(plan, pace_config, stream_config, serial, payloads,
           collect_results):
    """Reassemble one serial-identical RunResult from component payloads."""
    order = plan.topological_order()
    position = {subplan.sid: index for index, subplan in enumerate(order)}

    by_slot = {}
    query_results = {}
    summaries = []
    for payload in payloads:
        for sid, fraction, work, output_count, latency_work in payload["records"]:
            by_slot[(fraction, position[sid])] = (
                sid, fraction, work, output_count, latency_work
            )
        query_results.update(payload["query_results"])
        if payload["arrangement_summary"]:
            summaries.append(payload["arrangement_summary"])

    result = RunResult(pace_config, stream_config)
    columnar = serial._columnar_active()
    if columnar:
        result.metadata["engine_mode"] = "columnar"
    else:
        result.metadata["engine_mode"] = (
            "batched" if HOTPATH.batched else "reference"
        )
    result.metadata["columnar"] = bool(columnar)

    one = Fraction(1)
    # serial schedule order: ascending fraction, topological position
    # within a trigger point -- the accumulation order behind total_work
    for key in sorted(by_slot):
        sid, fraction, work, output_count, latency_work = by_slot[key]
        result.add_record(
            ExecutionRecord(sid, fraction, work, output_count, latency_work),
            is_final=(fraction == one),
        )

    infos = [info for summary in summaries for info in summary["arrangements"]]
    result.metadata["arrangements"] = bool(HOTPATH.arrangements and infos)
    if infos:
        # ArrangementStore.summary() orders by sorted (table, keys); the
        # components own disjoint arrangements, so re-sorting the merged
        # records reproduces the serial summary exactly
        infos.sort(key=lambda info: (info["table"], tuple(info["key_columns"])))
        resident = sum(info["resident_entries"] for info in infos)
        maintenance = sum(info["maintenance_ops"] for info in infos)
        private = sum(info["private_ops"] for info in infos)
        result.metadata["arrangement_summary"] = {
            "arrangements": infos,
            "resident_entries": resident,
            "maintenance_ops": maintenance,
            "private_ops": private,
            "shared_ops_saved": private - maintenance,
        }

    for qid in plan.query_roots:
        final = sum(
            result.subplan_final_work.get(subplan.sid, 0.0)
            for subplan in plan.subplans_of_query(qid)
        )
        result.query_final_work[qid] = final
        if collect_results:
            result.query_results[qid] = query_results[qid]
    return result
