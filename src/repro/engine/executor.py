"""The pace-driven incremental executor.

Given a :class:`~repro.mqo.nodes.SharedQueryPlan` and a pace
configuration, the executor simulates the loading window: at every system
progress fraction where some subplan is due, newly arrived base-table
deltas are appended to the table logs and the due subplans run one
incremental execution each, children before parents (paper section 5.1).
Subplan outputs are materialized into buffers that parents drain at their
own offsets.

All state (hash tables, aggregate groups, buffer offsets) persists across
the incremental executions of one run; a new :meth:`PlanExecutor.run`
starts from scratch.  With :data:`~repro.physical.hotpath.HOTPATH`
``reuse_trees`` enabled (the default) "from scratch" reuses the compiled
operator tree -- state is deterministically reset instead of rebuilt, so
repeated runs of one executor (pace search nudging, two-phase baselines,
calibration) stop re-paying compilation.  Between trigger points the
executor also compacts drained buffer prefixes in place; query-root
buffers are pinned because :func:`query_result_view` replays them.
"""

from fractions import Fraction
from time import perf_counter

from ..errors import ExecutionError
from ..mqo.nodes import SubplanRef, TableRef
from ..obs import OBS
from ..physical.hotpath import (
    HOTPATH,
    columnar_available,
    compile_cache_stats,
)
from ..physical.operators import AggregateExec, JoinExec, SourceExec
from ..physical.work import WorkMeter
from ..relational.tuples import consolidate
from .arrangements import ArrangementStore, arrangeable_side
from .buffers import Buffer
from .metrics import ExecutionRecord, RunResult
from .stream import StreamConfig, TableStream, execution_fractions


class CompiledSubplan:
    """A subplan's physical operator tree plus its work meter and buffer."""

    __slots__ = ("subplan", "meter", "root_exec", "buffer", "executions")

    def __init__(self, subplan, meter, root_exec, buffer):
        self.subplan = subplan
        self.meter = meter
        self.root_exec = root_exec
        self.buffer = buffer
        self.executions = 0

    def run_execution(self, overhead):
        """One incremental execution.

        Returns ``(work, latency_work, output_deltas)``; ``latency_work``
        excludes the post-emission state-store maintenance charge.

        Work is computed from the meter's *component* deltas, not as a
        difference of ``meter.total`` snapshots: subtracting two mixed
        int+float totals rounds differently from subtracting the state
        units alone, which used to drive ``latency_work`` a few ulps
        negative on executions that only did state maintenance (found by
        the fuzzer's WorkMeter-invariant oracle).
        """
        meter = self.meter
        tuple_before = meter.input_units + meter.output_units + meter.rescan_units
        state_before = meter.state_units
        out = self.root_exec.advance()
        if type(out) is list:
            self.buffer.append(out)
        else:
            # columnar root: the batch goes into the buffer as a pending
            # segment; deltas materialize only if a non-columnar consumer
            # (a batched reader, query_result_view) actually needs them
            self.buffer.append_segment(out)
        self.executions += 1
        tuple_delta = (
            meter.input_units + meter.output_units + meter.rescan_units
            - tuple_before
        )
        latency_work = tuple_delta + overhead
        work = latency_work + (meter.state_units - state_before)
        return work, latency_work, out


class PlanExecutor:
    """Executes a shared plan under pace configurations."""

    def __init__(self, plan, stream_config=None, stats_mode=False, catalog=None,
                 only=None):
        self.plan = plan
        self.stream_config = stream_config or StreamConfig()
        self.stats_mode = stats_mode
        #: optional catalog override: execute the same plan against a
        #: different day's data (recurring queries re-run over each new
        #: trigger window while the plan/statistics come from history)
        self.catalog = catalog or plan.catalog
        #: optional restriction to a subset of subplan sids (an
        #: intra-trigger parallel worker's component,
        #: :mod:`repro.engine.parallel`).  The subset must be closed
        #: under subplan dependencies; only the included subplans are
        #: compiled, scheduled, and reported.
        self.only = frozenset(only) if only is not None else None
        self.compiled = None  # filled per run
        self._runtime = None  # reusable compiled tree (HOTPATH.reuse_trees)
        self._runtime_columnar = None  # backend the cached tree was built for
        self._runtime_arranged = None  # arrangements toggle at compile time
        self._runtime_fused = None  # fusion toggle at compile time

    def rebind(self, plan=None, catalog=None):
        """Swap the plan and/or catalog this executor runs.

        Long-running services re-optimize on churn and advance the data
        window between trigger firings; rebinding keeps one executor
        alive across both.  The cached runtime tree is invalidated only
        when something actually changed, so consecutive triggers over an
        unchanged plan+window still reuse it.  Returns whether a
        recompile was scheduled.
        """
        changed = False
        if plan is not None and plan is not self.plan:
            self.plan = plan
            changed = True
        if catalog is not None and catalog is not self.catalog:
            self.catalog = catalog
            changed = True
        if changed:
            self._runtime = None
            self.compiled = None
        return changed

    # -- compilation ---------------------------------------------------------

    def _columnar_active(self):
        """Whether this plan compiles to the columnar backend right now.

        Requires the mode toggle, an importable NumPy (and no kill
        switch), and every query id below 62 so bitvectors fit the
        int64 ``bits`` array (``~0`` table bitvectors are ``-1``, which
        ANDs correctly in two's complement).
        """
        return (
            HOTPATH.columnar
            and columnar_available()
            and max(self.plan.query_roots, default=0) < 62
        )

    def _included(self, sid):
        return self.only is None or sid in self.only

    def _compile(self):
        self._runtime_columnar = self._columnar_active()
        self._runtime_arranged = bool(HOTPATH.arrangements)
        self._runtime_fused = bool(HOTPATH.fusion)
        order = [
            subplan for subplan in self.plan.topological_order()
            if self._included(subplan.sid)
        ]
        table_streams = {}
        table_buffers = {}
        for subplan in order:
            for name in subplan.base_tables():
                if name not in table_buffers:
                    table = self.catalog.get(name)
                    table_streams[name] = TableStream(table)
                    table_buffers[name] = Buffer("table:%s" % name)
        compiled = {}
        store = ArrangementStore()
        for subplan in order:
            meter = WorkMeter()
            root_exec = self._compile_node(
                subplan.root, subplan, meter, table_buffers, compiled, store
            )
            buffer = Buffer("subplan:%d" % subplan.sid)
            compiled[subplan.sid] = CompiledSubplan(subplan, meter, root_exec, buffer)
        # query-root buffers are replayed from offset 0 by query_result_view
        for root in self.plan.query_roots.values():
            if root.sid in compiled:
                compiled[root.sid].buffer.pinned = True
        return table_streams, table_buffers, compiled, order, store

    def _ensure_compiled(self):
        """The runtime tuple, reusing the previous run's tree when allowed.

        Reuse resets all mutable state (streams, buffers, reader offsets,
        meters, hash tables, aggregate groups, stats counters) so a reused
        tree is indistinguishable from a freshly compiled one.
        """
        if (
            HOTPATH.reuse_trees
            and self._runtime is not None
            and self._runtime_columnar == self._columnar_active()
            and self._runtime_arranged == bool(HOTPATH.arrangements)
            and self._runtime_fused == bool(HOTPATH.fusion)
        ):
            table_streams, table_buffers, compiled, order, store = self._runtime
            for stream in table_streams.values():
                stream.reset()
            for buffer in table_buffers.values():
                buffer.reset()
            store.reset()
            for unit in compiled.values():
                unit.buffer.reset()
                unit.meter.reset()
                unit.root_exec.reset()
                unit.executions = 0
            if OBS.enabled:
                OBS.metrics.counter("engine.tree_reuse").inc()
            return self._runtime
        runtime = self._compile()
        if HOTPATH.reuse_trees:
            self._runtime = runtime
        return runtime

    def _compile_node(self, node, subplan, meter, table_buffers, compiled,
                      store):
        mask = subplan.query_mask
        if self._runtime_columnar:
            from ..physical.columnar import (
                ColumnarAggregateExec as aggregate_cls,
                ColumnarJoinExec as join_cls,
                ColumnarSourceExec as source_cls,
            )
        else:
            source_cls = SourceExec
            join_cls = JoinExec
            aggregate_cls = AggregateExec
        if node.kind == "source":
            ref = node.ref
            consolidate_reads = False
            if isinstance(ref, TableRef):
                reader = table_buffers[ref.name].reader()
            elif isinstance(ref, SubplanRef):
                child = compiled.get(ref.subplan.sid)
                if child is None:
                    raise ExecutionError(
                        "subplan %d compiled before its child %d"
                        % (subplan.sid, ref.subplan.sid)
                    )
                reader = child.buffer.reader()
                # compacted inter-subplan buffers (ablation-toggleable)
                consolidate_reads = self.stream_config.compact_buffers
            else:
                raise ExecutionError("unknown source ref %r" % (ref,))
            return source_cls(
                node, reader, mask, meter, self.stats_mode,
                consolidate_reads=consolidate_reads,
            )
        children = [
            self._compile_node(child, subplan, meter, table_buffers, compiled,
                               store)
            for child in node.children
        ]
        state_factor = self.stream_config.state_factor
        if node.kind == "join":
            join = join_cls(
                node, children[0], children[1], meter, self.stats_mode,
                state_factor=state_factor,
            )
            if self._runtime_arranged:
                for side in (0, 1):
                    spec = arrangeable_side(node, side)
                    if spec is not None:
                        table_name, key_indexes = spec
                        handle = store.handle(
                            table_name, key_indexes,
                            table_buffers[table_name], subplan.sid,
                            "join:%d" % node.uid,
                        )
                        join.attach_arrangement(side, handle)
            return join
        return aggregate_cls(
            node, children[0], mask, meter, self.stats_mode,
            state_factor=state_factor,
        )

    # -- execution -------------------------------------------------------------

    def run(self, pace_config, collect_results=True):
        """Execute the plan under ``pace_config`` (``{sid: pace}``).

        Returns a :class:`~repro.engine.metrics.RunResult`.
        """
        self._validate_paces(pace_config)
        fractions = {
            subplan.sid: execution_fractions(pace_config[subplan.sid])
            for subplan in self.plan.subplans
            if self._included(subplan.sid)
        }
        return self.run_schedule(fractions, pace_config, collect_results)

    def run_schedule(self, fractions, pace_config=None, collect_results=True):
        """Execute with explicit per-subplan execution fractions.

        ``fractions`` maps subplan id to an ascending list of progress
        fractions in ``(0, 1]``; every subplan must include an execution
        at 1 (the trigger point).  This generalizes pace-based runs --
        e.g. the paper's "simple approach" baseline executes once before
        the trigger and once at it.
        """
        table_streams, table_buffers, compiled, order, store = (
            self._ensure_compiled()
        )
        self.compiled = compiled

        one = Fraction(1)
        schedule = {}
        for subplan in order:
            if subplan.sid not in fractions:
                raise ExecutionError(
                    "no execution fractions for subplan %d" % subplan.sid
                )
            points = [Fraction(f) for f in fractions[subplan.sid]]
            if not points or points[-1] != one:
                raise ExecutionError(
                    "subplan %d must execute at the trigger point" % subplan.sid
                )
            previous = None
            for fraction in points:
                if fraction <= 0 or fraction > one:
                    raise ExecutionError(
                        "subplan %d execution fraction %s outside (0, 1]"
                        % (subplan.sid, fraction)
                    )
                if previous is not None and fraction <= previous:
                    raise ExecutionError(
                        "subplan %d execution fractions must be strictly "
                        "ascending, got %s after %s"
                        % (subplan.sid, fraction, previous)
                    )
                previous = fraction
                schedule.setdefault(fraction, []).append(subplan.sid)

        if pace_config is None:
            pace_config = {sid: len(points) for sid, points in fractions.items()}
        result = RunResult(pace_config, self.stream_config)
        if self._runtime_columnar:
            result.metadata["engine_mode"] = "columnar"
        else:
            # the plan may fall back (kill switch, >=62 query ids), so
            # record what actually ran, not what was requested
            result.metadata["engine_mode"] = (
                "batched" if HOTPATH.batched else "reference"
            )
        result.metadata["columnar"] = bool(self._runtime_columnar)
        result.metadata["arrangements"] = bool(
            self._runtime_arranged and len(store)
        )
        overhead = self.stream_config.execution_overhead
        run_start_us = OBS.tracer.now_us() if OBS.enabled else 0.0
        columnar_ingest = self._runtime_columnar
        for fraction in sorted(schedule):
            for name, stream in table_streams.items():
                if columnar_ingest:
                    # one shared columnar segment per (table, fraction):
                    # all readers of the buffer see the same batch object
                    # and share its lazy column materialization
                    segment = stream.batch_until(fraction)
                    if segment is not None:
                        table_buffers[name].append_segment(segment)
                else:
                    new_deltas = stream.deltas_until(fraction)
                    if new_deltas:
                        table_buffers[name].append(new_deltas)
            due = set(schedule[fraction])
            for subplan in order:  # child-first within one trigger point
                if subplan.sid not in due:
                    continue
                unit = compiled[subplan.sid]
                if OBS.enabled:
                    work, latency_work, out = _observed_execution(
                        unit, overhead, fraction
                    )
                else:
                    work, latency_work, out = unit.run_execution(overhead)
                record = ExecutionRecord(
                    subplan.sid, fraction, work, len(out), latency_work
                )
                result.add_record(record, is_final=(fraction == one))
            # memory-only: drop drained prefixes (pinned/unread buffers
            # skip themselves); logical offsets and work are unaffected
            for buffer in table_buffers.values():
                buffer.compact()
            for unit in compiled.values():
                unit.buffer.compact()
        if OBS.enabled:
            OBS.tracer.complete("engine.run", run_start_us, {
                "subplans": len(order),
                "executions": len(result.records),
                "total_work": round(result.total_work, 2),
            })
            OBS.metrics.histogram("engine.run.seconds").observe(
                (OBS.tracer.now_us() - run_start_us) / 1e6
            )
            OBS.metrics.gauge("engine.compile_cache.hits").set(
                compile_cache_stats["hits"]
            )
            OBS.metrics.gauge("engine.compile_cache.misses").set(
                compile_cache_stats["misses"]
            )
        if len(store):
            summary = store.summary()
            result.metadata["arrangement_summary"] = summary
            if OBS.enabled:
                metrics = OBS.metrics
                metrics.gauge("engine.arrangement.resident_entries").set(
                    summary["resident_entries"]
                )
                metrics.counter("engine.arrangement.maintenance_ops").inc(
                    summary["maintenance_ops"]
                )
                # per-reader work a private table would have paid minus
                # what the shared index actually applied
                metrics.counter("engine.arrangement.reused_ops").inc(
                    summary["shared_ops_saved"]
                )
                for info in summary["arrangements"]:
                    metrics.gauge(
                        "engine.arrangement.reader_lag", table=info["table"]
                    ).set(info["reader_lag"])

        for qid, root in self.plan.query_roots.items():
            if root.sid not in compiled:
                continue
            final = sum(
                result.subplan_final_work.get(subplan.sid, 0.0)
                for subplan in self.plan.subplans_of_query(qid)
            )
            result.query_final_work[qid] = final
            if collect_results:
                result.query_results[qid] = query_result_view(
                    self.plan, qid, compiled[root.sid].buffer.materialize()
                )
        return result

    def _validate_paces(self, pace_config):
        for subplan in self.plan.subplans:
            if not self._included(subplan.sid):
                continue
            if subplan.sid not in pace_config:
                raise ExecutionError("no pace for subplan %d" % subplan.sid)
            pace = pace_config[subplan.sid]
            for child in subplan.child_subplans():
                if pace_config[child.sid] < pace:
                    raise ExecutionError(
                        "parent subplan %d pace %d exceeds child %d pace %d"
                        % (subplan.sid, pace, child.sid, pace_config[child.sid])
                    )


def _observed_execution(unit, overhead, fraction):
    """One incremental execution under a span, with WorkMeter delta metrics.

    Only called when observability is enabled; the disabled hot path calls
    ``unit.run_execution`` directly behind a single guard check.
    """
    meter = unit.meter
    before_in = meter.input_units
    before_out = meter.output_units
    before_rescan = meter.rescan_units
    before_state = meter.state_units
    sid = unit.subplan.sid
    span = OBS.tracer.span("engine.execute", sid=sid, fraction=str(fraction))
    started = perf_counter()
    with span:
        work, latency_work, out = unit.run_execution(overhead)
        span.set(work=round(work, 2), outputs=len(out))
    elapsed = perf_counter() - started
    metrics = OBS.metrics
    # wall seconds of one incremental execution: sub-millisecond at toy
    # scales, resolved by the registry's microsecond-deep buckets
    metrics.histogram("engine.execution.seconds").observe(elapsed)
    metrics.counter("engine.executions").inc()
    metrics.counter("engine.subplan.executions", sid=sid).inc()
    for kind, delta in (
        ("input", meter.input_units - before_in),
        ("output", meter.output_units - before_out),
        ("rescan", meter.rescan_units - before_rescan),
        ("state", meter.state_units - before_state),
    ):
        if delta:
            metrics.counter("engine.subplan.work_units", sid=sid, kind=kind).inc(delta)
    metrics.histogram("engine.execution.work").observe(work)
    return work, latency_work, out


def query_result_view(plan, query_id, root_deltas):
    """Net result multiset ``{row: count}`` of one query from its root buffer.

    Filters the buffer by the query's bit, consolidates retractions, and
    projects the shared union schema down to the query's own output
    columns (the per-query projection recorded at the root node).
    """
    root_subplan = plan.query_roots[query_id]
    node = root_subplan.root
    out_schema = node.out_schema
    projection = node.projections.get(query_id)
    if projection is not None:
        names = [alias for alias, _ in projection]
    else:
        names = list(node.core_schema.names())
    indexes = [out_schema.index_of(name) for name in names]

    mask = 1 << query_id
    relevant = [d for d in root_deltas if d.bits & mask]
    net = {}
    for delta in consolidate(relevant):
        projected = tuple(delta.row[i] for i in indexes)
        net[projected] = net.get(projected, 0) + delta.sign
        if net[projected] == 0:
            del net[projected]
    return net
