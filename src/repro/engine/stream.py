"""Stream source: simulated data arrival under a trigger condition.

The paper's prototype preloads the dataset into Kafka and pulls it at a
fixed rate (100 MB/min over a 3000 s window at SF 5).  We reproduce the
semantics: every base table's full content for one trigger condition is
known up front, and at system progress fraction ``f`` the table's delta
log contains the first ``floor(f * N)`` rows as insertions.  All tables
fill proportionally, matching the paper's fixed arrival-rate assumption
(section 2.1).
"""

from fractions import Fraction

from ..relational.tuples import Delta, INSERT


class StreamConfig:
    """Timing parameters of the simulated load.

    Parameters
    ----------
    load_seconds:
        wall-clock length of the loading window (paper: 3000 s).
    work_rate:
        work units executed per second; converts measured work units into
        the seconds the paper reports.  Absolute seconds are a linear
        rescaling and do not affect any comparison shape.
    execution_overhead:
        fixed work units charged per incremental execution of a subplan
        (the job-start cost the paper mitigates with Drizzle [47]; kept
        small but non-zero so infinitely eager execution is never free).
    state_factor:
        per-execution state-maintenance charge: every incremental
        execution of a stateful operator (join hash tables, aggregate
        groups) pays ``state_factor`` work units per live state entry.
        This models the per-micro-batch state-store maintenance of the
        paper's Spark substrate -- the physical reason eager incremental
        execution costs more than batch (paper Figure 1).
    compact_buffers:
        when True (default), inter-subplan buffers behave like compacted
        Kafka topics: churn that cancels within a consumer's unread window
        is never processed.  Turning it off is an ablation switch -- lazy
        parents then re-process all upstream churn and delaying subplans
        stops saving work.
    """

    __slots__ = ("load_seconds", "work_rate", "execution_overhead",
                 "state_factor", "compact_buffers")

    def __init__(self, load_seconds=3000.0, work_rate=10000.0, execution_overhead=1.0,
                 state_factor=0.3, compact_buffers=True):
        self.load_seconds = float(load_seconds)
        self.work_rate = float(work_rate)
        self.execution_overhead = float(execution_overhead)
        self.state_factor = float(state_factor)
        self.compact_buffers = bool(compact_buffers)
        if self.load_seconds <= 0:
            raise ValueError(
                "load_seconds must be positive, got %r" % (load_seconds,)
            )
        if self.work_rate <= 0:
            raise ValueError("work_rate must be positive, got %r" % (work_rate,))
        if self.execution_overhead < 0:
            raise ValueError(
                "execution_overhead must be non-negative, got %r"
                % (execution_overhead,)
            )
        if self.state_factor < 0:
            raise ValueError(
                "state_factor must be non-negative, got %r" % (state_factor,)
            )

    def seconds(self, work_units):
        """Convert work units to seconds."""
        return work_units / self.work_rate

    def __repr__(self):
        return (
            "StreamConfig(load=%.0fs, rate=%.0f/s, overhead=%.1f, "
            "state_factor=%.2f, compact_buffers=%s)"
            % (
                self.load_seconds,
                self.work_rate,
                self.execution_overhead,
                self.state_factor,
                self.compact_buffers,
            )
        )


class TableStream:
    """The arrival schedule of one base table.

    Replays the table's delta log -- pure insertions for ordinary tables,
    or the recorded insert/delete/update sequence for tables with churn
    (section 2.3 supports all three on inputs).
    """

    __slots__ = ("table", "log", "delivered")

    def __init__(self, table):
        self.table = table
        self.log = table.delta_log()
        self.delivered = 0

    def total_rows(self):
        return len(self.log)

    def deltas_until(self, fraction):
        """New deltas to reach progress ``fraction`` (a Fraction)."""
        target = int(fraction * len(self.log))
        if fraction >= 1:
            target = len(self.log)
        if target <= self.delivered:
            return []
        new = self.log[self.delivered:target]
        self.delivered = target
        return [Delta(row, sign, ~0) for row, sign in new]

    def batch_until(self, fraction):
        """Columnar twin of :meth:`deltas_until`: one shared segment.

        Builds a single row-backed :class:`~repro.engine.columns
        .ColumnBatch` straight from the delta log -- no per-row
        :class:`Delta` allocation -- carrying the same ``(row, sign,
        ~0)`` content.  The executor appends it to the table buffer as a
        columnar segment, so *every* subplan reading the table shares
        one batch object (and its lazily materialized column cache)
        instead of each rebuilding arrays from a private delta list.
        Returns ``None`` when no new rows arrive.  Only called on the
        columnar path, where NumPy is known importable.
        """
        from .columns import ColumnBatch, np

        target = int(fraction * len(self.log))
        if fraction >= 1:
            target = len(self.log)
        if target <= self.delivered:
            return None
        new = self.log[self.delivered:target]
        self.delivered = target
        n = len(new)
        rows = [row for row, _ in new]
        signs = np.fromiter((sign for _, sign in new), np.int64, n)
        # table deltas carry the full bitvector ``~0``, which is -1 in
        # the int64 two's-complement encoding the columnar backend uses
        bits = np.full(n, -1, dtype=np.int64)
        return ColumnBatch.from_rows(rows, signs, bits,
                                     len(self.table.schema))

    def reset(self):
        self.delivered = 0


def execution_fractions(pace):
    """The system-progress fractions at which a subplan with ``pace`` runs.

    A pace ``k`` subplan starts one execution whenever the system has
    received ``1/k`` of the total estimated tuples (paper section 2.2), so
    it runs at fractions ``1/k, 2/k, ..., 1``.
    """
    if pace < 1:
        raise ValueError("pace must be >= 1, got %r" % (pace,))
    return [Fraction(i, pace) for i in range(1, pace + 1)]
