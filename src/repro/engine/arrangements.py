"""Shared arrangements: one join index per ``(table, key columns)``.

Every join operator used to maintain a *private* hash table over each of
its inputs, so N subplans probing the same base table paid N times the
resident state and N times the index-maintenance work.  Following the
shared-arrangements idea (McSherry et al., see PAPERS.md), this module
maintains a single multi-reader indexed delta store per ``(table, key
columns)`` pair: the index is advanced once, at the pace of the eagerest
reader, and every subplan probes it at its own horizon through the
existing logical-offset machinery of :mod:`repro.engine.buffers`.

Exactness contract
------------------
Arrangements are a *physical* optimization: with them on or off, query
results, per-record outputs and every WorkMeter charge are bit-identical
(the fuzz oracle ``shared-arranged`` vs ``shared-private`` enforces
this).  That holds because base-table deltas always carry the full
bitvector (``Delta(row, sign, ~0)``), so an eligible join side's private
table would store every delta with bits equal to the subplan mask — a
bijection with the bits-free arrangement index.  Probe outputs take
their bits from the *probing* delta, exactly as the private probe does.
What changes is resource occupancy: resident entries and maintenance
operations are paid once per arrangement instead of once per reader, and
the savings are reported through ``RunResult.metadata
["arrangement_summary"]`` and the ``engine.arrangement.*`` metrics.

Multiversioning
---------------
Readers at different paces need the index *as of* different offsets in
the table's delta log.  An :class:`Arrangement` therefore keeps a small
set of refcounted :class:`_Version` objects keyed by offset.  Advancing
a handle either (a) lands on an existing version and shares it, (b)
cannibalizes its old version in place when nobody else references it —
the common case once all readers run at one pace — or (c) clones
copy-on-write: the top-level dict is copied shallowly and per-key inner
dicts are cloned only when first written (the ``owned`` key set tracks
exclusive ownership on both sides of a clone).  Inner dicts map
``row -> net multiplicity``; entries retracting to zero are deleted
eagerly, so the index never holds dead keys.  A pinned
:class:`~repro.engine.buffers.BufferReader` trails the oldest live
version so buffer compaction never outruns an arrangement.

The kill switch ``REPRO_ENGINE_NO_ARRANGEMENTS=1`` (or
``engine_mode(arrangements=False)``) restores the private-state path,
which is kept as the work/result oracle.
"""

from operator import attrgetter

from ..errors import ExecutionError
from ..mqo.nodes import TableRef

_ROW_SIGN = attrgetter("row", "sign")

__all__ = [
    "Arrangement",
    "ArrangementHandle",
    "ArrangementStore",
    "arrangeable_side",
]


def arrangeable_side(node, side):
    """``(table name, key column indexes)`` if a join input can share.

    A join input is arrangement-eligible when it is a bare base-table
    scan: a ``source`` node over a :class:`TableRef` with no filters and
    no projections.  Decorated scans stay private — their stored rows
    (or the set of deltas reaching the index) differ per query, so no
    shared index can serve them exactly.  ``side`` is 0 for the left
    input, 1 for the right.
    """
    if node.kind != "join" or len(node.children) != 2:
        return None
    child = node.children[side]
    if child.kind != "source" or child.children:
        return None
    ref = child.ref
    if not isinstance(ref, TableRef):
        return None
    if child.filters or child.projections:
        return None
    keys = node.left_keys if side == 0 else node.right_keys
    schema = child.out_schema
    key_indexes = tuple(schema.index_of(name) for name in keys)
    return ref.name, key_indexes


class _Version:
    """One materialized state of the index, as of a log offset.

    ``table`` maps key value -> {row: net multiplicity}; ``owned`` is
    the set of keys whose inner dict no other version shares (safe to
    mutate in place).  ``refs`` counts the handles currently positioned
    at this version.
    """

    __slots__ = ("table", "owned", "entries", "offset", "refs")

    def __init__(self, table, owned, entries, offset, refs):
        self.table = table
        self.owned = owned
        self.entries = entries
        self.offset = offset
        self.refs = refs

    def __repr__(self):
        return "_Version(@%d, %d entries, %d refs)" % (
            self.offset, self.entries, self.refs,
        )


class ArrangementHandle:
    """One reader's cursor into a shared arrangement."""

    __slots__ = ("arrangement", "version", "sid", "name", "advanced")

    def __init__(self, arrangement, sid, name):
        self.arrangement = arrangement
        self.version = None
        self.sid = sid
        self.name = name
        self.advanced = 0  # total log span this reader asked to cover

    def advance_to(self, target):
        """Position this handle at the index state as of ``target``."""
        return self.arrangement.advance(self, target)

    @property
    def table(self):
        return self.version.table

    @property
    def entries(self):
        return self.version.entries

    def __repr__(self):
        return "ArrangementHandle(%s @ %d, sid=%d)" % (
            self.name, self.version.offset if self.version else -1, self.sid,
        )


class Arrangement:
    """A multi-reader index over one table's delta log.

    ``maintenance_ops`` counts deltas actually applied to some version
    (including copy-on-write re-application for laggard readers);
    ``private_ops`` counts what per-reader private tables would have
    applied — the gap is the shared-maintenance saving.
    """

    def __init__(self, table_name, key_indexes, buffer):
        self.table_name = table_name
        self.key_indexes = tuple(key_indexes)
        self.key_index = (
            self.key_indexes[0] if len(self.key_indexes) == 1 else None
        )
        self.buffer = buffer
        # pins compaction at the oldest live version's offset
        self.reader = buffer.reader()
        self.versions = {0: _Version({}, set(), 0, 0, 0)}
        self.handles = []
        self.maintenance_ops = 0
        self.private_ops = 0

    def acquire(self, sid, name):
        """Register a new reader (compile time only, at offset 0)."""
        base = self.versions.get(0)
        if base is None or len(self.versions) != 1:
            raise ExecutionError(
                "arrangement %r acquired after advancing" % self.table_name
            )
        handle = ArrangementHandle(self, sid, name)
        handle.version = base
        base.refs += 1
        self.handles.append(handle)
        return handle

    def advance(self, handle, target):
        """Move ``handle`` to the version at offset ``target``.

        Shares an existing version, cannibalizes the handle's own
        version in place when it holds the only reference, or clones
        copy-on-write otherwise.
        """
        source = handle.version
        if target < source.offset:
            raise ExecutionError(
                "arrangement %r reader %s moving backwards (%d < %d)"
                % (self.table_name, handle.name, target, source.offset)
            )
        if target == source.offset:
            return source
        span = target - source.offset
        handle.advanced += span
        self.private_ops += span
        versions = self.versions
        source.refs -= 1
        existing = versions.get(target)
        if existing is not None:
            existing.refs += 1
            handle.version = existing
            self._prune()
            return existing
        # nearest materialized version at or below the target; the
        # handle's own version qualifies, so this never comes up empty
        base = None
        for version in versions.values():
            if version.offset <= target and (
                base is None or version.offset > base.offset
            ):
                base = version
        if base.refs == 0:
            # only ``source`` can have dropped to zero refs here: every
            # other version kept its readers.  Roll it forward in place.
            del versions[base.offset]
            version = base
        else:
            version = _Version(dict(base.table), set(), base.entries,
                               base.offset, 0)
            # inner dicts are now shared both ways: neither side owns them
            base.owned.clear()
        self._apply(version, target)
        version.refs = version.refs + 1
        versions[target] = version
        handle.version = version
        self._prune()
        return version

    def _apply(self, version, target):
        """Apply log deltas ``[version.offset, target)`` to ``version``.

        Reads through :meth:`~repro.engine.buffers.Buffer.span_entries`,
        which serves pending columnar segments directly -- the
        columnar-native ingest path never pays a Delta round-trip just
        to maintain an arrangement.
        """
        buffer = self.buffer
        if version.offset < buffer.base:
            raise ExecutionError(
                "arrangement %r version @%d is behind the compaction "
                "horizon (base %d)"
                % (self.table_name, version.offset, buffer.base)
            )
        start = version.offset - buffer.base
        stop = target - buffer.base
        if stop <= len(buffer.deltas):
            # span fully materialized: iterate the deltas in place
            # (C-speed attrgetter, no intermediate pair list)
            span = buffer.deltas[start:stop]
            count = len(span)
            entries_span = map(_ROW_SIGN, span)
        else:
            entries_span = buffer.span_entries(version.offset, target)
            count = len(entries_span)
        table = version.table
        owned = version.owned
        key_index = self.key_index
        key_indexes = self.key_indexes
        entries = version.entries
        for row, sign in entries_span:
            if key_index is not None:
                key = row[key_index]
            else:
                key = tuple(row[i] for i in key_indexes)
            inner = table.get(key)
            if inner is None:
                inner = table[key] = {}
                owned.add(key)
            elif key not in owned:
                inner = table[key] = dict(inner)  # clone-on-first-write
                owned.add(key)
            previous = inner.get(row, 0)
            net = previous + sign
            if net == 0:
                del inner[row]
                if not inner:
                    del table[key]
                    owned.discard(key)
                entries -= 1
            else:
                inner[row] = net
                if previous == 0:
                    entries += 1
        version.entries = entries
        version.offset = target
        self.maintenance_ops += count

    def _prune(self):
        versions = self.versions
        dead = [off for off, version in versions.items() if version.refs <= 0]
        for off in dead:
            del versions[off]
        # trail the oldest live version so compaction cannot outrun us
        self.reader.offset = min(versions)

    def reset(self):
        """Rewind to offset 0 with every handle reattached (tree reuse)."""
        base = _Version({}, set(), 0, 0, len(self.handles))
        self.versions = {0: base}
        for handle in self.handles:
            handle.version = base
            handle.advanced = 0
        self.reader.offset = 0
        self.maintenance_ops = 0
        self.private_ops = 0

    def resident_entries(self):
        return sum(version.entries for version in self.versions.values())

    def reader_lag(self):
        """Offset gap between the eagerest and laggardest live version."""
        return max(self.versions) - min(self.versions)

    def attribution(self):
        """Exact maintenance-work shares per reading subplan.

        Uses the rational-arithmetic attribution ledger
        (:func:`repro.obs.attribution.split_work`) with each subplan's
        total advanced span as its weight, so shares sum exactly to
        ``maintenance_ops``.
        """
        from ..obs.attribution import split_work

        weights = {}
        for handle in self.handles:
            weights[handle.sid] = weights.get(handle.sid, 0) + handle.advanced
        return split_work(self.maintenance_ops, sorted(weights.items()))

    def describe(self):
        return {
            "table": self.table_name,
            "key_columns": list(self.key_indexes),
            "readers": len(self.handles),
            "versions": len(self.versions),
            "resident_entries": self.resident_entries(),
            "maintenance_ops": self.maintenance_ops,
            "private_ops": self.private_ops,
            "reader_lag": self.reader_lag(),
            "attribution": {
                sid: float(share)
                for sid, share in sorted(self.attribution().items())
            },
        }

    def __repr__(self):
        return "Arrangement(%r, keys=%r, %d readers, %d versions)" % (
            self.table_name, self.key_indexes, len(self.handles),
            len(self.versions),
        )


class ArrangementStore:
    """All arrangements of one compiled plan, keyed ``(table, keys)``."""

    def __init__(self):
        self.arrangements = {}

    def handle(self, table_name, key_indexes, buffer, sid, name):
        """Get-or-create the arrangement and register a reader on it."""
        key = (table_name, tuple(key_indexes))
        arrangement = self.arrangements.get(key)
        if arrangement is None:
            arrangement = Arrangement(table_name, key_indexes, buffer)
            self.arrangements[key] = arrangement
        return arrangement.acquire(sid, name)

    def reset(self):
        for arrangement in self.arrangements.values():
            arrangement.reset()

    def resident_entries(self):
        return sum(
            arrangement.resident_entries()
            for arrangement in self.arrangements.values()
        )

    def summary(self):
        """JSON-safe totals plus one record per arrangement."""
        per_arrangement = []
        resident = maintenance = private = 0
        for key in sorted(self.arrangements):
            info = self.arrangements[key].describe()
            per_arrangement.append(info)
            resident += info["resident_entries"]
            maintenance += info["maintenance_ops"]
            private += info["private_ops"]
        return {
            "arrangements": per_arrangement,
            "resident_entries": resident,
            "maintenance_ops": maintenance,
            "private_ops": private,
            "shared_ops_saved": private - maintenance,
        }

    def __len__(self):
        return len(self.arrangements)

    def __repr__(self):
        return "ArrangementStore(%d arrangements)" % len(self.arrangements)
