"""Run metrics: total work, final work, latency, missed latency.

Definitions follow the paper exactly (sections 2.1 and 5.1):

* **total work** -- units of work done by all incremental executions of
  all subplans; the proxy for CPU consumption / total execution time.
* **final work** of a query -- the sum of the work of the *final*
  executions (the ones at the trigger point) of the query's subplans; the
  proxy for the query's latency.
* **latency** -- final work converted to seconds at the configured rate.
* **missed latency** -- ``max(0, tested latency - latency goal)``
  absolute, and that value divided by the goal as the relative form.
"""


class ExecutionRecord:
    """One incremental execution of one subplan.

    ``work`` is the full charge (including state-store maintenance);
    ``latency_work`` excludes the state-maintenance portion, which is
    committed after results are emitted and therefore does not delay the
    query's answer.
    """

    __slots__ = ("sid", "fraction", "work", "latency_work", "output_count")

    def __init__(self, sid, fraction, work, output_count, latency_work=None):
        self.sid = sid
        self.fraction = fraction
        self.work = work
        self.latency_work = work if latency_work is None else latency_work
        self.output_count = output_count

    def __repr__(self):
        return "ExecutionRecord(sp%d @ %s, work=%.1f, out=%d)" % (
            self.sid,
            self.fraction,
            self.work,
            self.output_count,
        )


class RunResult:
    """The measured outcome of executing a plan under a pace configuration."""

    def __init__(self, pace_config, stream_config):
        self.pace_config = dict(pace_config)
        self.stream_config = stream_config
        self.records = []
        self.total_work = 0.0
        self.subplan_total_work = {}
        self.subplan_final_work = {}
        self.query_final_work = {}
        self.query_results = {}
        #: backend attribution (engine_mode label, columnar on/off),
        #: filled by the executor so archived results say which engine
        #: path produced them
        self.metadata = {}

    def add_record(self, record, is_final):
        self.records.append(record)
        self.total_work += record.work
        self.subplan_total_work[record.sid] = (
            self.subplan_total_work.get(record.sid, 0.0) + record.work
        )
        if is_final:
            self.subplan_final_work[record.sid] = record.latency_work

    @property
    def total_seconds(self):
        return self.stream_config.seconds(self.total_work)

    def query_latency_seconds(self, query_id):
        return self.stream_config.seconds(self.query_final_work[query_id])

    def executions_of(self, sid):
        return [record for record in self.records if record.sid == sid]

    def __repr__(self):
        return "RunResult(total_work=%.1f, %d executions)" % (
            self.total_work,
            len(self.records),
        )


#: relative miss reported when the goal itself is zero but the tested
#: latency is not: the goal is missed by an unbounded factor, reported as
#: this finite cap so summary means stay arithmetically usable
ZERO_GOAL_RELATIVE_MISS = 1e3


def missed_latency(tested_seconds, goal_seconds):
    """``(absolute, relative)`` missed latency versus a goal (section 5.1).

    A zero goal met exactly (tested 0) is a zero miss; a zero goal with
    any positive tested latency is a full miss, reported with the capped
    relative value :data:`ZERO_GOAL_RELATIVE_MISS` rather than the old
    (wrong) 0.0.
    """
    absolute = max(0.0, tested_seconds - goal_seconds)
    if goal_seconds > 0:
        relative = absolute / goal_seconds
    elif absolute > 0:
        relative = ZERO_GOAL_RELATIVE_MISS
    else:
        relative = 0.0
    return absolute, relative


class MissedLatencySummary:
    """Mean/max absolute and relative missed latency over a query batch.

    This is the Table 1/2/3 row shape: Mean %, Mean Sec., Max %, Max Sec.
    """

    def __init__(self):
        self.absolute = []
        self.relative = []

    def add(self, tested_seconds, goal_seconds):
        absolute, relative = missed_latency(tested_seconds, goal_seconds)
        self.absolute.append(absolute)
        self.relative.append(relative)

    @property
    def mean_seconds(self):
        return sum(self.absolute) / len(self.absolute) if self.absolute else 0.0

    @property
    def max_seconds(self):
        return max(self.absolute) if self.absolute else 0.0

    @property
    def mean_percent(self):
        return 100.0 * sum(self.relative) / len(self.relative) if self.relative else 0.0

    @property
    def max_percent(self):
        return 100.0 * max(self.relative) if self.relative else 0.0

    def row(self):
        """``(mean %, mean sec, max %, max sec)`` as the paper tabulates."""
        return (self.mean_percent, self.mean_seconds, self.max_percent, self.max_seconds)

    def __repr__(self):
        return "MissedLatency(mean=%.2f%%/%.2fs, max=%.2f%%/%.2fs)" % self.row()
