"""Materialization buffers with per-consumer offsets and compaction.

Every subplan whose output is consumed by other subplans materializes its
deltas into a :class:`Buffer` (the paper uses Kafka topics for this);
base-relation delta logs are buffers too.  Each consumer holds a
:class:`BufferReader` that tracks the offset of the deltas it has already
processed, so parents with different paces independently drain the same
buffer (paper section 2.2).

Offsets are *logical* and monotone: they count every delta ever appended.
:meth:`Buffer.compact` drops the already-consumed prefix of the backing
list (recording the drop in ``base``) so long-running schedules do not
hold every historical delta live; readers keep working unchanged because
they index relative to ``base``.  Buffers that must stay fully replayable
(query-root buffers, which ``query_result_view`` re-reads from offset 0)
are ``pinned`` and never compacted.
"""

from ..errors import ExecutionError
from ..obs import OBS


class Buffer:
    """An append-only delta log with optional prefix compaction."""

    __slots__ = ("name", "deltas", "base", "pinned", "_readers")

    def __init__(self, name):
        self.name = name
        self.deltas = []
        self.base = 0
        self.pinned = False
        self._readers = []

    def append(self, deltas):
        self.deltas.extend(deltas)
        if OBS.enabled:
            OBS.metrics.gauge(
                "engine.buffer.occupancy", buffer=self.name
            ).set(len(self.deltas))

    def end(self):
        """The logical offset one past the last appended delta."""
        return self.base + len(self.deltas)

    def __len__(self):
        """Total deltas ever appended (compaction does not shrink this)."""
        return self.base + len(self.deltas)

    def reader(self):
        reader = BufferReader(self)
        self._readers.append(reader)
        return reader

    def compact(self):
        """Drop the prefix every registered reader has consumed.

        Memory-only: logical offsets, ``len()`` and work accounting are
        unaffected.  Pinned buffers and buffers nobody reads are left
        intact (an unread buffer may still gain a late reader, and a
        pinned one must stay replayable from offset 0).  Returns the
        number of deltas dropped.
        """
        if self.pinned or not self._readers or not self.deltas:
            return 0
        horizon = min(reader.offset for reader in self._readers)
        drop = horizon - self.base
        if drop <= 0:
            return 0
        del self.deltas[:drop]
        self.base = horizon
        if OBS.enabled:
            OBS.metrics.counter(
                "engine.buffer.compacted_deltas", buffer=self.name
            ).inc(drop)
        return drop

    def reset(self):
        """Empty the log and rewind every registered reader (tree reuse)."""
        self.deltas.clear()
        self.base = 0
        for reader in self._readers:
            reader.offset = 0

    def __repr__(self):
        return "Buffer(%r, %d deltas)" % (self.name, len(self))


class BufferReader:
    """A consumer cursor over a :class:`Buffer` (logical offsets)."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer):
        self.buffer = buffer
        self.offset = 0

    def read_new(self):
        """All deltas appended since the previous call."""
        buffer = self.buffer
        start = self.offset - buffer.base
        if start < 0:
            raise ExecutionError(
                "reader of %r is behind the compaction horizon "
                "(offset %d < base %d)" % (buffer.name, self.offset, buffer.base)
            )
        deltas = buffer.deltas
        if start >= len(deltas):
            return []
        new = deltas[start:]
        self.offset = buffer.base + len(deltas)
        return new

    def remaining(self):
        return self.buffer.end() - self.offset

    def __repr__(self):
        return "BufferReader(%r @ %d/%d)" % (
            self.buffer.name,
            self.offset,
            self.buffer.end(),
        )
