"""Materialization buffers with per-consumer offsets and compaction.

Every subplan whose output is consumed by other subplans materializes its
deltas into a :class:`Buffer` (the paper uses Kafka topics for this);
base-relation delta logs are buffers too.  Each consumer holds a
:class:`BufferReader` that tracks the offset of the deltas it has already
processed, so parents with different paces independently drain the same
buffer (paper section 2.2).

Offsets are *logical* and monotone: they count every delta ever appended.
:meth:`Buffer.compact` drops the already-consumed prefix of the backing
list (recording the drop in ``base``) so long-running schedules do not
hold every historical delta live; readers keep working unchanged because
they index relative to ``base``.  Buffers that must stay fully replayable
(query-root buffers, which ``query_result_view`` re-reads from offset 0)
are ``pinned`` and never compacted.
"""

from ..errors import ExecutionError
from ..obs import OBS


class Buffer:
    """An append-only delta log with optional prefix compaction.

    Columnar producers may append :class:`~repro.engine.columns
    .ColumnBatch` segments instead of delta lists (:meth:`append_segment`).
    Segments stay columnar in a pending tail as long as every consumer is
    batch-aware; the first consumer that needs plain deltas (a batched
    reader, ``query_result_view``) forces :meth:`materialize`, which
    converts the pending tail in order.  Logical offsets, ``len()`` and
    compaction semantics are identical either way, so producers and
    consumers may mix freely.
    """

    __slots__ = ("name", "deltas", "base", "pinned", "_readers",
                 "_pending", "_pending_len", "view_cache")

    _VIEW_CACHE_LIMIT = 8

    def __init__(self, name):
        self.name = name
        self.deltas = []
        self.base = 0
        self.pinned = False
        self._readers = []
        self._pending = []  # [(start offset, ColumnBatch)], tail order
        self._pending_len = 0
        #: per-span memo for derived read views, keyed ``(start, end,
        #: tag)``.  Consumers at the same offset reading the same span
        #: (pace-aligned parents of one child, the many scans of one base
        #: table) share one consolidated/concatenated batch instead of
        #: each rebuilding it.  Logical content of a span never changes
        #: after append, so entries stay valid across ``compact()`` and
        #: ``materialize()``; the dict is bounded and cleared wholesale.
        self.view_cache = {}

    def cache_view(self, key, builder):
        """Get-or-build a derived view of one logical span (see above)."""
        cache = self.view_cache
        view = cache.get(key)
        if view is None:
            if len(cache) >= self._VIEW_CACHE_LIMIT:
                cache.clear()
            view = cache[key] = builder()
        return view

    def append(self, deltas):
        if self._pending:
            self.materialize()
        self.deltas.extend(deltas)
        if OBS.enabled:
            OBS.metrics.gauge(
                "engine.buffer.occupancy", buffer=self.name
            ).set(len(self.deltas) + self._pending_len)

    def append_segment(self, batch):
        """Append a columnar segment without converting it to deltas."""
        self._pending.append((self.end(), batch))
        self._pending_len += len(batch)
        if OBS.enabled:
            OBS.metrics.gauge(
                "engine.buffer.occupancy", buffer=self.name
            ).set(len(self.deltas) + self._pending_len)

    def materialize(self):
        """Convert pending columnar segments to deltas, preserving order."""
        if self._pending:
            for _, batch in self._pending:
                self.deltas.extend(batch.to_deltas())
            self._pending = []
            self._pending_len = 0
        return self.deltas

    def end(self):
        """The logical offset one past the last appended delta."""
        return self.base + len(self.deltas) + self._pending_len

    def __len__(self):
        """Total deltas ever appended (compaction does not shrink this)."""
        return self.base + len(self.deltas) + self._pending_len

    def reader(self):
        reader = BufferReader(self)
        self._readers.append(reader)
        return reader

    def compact(self):
        """Drop the prefix every registered reader has consumed.

        Memory-only: logical offsets, ``len()`` and work accounting are
        unaffected.  Pinned buffers and buffers nobody reads are left
        intact (an unread buffer may still gain a late reader, and a
        pinned one must stay replayable from offset 0).  Returns the
        number of deltas dropped.
        """
        if self.pinned or not self._readers:
            return 0
        if not self.deltas and not self._pending:
            return 0
        horizon = min(reader.offset for reader in self._readers)
        drop = horizon - self.base
        if drop <= 0:
            return 0
        materialized_len = len(self.deltas)
        if drop > materialized_len:
            # the horizon reaches into the columnar tail: drop fully
            # consumed segments without ever materializing them
            kept = []
            for start, batch in self._pending:
                seg_end = start + len(batch)
                if seg_end <= horizon:
                    self._pending_len -= len(batch)
                elif start >= horizon:
                    kept.append((start, batch))
                else:  # partially consumed segment: keep it whole
                    kept.append((start, batch))
                    horizon = start
            self._pending = kept
            drop = horizon - self.base
            if drop <= 0:
                return 0
        del self.deltas[:drop]
        self.base = horizon
        if OBS.enabled:
            OBS.metrics.counter(
                "engine.buffer.compacted_deltas", buffer=self.name
            ).inc(drop)
            # occupancy shrank: refresh the gauge (it is otherwise only
            # set on append, which left dashboards reading stale values)
            OBS.metrics.gauge(
                "engine.buffer.occupancy", buffer=self.name
            ).set(len(self.deltas) + self._pending_len)
        return drop

    def span_entries(self, start, stop):
        """``(row, sign)`` pairs for logical offsets ``[start, stop)``.

        Serves maintenance consumers (shared arrangements) that need raw
        rows but not bitvectors, without forcing pending columnar
        segments through the Delta round-trip: the materialized prefix
        is sliced, segment overlaps are read straight off the batches.
        """
        if stop <= start:
            return []
        rel_start = start - self.base
        if rel_start < 0:
            raise ExecutionError(
                "span [%d, %d) of %r is behind the compaction horizon "
                "(base %d)" % (start, stop, self.name, self.base)
            )
        out = []
        deltas = self.deltas
        materialized_end = self.base + len(deltas)
        if rel_start < len(deltas):
            for delta in deltas[rel_start:stop - self.base]:
                out.append((delta.row, delta.sign))
        for seg_start, batch in self._pending:
            seg_end = seg_start + len(batch)
            if seg_end <= start or seg_start >= stop:
                continue
            lo = max(start, seg_start) - seg_start
            hi = min(stop, seg_end) - seg_start
            rows = batch.rows()
            out.extend(zip(rows[lo:hi], batch.signs[lo:hi].tolist()))
        expected = stop - max(start, self.base)
        if len(out) != expected:
            raise ExecutionError(
                "span [%d, %d) of %r is not contiguous (%d of %d entries; "
                "materialized through %d)"
                % (start, stop, self.name, len(out), expected,
                   materialized_end)
            )
        return out

    def reset(self):
        """Empty the log and rewind every registered reader (tree reuse)."""
        self.deltas.clear()
        self.base = 0
        self._pending = []
        self._pending_len = 0
        self.view_cache.clear()
        for reader in self._readers:
            reader.offset = 0

    def __repr__(self):
        return "Buffer(%r, %d deltas)" % (self.name, len(self))


class BufferReader:
    """A consumer cursor over a :class:`Buffer` (logical offsets)."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer):
        self.buffer = buffer
        self.offset = 0

    def read_new(self):
        """All deltas appended since the previous call."""
        buffer = self.buffer
        if buffer._pending:
            buffer.materialize()
        start = self.offset - buffer.base
        if start < 0:
            raise ExecutionError(
                "reader of %r is behind the compaction horizon "
                "(offset %d < base %d)" % (buffer.name, self.offset, buffer.base)
            )
        deltas = buffer.deltas
        if start >= len(deltas):
            return []
        new = deltas[start:]
        self.offset = buffer.base + len(deltas)
        return new

    def read_new_segments(self):
        """Everything appended since the previous call, columnar-aware.

        Returns ``(deltas, batches)``: a plain delta list for the
        materialized span plus the pending columnar segments, in order.
        Batch-aware consumers (the columnar source) use this to skip the
        deltas round-trip entirely when the producer was columnar; plain
        producers just yield ``(deltas, [])``.
        """
        buffer = self.buffer
        start = self.offset - buffer.base
        if start < 0:
            raise ExecutionError(
                "reader of %r is behind the compaction horizon "
                "(offset %d < base %d)" % (buffer.name, self.offset, buffer.base)
            )
        deltas = buffer.deltas
        prefix = deltas[start:] if start < len(deltas) else []
        batches = []
        if buffer._pending:
            materialized_end = buffer.base + len(deltas)
            cursor = max(self.offset, materialized_end)
            for seg_start, batch in buffer._pending:
                seg_end = seg_start + len(batch)
                if seg_end <= cursor:
                    continue
                if seg_start < cursor:
                    # mid-segment cursor (cannot happen with aligned
                    # executions; defensive): force the plain path
                    buffer.materialize()
                    return self.read_new(), []
                batches.append(batch)
        self.offset = buffer.end()
        return prefix, batches

    def remaining(self):
        return self.buffer.end() - self.offset

    def __repr__(self):
        return "BufferReader(%r @ %d/%d)" % (
            self.buffer.name,
            self.offset,
            self.buffer.end(),
        )
