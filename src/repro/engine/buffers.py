"""Materialization buffers with per-consumer offsets.

Every subplan whose output is consumed by other subplans materializes its
deltas into a :class:`Buffer` (the paper uses Kafka topics for this);
base-relation delta logs are buffers too.  Each consumer holds a
:class:`BufferReader` that tracks the offset of the deltas it has already
processed, so parents with different paces independently drain the same
buffer (paper section 2.2).
"""

from ..obs import OBS


class Buffer:
    """An append-only delta log."""

    __slots__ = ("name", "deltas")

    def __init__(self, name):
        self.name = name
        self.deltas = []

    def append(self, deltas):
        self.deltas.extend(deltas)
        if OBS.enabled:
            OBS.metrics.gauge(
                "engine.buffer.occupancy", buffer=self.name
            ).set(len(self.deltas))

    def __len__(self):
        return len(self.deltas)

    def reader(self):
        return BufferReader(self)

    def __repr__(self):
        return "Buffer(%r, %d deltas)" % (self.name, len(self.deltas))


class BufferReader:
    """A consumer cursor over a :class:`Buffer`."""

    __slots__ = ("buffer", "offset")

    def __init__(self, buffer):
        self.buffer = buffer
        self.offset = 0

    def read_new(self):
        """All deltas appended since the previous call."""
        deltas = self.buffer.deltas
        if self.offset >= len(deltas):
            return []
        new = deltas[self.offset:]
        self.offset = len(deltas)
        return new

    def remaining(self):
        return len(self.buffer.deltas) - self.offset

    def __repr__(self):
        return "BufferReader(%r @ %d/%d)" % (
            self.buffer.name,
            self.offset,
            len(self.buffer.deltas),
        )
