"""Execution engine: buffers, stream simulation, pace-driven executor."""

from .buffers import Buffer, BufferReader
from .stream import StreamConfig, TableStream, execution_fractions
from .executor import PlanExecutor, query_result_view
from .metrics import (
    ExecutionRecord,
    RunResult,
    MissedLatencySummary,
    missed_latency,
)
from .calibrate import CalibrationResult, calibrate_plan
from .compare import results_close, assert_results_close, normalize_rows

__all__ = [
    "Buffer",
    "BufferReader",
    "StreamConfig",
    "TableStream",
    "execution_fractions",
    "PlanExecutor",
    "query_result_view",
    "ExecutionRecord",
    "RunResult",
    "MissedLatencySummary",
    "missed_latency",
    "CalibrationResult",
    "calibrate_plan",
    "results_close",
    "assert_results_close",
    "normalize_rows",
]
