"""Comparing query results across plans and paces.

Incremental execution sums floating-point values in a different order
than batch execution, so result rows can differ in the last few ulps.
:func:`results_close` compares two net result multisets
(``{row: count}`` as produced by
:func:`~repro.engine.executor.query_result_view`) with float rounding.
"""


def normalize_rows(result, digits=4):
    """Canonicalize a result multiset by rounding float components."""
    normalized = {}
    for row, count in result.items():
        key = tuple(
            round(value, digits) if isinstance(value, float) else value
            for value in row
        )
        normalized[key] = normalized.get(key, 0) + count
    return normalized


def results_close(left, right, digits=4):
    """True if two result multisets agree up to float rounding."""
    return normalize_rows(left, digits) == normalize_rows(right, digits)


def assert_results_close(left, right, digits=4, context=""):
    """Raise ``AssertionError`` with a readable diff when results differ."""
    a = normalize_rows(left, digits)
    b = normalize_rows(right, digits)
    if a == b:
        return
    only_left = sorted(set(a) - set(b), key=repr)[:5]
    only_right = sorted(set(b) - set(a), key=repr)[:5]
    count_diffs = [
        (key, a[key], b[key]) for key in set(a) & set(b) if a[key] != b[key]
    ][:5]
    raise AssertionError(
        "results differ%s: only-left=%r only-right=%r count-diffs=%r"
        % (" (%s)" % context if context else "", only_left, only_right, count_diffs)
    )
