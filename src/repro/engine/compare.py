"""Comparing query results across plans and paces.

Incremental execution sums floating-point values in a different order
than batch execution, so result rows can differ in the last few ulps.
:func:`results_close` compares two net result multisets
(``{row: count}`` as produced by
:func:`~repro.engine.executor.query_result_view`) with *tolerance-based
multiset matching*: every entry of one side must find a counterpart on
the other whose non-float components are equal and whose float
components agree under :func:`math.isclose` (relative + absolute
tolerance, with ``-0.0`` treated as ``0.0``).

The old implementation bucketed floats with ``round(x, 4)``, which made
two values one ulp apart compare *unequal* whenever they straddled a
rounding boundary (e.g. ``0.00004999...`` vs ``0.00005000...``) -- a
false verdict the differential fuzzer (:mod:`repro.fuzz`) would report
as an engine bug.  :func:`normalize_rows` is kept for *display only*
(readable diffs in :func:`assert_results_close` messages); it no longer
participates in any equality decision.
"""

import math

#: default tolerances: generous enough for re-associated float sums over
#: thousands of tuples, tight enough that any real retraction/multiplicity
#: bug (which changes a value by at least one whole contribution) fails
REL_TOL = 1e-6
ABS_TOL = 1e-9


def normalize_rows(result, digits=4):
    """Canonicalize a result multiset by rounding float components.

    Display/debugging helper only -- rounding buckets values, so two
    floats one ulp apart can land in different buckets across a rounding
    boundary.  Equality checks must go through :func:`results_close`.
    """
    normalized = {}
    for row, count in result.items():
        key = tuple(
            round(value, digits) if isinstance(value, float) else value
            for value in row
        )
        normalized[key] = normalized.get(key, 0) + count
    return normalized


def values_close(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL):
    """Tolerant scalar comparison: floats by isclose, everything else exact.

    ``bool`` is excluded from the numeric path (it is an ``int`` subclass
    but a distinct value domain), and ``-0.0 == 0.0`` holds by IEEE
    equality inside ``isclose``.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    a_num = isinstance(a, (int, float))
    b_num = isinstance(b, (int, float))
    if a_num and b_num:
        if isinstance(a, int) and isinstance(b, int):
            return a == b  # int arithmetic is exact on every path
        if isinstance(a, float) and math.isnan(a):
            return isinstance(b, float) and math.isnan(b)
        if isinstance(b, float) and math.isnan(b):
            return False
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    if a_num != b_num:
        return False
    return a == b


def rows_close(left, right, rel_tol=REL_TOL, abs_tol=ABS_TOL):
    """True iff two rows agree component-wise under :func:`values_close`."""
    if len(left) != len(right):
        return False
    return all(
        values_close(a, b, rel_tol, abs_tol) for a, b in zip(left, right)
    )


def _value_sort_key(value):
    """A total order over mixed-type row components.

    Numbers (minus bools) sort together numerically so nearly-equal
    floats from two executions land adjacently; ``-0.0`` collapses onto
    ``0.0``; NaN sorts to a fixed slot; everything else sorts within its
    type by repr.
    """
    if isinstance(value, bool):
        return ("b", 1 if value else 0)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return ("nan", 0.0)
        return ("n", value + 0.0)  # +0.0 turns -0.0 into 0.0
    if isinstance(value, str):
        return ("s", value)
    return ("r", repr(value))


def _entry_key(entry):
    sign, row = entry
    return (sign, tuple(_value_sort_key(value) for value in row))


def _flatten(result):
    """Expand a ``{row: count}`` multiset into sorted ``(sign, row)`` entries.

    Counts are small in net results (consolidation cancels churn), so the
    expansion is cheap; negative counts keep their sign so a row that one
    path over-retracts can never pair with a normally-inserted row.
    """
    entries = []
    for row, count in result.items():
        sign = 1 if count > 0 else -1
        entries.extend([(sign, row)] * abs(count))
    entries.sort(key=_entry_key)
    return entries


def result_diff(left, right, rel_tol=REL_TOL, abs_tol=ABS_TOL):
    """Tolerance-based multiset difference: ``(only_left, only_right)``.

    Every flattened entry of ``left`` greedily claims the first unclaimed
    tolerance-close entry of ``right`` (both lists canonically sorted, so
    near-equal values meet early); leftovers on either side are the
    divergence.  Empty lists on both sides mean the multisets agree.
    """
    left_entries = _flatten(left)
    right_entries = _flatten(right)
    unmatched_right = list(right_entries)
    only_left = []
    for sign, row in left_entries:
        for index, (other_sign, other_row) in enumerate(unmatched_right):
            if sign == other_sign and rows_close(row, other_row, rel_tol, abs_tol):
                del unmatched_right[index]
                break
        else:
            only_left.append((sign, row))
    return only_left, unmatched_right


def results_close(left, right, rel_tol=REL_TOL, abs_tol=ABS_TOL):
    """True if two result multisets agree up to float tolerance."""
    if left == right:
        return True
    only_left, only_right = result_diff(left, right, rel_tol, abs_tol)
    return not only_left and not only_right


def _display(entries, limit=5):
    """Compact, rounded rendering of diff entries (display only)."""
    rendered = []
    for sign, row in entries[:limit]:
        shown = tuple(
            round(value, 6) if isinstance(value, float) else value
            for value in row
        )
        rendered.append(("+" if sign > 0 else "-", shown))
    return rendered


def assert_results_close(left, right, rel_tol=REL_TOL, abs_tol=ABS_TOL,
                         context=""):
    """Raise ``AssertionError`` with a readable diff when results differ."""
    if left == right:
        return
    only_left, only_right = result_diff(left, right, rel_tol, abs_tol)
    if not only_left and not only_right:
        return
    raise AssertionError(
        "results differ%s: only-left=%r only-right=%r "
        "(left %d rows, right %d rows)"
        % (
            " (%s)" % context if context else "",
            _display(only_left),
            _display(only_right),
            sum(abs(c) for c in left.values()),
            sum(abs(c) for c in right.values()),
        )
    )
