"""Struct-of-arrays delta batches for the columnar engine backend.

A :class:`ColumnBatch` is the columnar twin of a ``list[Delta]``: one
NumPy array per row column plus parallel int64 arrays for the delta sign
(signed multiplicity) and the SharedDB query bitvector.  Conversion
happens at subplan buffer boundaries only -- buffers, readers and the
optimizer keep trafficking in plain :class:`~repro.relational.tuples
.Delta` lists, so every non-columnar consumer is untouched.

Columns are **late-materialized**: a batch built from deltas (or from a
scalar join probe) carries the original Python row tuples and builds a
column array only when an operator actually reads that column.  At
fig11-sized batches most columns are never read -- a source feeds a join
that touches one key column, an aggregate touches a group column and a
value column -- so eager per-column conversion was pure overhead.  The
vectorized kernels that need the full struct-of-arrays view (the large-
batch join probe) ask for ``batch.columns`` and pay materialization once,
amortized over the batch.

Type fidelity is the load-bearing invariant: values that cross back into
tuple-land must be *Python* scalars (``np.int64`` is not a Python
``int``, so it would fail the exact-int comparison in
:func:`repro.engine.compare.values_close`).  Columns are therefore built
with strict single-type detection -- ``int``/``float``/``bool`` columns
get native dtypes, everything else (strings, mixed types, out-of-range
ints) falls back to ``object`` dtype, whose ``tolist`` round-trips the
original objects untouched.  Row-backed batches are even stronger: their
``rows()`` ARE the original tuples, no round-trip at all.
"""

try:
    import numpy as np
except ImportError:  # pragma: no cover - the container bakes numpy in
    np = None

from ..relational.tuples import Delta

_NEW = Delta.__new__

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_INT_KIND = frozenset((int,))
_FLOAT_KIND = frozenset((float,))
_BOOL_KIND = frozenset((bool,))


def available():
    """Whether NumPy imported; mirrors ``hotpath.columnar_available``."""
    return np is not None


def column_array(values):
    """A NumPy column for a sequence of Python values, type-faithfully.

    Uniform ``bool``/``int``/``float`` sequences get native dtypes (the
    vectorizable fast path); anything else -- strings, ``None``, mixed
    types, ints outside int64 -- becomes an ``object`` array so that
    ``tolist`` returns the original objects bit-for-bit.
    """
    values = list(values)
    if values:
        # set(map(type, ...)) runs at C speed; ``type`` is exact, so a
        # bool mixed into an int column still falls through to object
        kinds = set(map(type, values))
        if kinds == _INT_KIND:
            try:
                return np.array(values, dtype=np.int64)
            except OverflowError:  # out-of-int64 values stay objects
                pass
        elif kinds == _FLOAT_KIND:
            return np.array(values, dtype=np.float64)
        elif kinds == _BOOL_KIND:
            return np.array(values, dtype=np.bool_)
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def concat_columns(arrays):
    """Concatenate one logical column's chunks without dtype corruption.

    ``np.concatenate`` silently promotes ``int64 + float64`` to
    ``float64`` (turning ``5`` into ``5.0`` on the way back to
    tuple-land), so mismatched chunk dtypes are rebuilt through
    :func:`column_array` instead.
    """
    if len(arrays) == 1:
        return arrays[0]
    dtype = arrays[0].dtype
    for arr in arrays[1:]:
        if arr.dtype != dtype:
            merged = []
            for chunk in arrays:
                merged.extend(chunk.tolist())
            return column_array(merged)
    return np.concatenate(arrays)


class ColumnBatch:
    """One delta batch as (lazy) struct-of-arrays.

    ``signs`` and ``bits`` are always parallel int64 arrays.  The row
    columns live in one of four states:

    * **column-backed** -- ``_columns`` is a tuple of per-column arrays
      (the output of a vectorized kernel);
    * **row-backed** -- ``_columns`` is None and ``_rows`` holds the
      Python row tuples; individual columns materialize on first access
      via :meth:`column` and are cached;
    * **gather-backed** -- ``_gather`` holds ``(source, rows, indices)``
      parts side by side (the vectorized join emits its output as index
      views over the probe batch and the state arrays); a column
      materializes as ``source column fancy-indexed by the part's
      indices``, exactly the arrays the eager gather produced, but only
      for columns a consumer actually reads;
    * **chunk-backed** -- ``_chunks`` holds consumed batches stacked
      vertically (:func:`concat_batches` over lazy inputs); a column
      materializes as the dtype-safe concat of the chunks' columns.

    The lazy states compose (a gather part may itself be lazy, chunks
    may hold gathers), so a join-over-join pipeline materializes nothing
    until a sink, an aggregate input read, or a state install asks for
    rows -- the top-level ``signs``/``bits`` arrays are always eager and
    authoritative (backing chunks' own signs/bits are never consulted).

    Query bitvectors fit int64 because the executor only dispatches to
    the columnar backend when every query id is below 62 (``~0`` table
    bitvectors are ``-1``, which ANDs correctly in two's complement).
    """

    __slots__ = ("_columns", "signs", "bits", "_rows", "width",
                 "_col_cache", "_gather", "_chunks")

    def __init__(self, columns, signs, bits):
        self._columns = columns
        self.signs = signs
        self.bits = bits
        self._rows = None
        self.width = len(columns)
        self._col_cache = None
        self._gather = None
        self._chunks = None

    def __len__(self):
        return len(self.signs)

    @classmethod
    def empty(cls, width):
        return cls.from_rows(
            [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            width,
        )

    @classmethod
    def from_rows(cls, rows, signs, bits, width):
        """A row-backed batch; columns materialize lazily on access."""
        batch = cls.__new__(cls)
        batch._columns = None
        batch.signs = signs
        batch.bits = bits
        batch._rows = rows
        batch.width = width
        batch._col_cache = None
        batch._gather = None
        batch._chunks = None
        return batch

    @classmethod
    def from_gather(cls, parts, signs, bits, width):
        """A gather-backed batch: an index view over one or more sources.

        Each part is ``(source, rows, indices)`` -- ``source`` is a
        :class:`ColumnBatch` or a plain tuple of column arrays,
        ``rows`` an optional parallel list of Python row tuples for the
        tuple-of-arrays case, and ``indices`` an int64 array into the
        source.  Parts contribute their columns side by side in order.
        Sources must be snapshots (append-only or reassigned-on-change,
        never mutated in place) so the view stays valid after emission.
        """
        batch = cls.__new__(cls)
        batch._columns = None
        batch.signs = signs
        batch.bits = bits
        batch._rows = None
        batch.width = width
        batch._col_cache = None
        batch._gather = parts
        batch._chunks = None
        return batch

    @classmethod
    def from_chunks(cls, chunks, signs, bits, width):
        """A chunk-backed batch: ``chunks`` stacked vertically, lazily.

        ``signs``/``bits`` are the authoritative top-level arrays (the
        chunks' own may be stale after ``with_bits``); chunks are only
        consulted for row/column content.
        """
        batch = cls.__new__(cls)
        batch._columns = None
        batch.signs = signs
        batch.bits = bits
        batch._rows = None
        batch.width = width
        batch._col_cache = None
        batch._gather = None
        batch._chunks = chunks
        return batch

    @classmethod
    def from_deltas(cls, deltas, width):
        n = len(deltas)
        if n == 0:
            return cls.empty(width)
        signs = np.array([d.sign for d in deltas], dtype=np.int64)
        bits = np.array([d.bits for d in deltas], dtype=np.int64)
        # the source tuples ARE the Python-typed rows; keeping them (and
        # columnizing lazily) makes every row-wise consumer free
        rows = [d.row for d in deltas] if width else [()] * n
        return cls.from_rows(rows, signs, bits, width)

    @property
    def columns(self):
        """The full struct-of-arrays view (materializes a row-backed
        batch; vectorized kernels that gather every column pay this once
        per batch)."""
        columns = self._columns
        if columns is None:
            rows = self._rows
            if not self.width:
                columns = ()
            elif rows is not None and not rows:
                columns = tuple(
                    np.empty(0, dtype=object) for _ in range(self.width)
                )
            elif rows is not None:
                cache = self._col_cache or {}
                cols = zip(*rows)
                columns = tuple(
                    cache[i] if i in cache else column_array(col)
                    for i, col in enumerate(cols)
                )
            else:
                columns = tuple(
                    self.column(i) for i in range(self.width)
                )
            self._columns = columns
            self._col_cache = None
        return columns

    def column(self, i):
        """One column's array, materialized (and cached) on demand."""
        columns = self._columns
        if columns is not None:
            return columns[i]
        cache = self._col_cache
        if cache is None:
            cache = self._col_cache = {}
        arr = cache.get(i)
        if arr is None:
            arr = cache[i] = self._build_column(i)
        return arr

    def _build_column(self, i):
        gather = self._gather
        if gather is not None:
            offset = 0
            for source, _rows, indices in gather:
                part_width = (
                    source.width if type(source) is ColumnBatch
                    else len(source)
                )
                if i < offset + part_width:
                    local = i - offset
                    base = (
                        source.column(local)
                        if type(source) is ColumnBatch else source[local]
                    )
                    return base[indices]
                offset += part_width
            raise IndexError(i)
        chunks = self._chunks
        if chunks is not None:
            return concat_columns([chunk.column(i) for chunk in chunks])
        return column_array([row[i] for row in self._rows])

    def column_values(self, i):
        """One column as a Python-typed list (no array detour when the
        batch is row-backed)."""
        rows = self._rows
        if rows is not None:
            return [row[i] for row in rows]
        return self.column(i).tolist()

    def rows(self):
        """Python-typed row tuples (cached per batch)."""
        rows = self._rows
        if rows is None:
            gather = self._gather
            chunks = self._chunks
            if gather is not None:
                parts = []
                for source, src_rows, indices in gather:
                    idx = indices.tolist()
                    if type(source) is ColumnBatch:
                        src = source.rows()
                        parts.append([src[k] for k in idx])
                    elif src_rows is not None:
                        parts.append([src_rows[k] for k in idx])
                    elif not len(source):
                        parts.append([()] * len(idx))
                    else:
                        zipped = list(
                            zip(*(c.tolist() for c in source))
                        )
                        parts.append([zipped[k] for k in idx])
                if len(parts) == 1:
                    rows = parts[0]
                elif len(parts) == 2:
                    rows = [a + b for a, b in zip(parts[0], parts[1])]
                else:
                    rows = [
                        tuple(v for part in row_parts for v in part)
                        for row_parts in zip(*parts)
                    ]
            elif chunks is not None:
                rows = []
                for chunk in chunks:
                    rows.extend(chunk.rows())
            elif self._columns:
                rows = list(zip(*(c.tolist() for c in self._columns)))
            else:
                rows = [()] * len(self.signs)
            self._rows = rows
        return rows

    def take(self, indices):
        """Row subset by index array (columns, signs and bits together).

        Row-backed batches gather rows and stay row-backed; gather views
        compose indices; chunk stacks split at chunk boundaries (take
        callers pass ascending index arrays -- ``np.flatnonzero``
        masks); column-backed batches gather arrays.
        """
        if self._columns is None:
            rows = self._rows
            if rows is not None:
                return ColumnBatch.from_rows(
                    [rows[i] for i in indices.tolist()],
                    self.signs[indices],
                    self.bits[indices],
                    self.width,
                )
            gather = self._gather
            if gather is not None:
                batch = ColumnBatch.from_gather(
                    tuple(
                        (source, src_rows, part_idx[indices])
                        for source, src_rows, part_idx in gather
                    ),
                    self.signs[indices],
                    self.bits[indices],
                    self.width,
                )
                cache = self._col_cache
                if cache:
                    batch._col_cache = {
                        i: arr[indices] for i, arr in cache.items()
                    }
                return batch
            chunks = self._chunks
            n = len(indices)
            ascending = (
                n < 2 or bool((indices[1:] >= indices[:-1]).all())
            )
            if ascending:
                kept = []
                offset = 0
                pos = 0
                for chunk in chunks:
                    end = offset + len(chunk)
                    cut = int(np.searchsorted(indices, end, side="left"))
                    if cut > pos:
                        kept.append(chunk.take(indices[pos:cut] - offset))
                    pos = cut
                    offset = end
                signs = self.signs[indices]
                bits = self.bits[indices]
                if not kept:
                    return ColumnBatch.from_rows([], signs, bits, self.width)
                if len(kept) == 1:
                    only = kept[0]
                    only.signs = signs
                    only.bits = bits
                    return only
                return ColumnBatch.from_chunks(
                    tuple(kept), signs, bits, self.width
                )
            # unordered indices: fall through to the array gather
        return ColumnBatch(
            tuple(c[indices] for c in self.columns),
            self.signs[indices],
            self.bits[indices],
        )

    def with_bits(self, bits):
        """Same rows/columns, new bits (shares backing storage)."""
        if self._columns is not None:
            batch = ColumnBatch(self._columns, self.signs, bits)
            batch._rows = self._rows
            return batch
        batch = ColumnBatch.__new__(ColumnBatch)
        batch._columns = None
        batch.signs = self.signs
        batch.bits = bits
        batch._rows = self._rows
        batch.width = self.width
        batch._col_cache = self._col_cache
        batch._gather = self._gather
        batch._chunks = self._chunks
        return batch

    def to_deltas(self):
        """Back to tuple-land; every value is a Python scalar again."""
        out = []
        append = out.append
        new = _NEW
        cls = Delta
        for row, sign, bits in zip(
            self.rows(), self.signs.tolist(), self.bits.tolist()
        ):
            record = new(cls)
            record.row = row
            record.sign = sign
            record.bits = bits
            append(record)
        return out


def as_columns(out, width):
    """Adapt a child operator's output (batch or delta list) to columns."""
    if isinstance(out, ColumnBatch):
        return out
    return ColumnBatch.from_deltas(out, width)


def as_deltas(out):
    """Adapt an operator's output (batch or delta list) to a delta list."""
    if isinstance(out, ColumnBatch):
        return out.to_deltas()
    return out


def concat_batches(batches, width):
    """Concatenate output batches in order (used by the columnar join).

    If every chunk is row-backed the concatenation is a list merge and
    the result stays row-backed (lazy); if any chunk is a lazy view
    (gather- or chunk-backed) the result is a chunk-backed stack that
    defers per-column concatenation until the column is read; only
    all-column-backed inputs concatenate eagerly.
    """
    if not batches:
        return ColumnBatch.empty(width)
    if len(batches) == 1:
        return batches[0]
    signs = np.concatenate([b.signs for b in batches])
    bits = np.concatenate([b.bits for b in batches])
    if all(b._rows is not None and b._columns is None for b in batches):
        rows = []
        for b in batches:
            rows.extend(b._rows)
        return ColumnBatch.from_rows(rows, signs, bits, width)
    if any(b._columns is None for b in batches):
        return ColumnBatch.from_chunks(tuple(batches), signs, bits, width)
    columns = tuple(
        concat_columns([b.columns[i] for b in batches]) for i in range(width)
    )
    return ColumnBatch(columns, signs, bits)
