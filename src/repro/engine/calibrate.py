"""Calibration: one instrumented batch run fills per-node statistics.

Mirrors the paper's use of historical statistics (sections 2.1, 3.2): a
recurring query's prior executions tell the optimizer the cardinalities
it needs.  :func:`calibrate_plan` runs the plan once in batch mode
(every pace 1) with statistics collection enabled and attaches a
:class:`~repro.cost.stats.NodeStats` to every plan node.
"""

from ..cost.stats import NodeStats
from ..physical.operators import AggregateExec, JoinExec, SourceExec
from .executor import PlanExecutor
from .stream import StreamConfig


class CalibrationResult:
    """Outcome of a calibration run.

    Attributes
    ----------
    run:
        the batch :class:`~repro.engine.metrics.RunResult`.
    query_batch_work:
        per-query total work units of the batch run, summed over the
        query's subplans.  For an *unshared* plan this is the paper's
        "final work of separately executing the query in one batch" --
        the denominator of relative final-work constraints.
    query_batch_latency:
        the same, converted to seconds.
    """

    def __init__(self, run, query_batch_work, query_batch_latency):
        self.run = run
        self.query_batch_work = query_batch_work
        self.query_batch_latency = query_batch_latency

    def __repr__(self):
        return "CalibrationResult(total_work=%.1f)" % self.run.total_work


def calibrate_plan(plan, stream_config=None):
    """Run ``plan`` in batch mode and attach statistics to its nodes."""
    stream_config = stream_config or StreamConfig()
    executor = PlanExecutor(plan, stream_config, stats_mode=True)
    paces = {subplan.sid: 1 for subplan in plan.subplans}
    run = executor.run(paces, collect_results=False)

    for unit in executor.compiled.values():
        _collect_stats(unit.root_exec)

    query_batch_work = {}
    query_batch_latency = {}
    for qid in plan.query_roots:
        work = sum(
            run.subplan_total_work.get(subplan.sid, 0.0)
            for subplan in plan.subplans_of_query(qid)
        )
        query_batch_work[qid] = work
        query_batch_latency[qid] = stream_config.seconds(work)
    return CalibrationResult(run, query_batch_work, query_batch_latency)


def _collect_stats(exec_op):
    if isinstance(exec_op, SourceExec):
        stats = NodeStats("source")
        stats.scanned_total = float(exec_op.scanned_total)
        stats.kept_total = float(exec_op.kept_total)
        stats.kept_per_q = {q: float(c) for q, c in exec_op.kept_per_q.items()}
        _fill_filter_sel(stats, exec_op.decorations)
        exec_op.node.stats = stats
        return
    if isinstance(exec_op, JoinExec):
        _collect_stats(exec_op.left)
        _collect_stats(exec_op.right)
        stats = NodeStats("join")
        stats.in_left = float(exec_op.in_left)
        stats.in_right = float(exec_op.in_right)
        stats.in_left_per_q = {q: float(c) for q, c in exec_op.in_left_per_q.items()}
        stats.in_right_per_q = {q: float(c) for q, c in exec_op.in_right_per_q.items()}
        stats.join_out = float(exec_op.out_total)
        stats.join_out_per_q = {q: float(c) for q, c in exec_op.out_per_q.items()}
        _fill_filter_sel(stats, exec_op.decorations)
        exec_op.node.stats = stats
        return
    if isinstance(exec_op, AggregateExec):
        _collect_stats(exec_op.child)
        stats = NodeStats("aggregate")
        stats.agg_in = float(exec_op.in_total)
        stats.agg_in_per_q = {q: float(c) for q, c in exec_op.in_per_q.items()}
        stats.groups_union = float(exec_op.group_count())
        stats.groups_per_q = {
            q: float(exec_op.group_count(q)) for q in exec_op.in_per_q
        }
        stats.agg_out = float(exec_op.out_total)
        stats.has_minmax = any(spec.func in ("min", "max") for spec in exec_op.specs)
        _fill_filter_sel(stats, exec_op.decorations)
        exec_op.node.stats = stats
        return
    raise TypeError("unknown physical operator %r" % (exec_op,))


def _fill_filter_sel(stats, decorations):
    for qid, in_count in decorations.filter_in_per_q.items():
        out_count = decorations.filter_out_per_q.get(qid, 0)
        stats.filter_sel_per_q[qid] = (out_count / in_count) if in_count else 1.0
