"""Calibration: one instrumented batch run fills per-node statistics.

Mirrors the paper's use of historical statistics (sections 2.1, 3.2): a
recurring query's prior executions tell the optimizer the cardinalities
it needs.  :func:`calibrate_plan` runs the plan once in batch mode
(every pace 1) with statistics collection enabled and attaches a
:class:`~repro.cost.stats.NodeStats` to every plan node.

Calibration results can be cached on disk (:mod:`repro.cost.cache`):
when a cache is passed -- or installed process-wide with
:func:`repro.cost.cache.set_default_cache` -- a repeat calibration over
the same plan structure, table content and stream configuration replays
the stored statistics instead of executing the batch run.
"""

import logging

from ..cost import cache as calibration_cache
from ..cost.stats import NodeStats
from ..obs import OBS
from ..physical.hotpath import columnar_available
from ..physical.operators import AggregateExec, JoinExec, SourceExec
from .executor import PlanExecutor
from .stream import StreamConfig

# the columnar twins expose the identical stats surface
# (scanned/kept/in/out totals and per-q dicts, decorations counters), so
# the stats walker treats them interchangeably; ColumnarAggregateExec
# subclasses AggregateExec and needs no separate entry
if columnar_available():
    from ..physical.columnar import ColumnarJoinExec, ColumnarSourceExec

    _SOURCE_EXECS = (SourceExec, ColumnarSourceExec)
    _JOIN_EXECS = (JoinExec, ColumnarJoinExec)
else:  # pragma: no cover - the container bakes numpy in
    _SOURCE_EXECS = (SourceExec,)
    _JOIN_EXECS = (JoinExec,)

logger = logging.getLogger(__name__)

#: count of *actual* calibration batch executions in this process (cache
#: replays do not increment it); tests assert warm runs leave it untouched
_execution_count = [0]


def calibration_execution_count():
    """How many non-cached calibration batch runs this process performed."""
    return _execution_count[0]


class CalibrationResult:
    """Outcome of a calibration run.

    Attributes
    ----------
    run:
        the batch :class:`~repro.engine.metrics.RunResult`.
    query_batch_work:
        per-query total work units of the batch run, summed over the
        query's subplans.  For an *unshared* plan this is the paper's
        "final work of separately executing the query in one batch" --
        the denominator of relative final-work constraints.
    query_batch_latency:
        the same, converted to seconds.
    """

    def __init__(self, run, query_batch_work, query_batch_latency):
        self.run = run
        self.query_batch_work = query_batch_work
        self.query_batch_latency = query_batch_latency

    def __repr__(self):
        return "CalibrationResult(total_work=%.1f)" % self.run.total_work


class CachedCalibrationRun:
    """Summary stand-in for the batch :class:`RunResult` of a cache replay.

    Carries the aggregate measurements consumers of a calibration use;
    the per-execution records of the original run are not stored.
    """

    __slots__ = ("stream_config", "total_work", "subplan_total_work", "records")

    def __init__(self, stream_config, total_work, subplan_total_work):
        self.stream_config = stream_config
        self.total_work = total_work
        self.subplan_total_work = dict(subplan_total_work)
        self.records = []

    @property
    def total_seconds(self):
        return self.stream_config.seconds(self.total_work)

    def __repr__(self):
        return "CachedCalibrationRun(total_work=%.1f)" % self.total_work


def calibrate_plan(plan, stream_config=None, cache=None):
    """Run ``plan`` in batch mode and attach statistics to its nodes.

    ``cache`` overrides the process-wide default calibration cache
    (:func:`repro.cost.cache.set_default_cache`); when either is set, a
    content-key hit replays the stored statistics without executing.
    """
    stream_config = stream_config or StreamConfig()
    if cache is None:
        cache = calibration_cache.get_default_cache()
    start_us = OBS.tracer.now_us() if OBS.enabled else 0.0
    key = None
    if cache is not None:
        key = cache.key_for(plan, stream_config)
        payload = cache.get(key)
        if payload is not None:
            result = _replay_cached(plan, stream_config, payload)
            if result is not None:
                logger.debug("calibration replayed from cache (key %s)", key[:12])
                if OBS.enabled:
                    OBS.metrics.counter("calibration.replays").inc()
                    OBS.tracer.complete(
                        "engine.calibrate", start_us,
                        {"cached": True, "subplans": len(plan.subplans)},
                    )
                return result
            # present but not applicable to this plan: a stale entry
            if OBS.enabled:
                OBS.metrics.counter("calibration.cache.invalidation").inc()

    executor = PlanExecutor(plan, stream_config, stats_mode=True)
    paces = {subplan.sid: 1 for subplan in plan.subplans}
    run = executor.run(paces, collect_results=False)
    _execution_count[0] += 1
    logger.debug(
        "calibration batch run: %d subplans, total work %.1f",
        len(plan.subplans), run.total_work,
    )
    if OBS.enabled:
        OBS.metrics.counter("calibration.batch_runs").inc()
        OBS.tracer.complete(
            "engine.calibrate", start_us,
            {"cached": False, "subplans": len(plan.subplans),
             "total_work": round(run.total_work, 2)},
        )

    for unit in executor.compiled.values():
        _collect_stats(unit.root_exec)

    query_batch_work = {}
    query_batch_latency = {}
    for qid in plan.query_roots:
        work = sum(
            run.subplan_total_work.get(subplan.sid, 0.0)
            for subplan in plan.subplans_of_query(qid)
        )
        query_batch_work[qid] = work
        query_batch_latency[qid] = stream_config.seconds(work)
    result = CalibrationResult(run, query_batch_work, query_batch_latency)
    if cache is not None:
        cache.put(key, _serialize_result(plan, result))
    return result


def _serialize_result(plan, result):
    """JSON-safe cache payload for one calibration outcome."""
    order = plan.topological_order()
    position = {subplan.sid: index for index, subplan in enumerate(order)}
    return {
        "stats": calibration_cache.serialize_stats(plan),
        "query_batch_work": {
            str(qid): work for qid, work in result.query_batch_work.items()
        },
        "total_work": result.run.total_work,
        "subplan_total_work": {
            str(position[sid]): work
            for sid, work in result.run.subplan_total_work.items()
        },
    }


def _replay_cached(plan, stream_config, payload):
    """Rebuild a :class:`CalibrationResult` from a cache payload.

    Returns None (fall through to a real batch run) when the payload does
    not line up with the plan -- a stale or corrupt entry, not an error.
    """
    try:
        calibration_cache.apply_stats(plan, payload["stats"])
        query_batch_work = {
            int(qid): float(work)
            for qid, work in payload["query_batch_work"].items()
        }
        total_work = float(payload["total_work"])
        stored_subplan_work = payload.get("subplan_total_work", {})
    except (KeyError, TypeError, ValueError):
        return None
    if set(query_batch_work) != set(plan.query_roots):
        return None
    order = plan.topological_order()
    subplan_total_work = {}
    try:
        for position, work in stored_subplan_work.items():
            subplan_total_work[order[int(position)].sid] = float(work)
    except (IndexError, TypeError, ValueError):
        return None
    query_batch_latency = {
        qid: stream_config.seconds(work)
        for qid, work in query_batch_work.items()
    }
    run = CachedCalibrationRun(stream_config, total_work, subplan_total_work)
    return CalibrationResult(run, query_batch_work, query_batch_latency)


def _collect_stats(exec_op):
    if isinstance(exec_op, _SOURCE_EXECS):
        stats = NodeStats("source")
        stats.scanned_total = float(exec_op.scanned_total)
        stats.kept_total = float(exec_op.kept_total)
        stats.kept_per_q = {q: float(c) for q, c in exec_op.kept_per_q.items()}
        _fill_filter_sel(stats, exec_op.decorations)
        exec_op.node.stats = stats
        return
    if isinstance(exec_op, _JOIN_EXECS):
        _collect_stats(exec_op.left)
        _collect_stats(exec_op.right)
        stats = NodeStats("join")
        stats.in_left = float(exec_op.in_left)
        stats.in_right = float(exec_op.in_right)
        stats.in_left_per_q = {q: float(c) for q, c in exec_op.in_left_per_q.items()}
        stats.in_right_per_q = {q: float(c) for q, c in exec_op.in_right_per_q.items()}
        stats.join_out = float(exec_op.out_total)
        stats.join_out_per_q = {q: float(c) for q, c in exec_op.out_per_q.items()}
        _fill_filter_sel(stats, exec_op.decorations)
        exec_op.node.stats = stats
        return
    if isinstance(exec_op, AggregateExec):
        _collect_stats(exec_op.child)
        stats = NodeStats("aggregate")
        stats.agg_in = float(exec_op.in_total)
        stats.agg_in_per_q = {q: float(c) for q, c in exec_op.in_per_q.items()}
        stats.groups_union = float(exec_op.group_count())
        stats.groups_per_q = {
            q: float(exec_op.group_count(q)) for q in exec_op.in_per_q
        }
        stats.agg_out = float(exec_op.out_total)
        stats.has_minmax = any(spec.func in ("min", "max") for spec in exec_op.specs)
        _fill_filter_sel(stats, exec_op.decorations)
        exec_op.node.stats = stats
        return
    raise TypeError("unknown physical operator %r" % (exec_op,))


def _fill_filter_sel(stats, decorations):
    for qid, in_count in decorations.filter_in_per_q.items():
        out_count = decorations.filter_out_per_q.get(qid, 0)
        stats.filter_sel_per_q[qid] = (out_count / in_count) if in_count else 1.0
