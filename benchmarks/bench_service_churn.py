#!/usr/bin/env python
"""Service-mode churn benchmark: SLO misses and work under online churn.

Drives the long-running multi-tenant service (``python -m repro.service``,
docs/SERVICE.md) through a fixed churn schedule -- three tenants
registering and deregistering TPC-H queries across six trigger windows --
and reports the metrics the service exists to optimize:

* **SLO-miss rate**: fraction of query-windows whose measured latency
  exceeded the query's goal (goals derive from each query's solo batch
  cost, like the paper's relative final-work constraints);
* **work per query-window**: shared-execution efficiency under churn;
* **incremental re-optimization stats**: how many subplans each churn
  re-merge reused versus recalibrated (from the decision log);
* **slack ledger roll-up** (docs/OBSERVABILITY.md): worst deadline
  headroom, pace-induced deferred work, queries projected to miss;
* **attribution conservation**: the solo-cost-proportional shared-work
  split must account for every measured work unit, exactly;
* **regret report coverage**: every ``pace_*`` decision-log record is
  re-scored against the measured-cost oracle;
* serial vs ``--jobs 2`` **bit-identity** of the merged report.

Results land in ``BENCH_service.json`` (repo root by default).
``--check`` compares a fresh run against the committed baseline instead
of overwriting it: admission decisions must be *identical* and the SLO
miss count must not regress.  CI runs this mode (see
``.github/workflows/ci.yml``'s ``service-smoke`` job).

Usage::

    PYTHONPATH=src python benchmarks/bench_service_churn.py
        [--output PATH] [--check [BASELINE]] [--jobs N] [--no-cache]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import obs  # noqa: E402
from repro.harness.service import run_service_schedule  # noqa: E402
from repro.obs import OBS  # noqa: E402
from repro.obs.export import regret_report  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_service.json"
)

#: Three tenants, eight registrations (one with an unsatisfiable goal,
#: one over its tenant's budget), two deregistrations, six windows.
SCHEDULE = {
    "workload": {"scale": 0.06, "seed": 100},
    "window_seconds": 60.0,
    "windows": 6,
    "shards": 2,
    "max_pace": 8,
    "admission": "reject",
    "tenant_budgets": {"gamma": 1.0},
    "events": [
        {"at": 0.0, "op": "register", "query_id": 0, "tenant": "alpha",
         "query": "Q1", "goal": 0.6},
        {"at": 5.0, "op": "register", "query_id": 1, "tenant": "alpha",
         "query": "Q6", "goal": 0.6},
        {"at": 10.0, "op": "register", "query_id": 2, "tenant": "beta",
         "query": "Q12", "goal": 0.5},
        {"at": 70.0, "op": "register", "query_id": 3, "tenant": "beta",
         "query": "Q18", "goal": 0.5},
        {"at": 75.0, "op": "register", "query_id": 4, "tenant": "alpha",
         "query": "Q14", "goal": 1e-9},
        {"at": 80.0, "op": "register", "query_id": 5, "tenant": "gamma",
         "query": "Q3", "goal": 0.8},
        {"at": 130.0, "op": "deregister", "query_id": 0},
        {"at": 135.0, "op": "register", "query_id": 6, "tenant": "alpha",
         "query": "Q19", "goal": 0.7},
        {"at": 190.0, "op": "register", "query_id": 7, "tenant": "beta",
         "query": "Q4", "goal": 0.7},
        {"at": 250.0, "op": "deregister", "query_id": 2},
        {"at": 255.0, "op": "register", "query_id": 8, "tenant": "alpha",
         "query": "Q14", "goal": 0.8},
    ],
}


def _reoptimize_stats():
    """Aggregate the decision log's service_reoptimize records."""
    records = OBS.declog.of_event("service_reoptimize")
    incremental = [r for r in records if r["scope"] == "incremental"]
    reused = sum(len(r["reused"]) for r in records)
    recalibrated = sum(len(r["recalibrated"]) for r in records)
    return {
        "searches": len(records),
        "incremental": len(incremental),
        "subplans_reused": reused,
        "subplans_recalibrated": recalibrated,
        "reuse_fraction": (
            reused / (reused + recalibrated)
            if (reused + recalibrated) else 0.0
        ),
        "memo_rows_carried": sum(r["memo_rows_carried"] for r in records),
        "search_iterations": sum(r["search_iterations"] for r in records),
    }


def run_benchmark(jobs):
    obs.enable(process_name="bench-service")
    try:
        started = time.perf_counter()
        report = run_service_schedule(SCHEDULE, jobs=1)
        serial_seconds = time.perf_counter() - started
        stats = _reoptimize_stats()
        feedback_by_run = {
            "shard-%d" % shard["shard"]: shard.get("feedback", {})
            for shard in report["shards"]
        }
        regret = regret_report(
            OBS.declog.records, feedback_by_run=feedback_by_run
        )
        pace_seqs = [
            r["seq"] for r in OBS.declog.records
            if r["event"].startswith("pace_")
        ]
    finally:
        obs.disable()

    started = time.perf_counter()
    parallel = run_service_schedule(SCHEDULE, jobs=jobs)
    parallel_seconds = time.perf_counter() - started
    identical = json.dumps(report, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )
    return {
        "schedule": {
            "windows": SCHEDULE["windows"],
            "shards": SCHEDULE["shards"],
            "events": len(SCHEDULE["events"]),
            "workload": SCHEDULE["workload"],
        },
        "summary": report["summary"],
        "admission": [
            [d["query_id"], d["status"]]
            for shard in report["shards"]
            for d in shard["admission"]
        ],
        "reoptimize": stats,
        "slack": report["summary"]["slack"],
        "attribution_conserved": report["summary"]["attribution_conserved"],
        "regret": {
            "decisions": regret["decision_count"],
            "switched": regret["switched"],
            "total_regret_work": round(regret["total_regret_work"], 4),
            "covered": regret["covered_seqs"] == pace_seqs,
        },
        "bit_identical_parallel": identical,
        "timing": {
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "jobs": jobs,
        },
    }


def check_against(result, baseline_path):
    """Zero-regression gate: admissions identical, SLO misses not worse."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    if result["admission"] != baseline["admission"]:
        failures.append(
            "admission decisions diverge from baseline:\n  now:      %r\n"
            "  baseline: %r" % (result["admission"], baseline["admission"])
        )
    now_misses = result["summary"]["slo_misses"]
    base_misses = baseline["summary"]["slo_misses"]
    if now_misses > base_misses:
        failures.append(
            "SLO misses regressed: %d now vs %d in baseline"
            % (now_misses, base_misses)
        )
    if result["summary"]["query_windows"] != baseline["summary"]["query_windows"]:
        failures.append(
            "query-window count changed: %d now vs %d in baseline"
            % (
                result["summary"]["query_windows"],
                baseline["summary"]["query_windows"],
            )
        )
    if not result["bit_identical_parallel"]:
        failures.append("serial and parallel reports are not bit-identical")
    # invariants of the fresh run itself (independent of the baseline's age)
    if not result["attribution_conserved"]:
        failures.append("shared-work attribution leaked work units")
    if not result["regret"]["covered"]:
        failures.append(
            "regret report does not cover every pace-search decision"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--check", nargs="?", const=DEFAULT_OUTPUT,
                        default=None, metavar="BASELINE",
                        help="compare against a committed baseline instead "
                             "of overwriting it (default: the --output path)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the parallel leg")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk calibration cache")
    args = parser.parse_args(argv)

    if args.no_cache:
        from repro.cost.cache import set_default_cache

        set_default_cache(None)

    result = run_benchmark(args.jobs)
    summary = result["summary"]
    print(
        "service churn: %d query-windows, SLO miss rate %.3f, "
        "work/query-window %.1f" % (
            summary["query_windows"], summary["slo_miss_rate"],
            summary["work_per_query_window"],
        )
    )
    print(
        "admission: %(admitted)d admitted, %(rejected)d rejected, "
        "%(queued)d queued" % summary["admission"]
    )
    stats = result["reoptimize"]
    print(
        "re-optimization: %d searches (%d incremental), %d subplans reused "
        "vs %d recalibrated (%.0f%% reuse), %d memo rows carried" % (
            stats["searches"], stats["incremental"],
            stats["subplans_reused"], stats["subplans_recalibrated"],
            100 * stats["reuse_fraction"], stats["memo_rows_carried"],
        )
    )
    slack = result["slack"]
    print(
        "slack: min headroom %.1f work, %.1f deferred, %d projected misses; "
        "attribution conserved: %s" % (
            slack["min_headroom_work"], slack["deferred_work"],
            slack["projected_misses"], result["attribution_conserved"],
        )
    )
    regret = result["regret"]
    print(
        "regret: %d decisions re-scored (covered: %s), %d oracle switches, "
        "%.1f work of regret" % (
            regret["decisions"], regret["covered"], regret["switched"],
            regret["total_regret_work"],
        )
    )
    print(
        "wall: %.2fs serial, %.2fs with %d jobs, bit-identical: %s" % (
            result["timing"]["serial_seconds"],
            result["timing"]["parallel_seconds"],
            result["timing"]["jobs"],
            result["bit_identical_parallel"],
        )
    )

    if args.check is not None:
        failures = check_against(result, os.path.abspath(args.check))
        for failure in failures:
            print("CHECK FAILED: %s" % failure)
        if not failures:
            print("check against %s passed" % os.path.abspath(args.check))
        return 1 if failures else 0

    if not result["bit_identical_parallel"]:
        print("ERROR: serial and parallel reports are not bit-identical")
        return 1
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
