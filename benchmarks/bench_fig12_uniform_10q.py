"""Figure 12: uniform constraints over the sharing-friendly 10 queries.

Paper shape: with similar absolute constraints, Share-Uniform beats the
NoShare approaches; iShare is lowest at every level.
"""

from common import bench_jobs, bench_seed, run_and_report
from repro.harness import fig12


def test_fig12_uniform_10q(benchmark):
    result = run_and_report(
        benchmark, "fig12", lambda: fig12(scale=0.5, max_pace=100, jobs=bench_jobs(), catalog_seed=bench_seed())
    )
    for label, by_approach in result.data["rows"]:
        assert (
            by_approach["iShare"].total_seconds
            <= min(r.total_seconds for r in by_approach.values()) * 1.05
        ), label
