"""Figure 14 / Table 3: the decomposition ablation on the variant workload.

Paper shape: on the sharing-friendly originals + predicate-mutated
variants, iShare (w/ unshare) is cheapest at tight constraints, where
iShare (w/o unshare) suffers the overly-eager shared subplans; the
brute-force splitter lands close to the greedy clustering.
"""

from common import bench_jobs, bench_seed, run_and_report
from repro.harness import fig14


def test_fig14_decomposition(benchmark):
    result = run_and_report(
        benchmark, "fig14",
        lambda: fig14(scale=0.4, max_pace=100, levels=(1.0, 0.5, 0.2, 0.1),
                      jobs=bench_jobs(), catalog_seed=bench_seed()),
    )
