"""Figure 16: clustering vs brute-force split search.

Paper shape: brute force enumerates Bell-number many partitions and grows
exponentially with the number of queries; the greedy clustering stays
near-flat.
"""

from common import bench_seed, run_and_report
from repro.harness import fig16


def test_fig16_clustering(benchmark):
    result = run_and_report(
        benchmark, "fig16",
        lambda: fig16(scale=0.35, query_counts=(2, 3, 4, 5, 6, 7),
                      catalog_seed=bench_seed()),
    )
    rows = result.data["rows"]
    # brute force at the largest size is far slower than clustering
    last = rows[-1]
    assert last[2] > last[1]
