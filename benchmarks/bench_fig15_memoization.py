"""Figure 15: optimization overhead with and without memoization.

Paper shape: without the Algorithm-1 memo tables, the pace search's cost
explodes with the max pace and DNFs past the cutoff; with memoization it
stays in seconds.
"""

from common import bench_seed, run_and_report
from repro.harness import fig15


def test_fig15_memoization(benchmark):
    result = run_and_report(
        benchmark, "fig15",
        lambda: fig15(scale=0.35, max_paces=(10, 25, 50, 100), dnf_seconds=60.0,
                      catalog_seed=bench_seed()),
    )
    rows = result.data["rows"]
    # with memoization every setting finishes
    assert all(not isinstance(row[1], str) for row in rows)
