"""Figure 13 / Table 2: manually tuned pace configurations.

Paper shape: with every approach tuned to (nearly) meet the rel-0.1
goals, iShare still uses the least CPU; the single-pace approaches keep
missing on the non-incrementable query.
"""

from common import bench_seed, run_and_report
from repro.harness import fig13


def test_fig13_manual_tuning(benchmark):
    result = run_and_report(
        benchmark, "fig13", lambda: fig13(scale=0.4, max_pace=100, catalog_seed=bench_seed())
    )
    results = result.data["results"]
    assert (
        results["iShare"].total_seconds
        <= min(r.total_seconds for r in results.values()) * 1.05
    )
