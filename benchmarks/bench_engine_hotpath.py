#!/usr/bin/env python
"""Hot-path engine benchmark: batched vs. per-tuple reference paths.

Measures, for each physical operator class, the delta throughput of the
batched hot path against the original per-tuple reference path (kept in
the engine as the switchable correctness oracle), plus the fig11-style
end-to-end wall clock and the effect of the compiled-artifact cache and
operator-tree reuse.  Results land in ``BENCH_hotpath.json`` (repo root
by default; see docs/PERFORMANCE.md for how to read it).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py [--quick]
        [--output PATH] [--scale S] [--repeat N]

This is a standalone script (not a pytest-benchmark module) so CI can run
it directly and archive the JSON artifact.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.executor import PlanExecutor  # noqa: E402
from repro.engine.stream import StreamConfig  # noqa: E402
from repro.mqo.merge import MQOOptimizer  # noqa: E402
from repro.mqo.nodes import OpNode, TableRef  # noqa: E402
from repro.physical.hotpath import clear_compiled_caches, engine_mode  # noqa: E402
from repro.physical.operators import (  # noqa: E402
    AggregateExec,
    JoinExec,
    SourceExec,
)
from repro.physical.work import WorkMeter  # noqa: E402
from repro.relational.expressions import agg_avg, agg_sum, col  # noqa: E402
from repro.relational.schema import Schema  # noqa: E402
from repro.relational.tuples import DELETE, Delta, INSERT, consolidate  # noqa: E402
from repro.workloads.tpch import (  # noqa: E402
    ALL_QUERY_NAMES,
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_hotpath.json"
)


class _Feed:
    """A scripted child operator (same adapter the unit tests use)."""

    def __init__(self, batches):
        self._template = batches
        self.batches = list(batches)

    def advance(self):
        if not self.batches:
            return []
        return self.batches.pop(0)

    def reset(self):
        self.batches = list(self._template)


def _source_node(schema, filters=None, projections=None, mask=0b1111):
    return OpNode(
        "source", ref=TableRef("bench", schema), filters=filters,
        projections=projections, query_mask=mask,
    )


def _timed(fn, repeat):
    """Best-of-``repeat`` wall time of ``fn()`` (returns seconds)."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _micro_case(make_exec, batches, repeat):
    """Time one operator over scripted batches in both engine modes.

    ``make_exec(feeds)`` builds a fresh operator tree around the feeds;
    a fresh tree per timing keeps hash-table/group state comparable.
    """
    n_deltas = sum(len(batch) for batch in batches)

    def run_once():
        exec_op = make_exec()
        total = 0
        while True:
            out = exec_op.advance()
            total += len(out)
            if not exec_op._feeds_pending():
                break
        return total

    timings = {}
    for label, mode in (
        ("batched", dict(batched=True, compile_cache=True)),
        ("reference", dict(batched=False, compile_cache=False)),
    ):
        clear_compiled_caches()
        with engine_mode(**mode):
            seconds = _timed(run_once, repeat)
        timings[label] = {
            "seconds": seconds,
            "deltas_per_sec": n_deltas / seconds if seconds > 0 else None,
        }
    timings["speedup"] = (
        timings["reference"]["seconds"] / timings["batched"]["seconds"]
        if timings["batched"]["seconds"] > 0 else None
    )
    timings["input_deltas"] = n_deltas
    return timings


class _Harness:
    """Wraps an operator plus its feeds so the micro loop can drain it."""

    def __init__(self, exec_op, feeds):
        self._exec = exec_op
        self._feeds = feeds

    def advance(self):
        return self._exec.advance()

    def _feeds_pending(self):
        return any(feed.batches for feed in self._feeds)


def bench_filter_project(n, batches, repeat):
    schema = Schema.of("a", "b")
    node = _source_node(
        schema,
        filters={0: col("a") > 100, 1: col("a") > 5000, 2: col("b") > 50,
                 3: col("a") > 0},
        projections={0: (("s", col("a") + col("b")),)},
    )
    per_batch = max(1, n // batches)
    feed_batches = [
        [
            Delta((i * 7 % 10000, i % 100), INSERT, 0b1111)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]

    # SourceExec reads via reader.read_new(); adapt the feed
    class _ReaderFeed(_Feed):
        def read_new(self):
            return self.advance()

    def make_source():
        feed = _ReaderFeed(feed_batches)
        op = SourceExec(node, feed, 0b1111, WorkMeter())
        return _Harness(op, [feed])

    return _micro_case(make_source, feed_batches, repeat)


def bench_join(n, batches, repeat):
    left_schema = Schema.of("k", "x")
    right_schema = Schema.of("k2", "y")
    node = OpNode(
        "join",
        children=[
            _source_node(left_schema, mask=0b11),
            _source_node(right_schema, mask=0b11),
        ],
        left_keys=["k"], right_keys=["k2"], query_mask=0b11,
    )
    per_batch = max(1, n // (2 * batches))
    # moderate key fan-out with low-cardinality payloads: after projection
    # pushdown a shared join side carries the key plus a few small columns,
    # so stored slots accumulate net multiplicities > 1 (bag semantics) --
    # the regime the multiplicity-shared delta expansion is built for
    n_keys = max(256, n // 32)
    left_batches = [
        [
            Delta((i % n_keys, (i * 7) % 3), INSERT, 0b11 if i % 3 else 0b01)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]
    right_batches = [
        [
            Delta(((i * 5) % n_keys, -((i * 11) % 3)), INSERT,
                  0b11 if i % 2 else 0b10)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]

    def make():
        left = _Feed(left_batches)
        right = _Feed(right_batches)
        op = JoinExec(node, left, right, WorkMeter(), state_factor=0.3)
        return _Harness(op, [left, right])

    return _micro_case(make, left_batches + right_batches, repeat)


def bench_aggregate(n, batches, repeat, with_deletes=True):
    # six shared queries over one aggregate (the paper's sharing regime)
    # and a Q1-like group cardinality: few groups, many updates per group
    mask = 0b111111
    child_schema = Schema.of("g", "v")
    node = OpNode(
        "aggregate",
        children=[_source_node(child_schema, mask=mask)],
        group_by=["g"],
        aggs=[agg_sum(col("v"), "s"), agg_avg(col("v"), "m")],
        query_mask=mask,
    )
    per_batch = max(1, n // batches)
    n_groups = max(16, n // 600)
    bit_patterns = (0b111111, 0b010101, 0b001111)
    feed_batches = []
    for b in range(batches):
        batch = []
        for i in range(b * per_batch, (b + 1) * per_batch):
            bits = bit_patterns[i % 3]
            batch.append(Delta((i % n_groups, float(i % 997)), INSERT, bits))
            if with_deletes and i % 7 == 0 and i >= per_batch:
                j = i - per_batch
                bits_j = bit_patterns[j % 3]
                batch.append(
                    Delta((j % n_groups, float(j % 997)), DELETE, bits_j)
                )
        feed_batches.append(batch)

    def make():
        feed = _Feed(feed_batches)
        op = AggregateExec(node, feed, mask, WorkMeter(), state_factor=0.3)
        return _Harness(op, [feed])

    return _micro_case(make, feed_batches, repeat)


def bench_consolidate(n, repeat):
    deltas = []
    for i in range(n):
        row = (i % (n // 4 or 1), "payload-%d" % (i % 50))
        deltas.append(Delta(row, INSERT, 0b111))
        if i % 3 == 0:
            deltas.append(Delta(row, DELETE, 0b111))
    seconds = _timed(lambda: consolidate(deltas), repeat)
    return {
        "input_deltas": len(deltas),
        "seconds": seconds,
        "deltas_per_sec": len(deltas) / seconds if seconds > 0 else None,
    }


def bench_end_to_end(scale, repeat):
    """fig11-shaped run: shared plan over all 22 queries, mixed paces."""
    catalog = generate_catalog(scale=scale, seed=5)
    add_lineitem_updates(catalog, fraction=0.05, seed=11)
    queries = build_workload(catalog, ALL_QUERY_NAMES)
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    paces = {
        subplan.sid: 2 if subplan.child_subplans() else 6
        for subplan in plan.subplans
    }
    config = StreamConfig()

    results = {}
    for label, mode in (
        ("batched", dict(batched=True, compile_cache=True, reuse_trees=True)),
        ("reference", dict(batched=False, compile_cache=False,
                           reuse_trees=False)),
    ):
        clear_compiled_caches()
        with engine_mode(**mode):
            seconds = _timed(
                lambda: PlanExecutor(plan, config).run(
                    paces, collect_results=False
                ),
                repeat,
            )
        results[label] = {"seconds": seconds}
    results["speedup"] = (
        results["reference"]["seconds"] / results["batched"]["seconds"]
        if results["batched"]["seconds"] > 0 else None
    )

    # compiled-plan reuse: repeated runs on one executor vs fresh executors
    runs = 4
    clear_compiled_caches()
    with engine_mode(batched=True, compile_cache=True, reuse_trees=True):
        executor = PlanExecutor(plan, config)
        executor.run(paces, collect_results=False)  # warm the tree

        def reused():
            for _ in range(runs):
                executor.run(paces, collect_results=False)

        reused_seconds = _timed(reused, repeat)
    with engine_mode(batched=True, compile_cache=False, reuse_trees=False):
        def fresh():
            for _ in range(runs):
                clear_compiled_caches()
                PlanExecutor(plan, config).run(paces, collect_results=False)

        fresh_seconds = _timed(fresh, repeat)
    results["plan_reuse"] = {
        "runs": runs,
        "reused_tree_seconds": reused_seconds,
        "fresh_executor_seconds": fresh_seconds,
        "speedup": fresh_seconds / reused_seconds if reused_seconds > 0 else None,
    }
    results["workload"] = {
        "scale": scale,
        "queries": len(queries),
        "subplans": len(plan.subplans),
        "paces": sorted(set(paces.values())),
    }
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale for the end-to-end section")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (best-of)")
    args = parser.parse_args(argv)

    if args.quick:
        n, batches, repeat, scale = 40_000, 8, 2, 0.05
    else:
        n, batches, repeat, scale = 200_000, 10, 3, 0.12
    if args.scale is not None:
        scale = args.scale
    if args.repeat is not None:
        repeat = args.repeat

    report = {
        "config": {
            "quick": bool(args.quick),
            "micro_deltas": n,
            "micro_batches": batches,
            "repeat": repeat,
            "e2e_scale": scale,
            "python": sys.version.split()[0],
        },
        "micro": {},
    }

    print("hot-path micro benchmarks (%d deltas, best of %d)" % (n, repeat))
    for name, runner in (
        ("filter_project", lambda: bench_filter_project(n, batches, repeat)),
        ("join", lambda: bench_join(n, batches, repeat)),
        ("aggregate", lambda: bench_aggregate(n, batches, repeat)),
        ("aggregate_insert_only",
         lambda: bench_aggregate(n, batches, repeat, with_deletes=False)),
    ):
        case = runner()
        report["micro"][name] = case
        print(
            "  %-22s %9.0f/s batched  %9.0f/s reference  %.2fx"
            % (
                name,
                case["batched"]["deltas_per_sec"],
                case["reference"]["deltas_per_sec"],
                case["speedup"],
            )
        )

    case = bench_consolidate(n // 2, repeat)
    report["micro"]["consolidate"] = case
    print("  %-22s %9.0f/s" % ("consolidate", case["deltas_per_sec"]))

    print("end-to-end fig11 workload (scale %.2f)" % scale)
    e2e = bench_end_to_end(scale, repeat)
    report["end_to_end_fig11"] = e2e
    print(
        "  wall clock: %.3fs batched  %.3fs reference  %.2fx"
        % (
            e2e["batched"]["seconds"],
            e2e["reference"]["seconds"],
            e2e["speedup"],
        )
    )
    print(
        "  plan reuse (%d runs): %.3fs reused  %.3fs fresh  %.2fx"
        % (
            e2e["plan_reuse"]["runs"],
            e2e["plan_reuse"]["reused_tree_seconds"],
            e2e["plan_reuse"]["fresh_executor_seconds"],
            e2e["plan_reuse"]["speedup"],
        )
    )

    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    floor = 2.0
    agg_speedup = report["micro"]["aggregate"]["speedup"]
    join_speedup = report["micro"]["join"]["speedup"]
    if agg_speedup < floor or join_speedup < floor:
        print(
            "WARNING: speedup below the %.1fx acceptance floor "
            "(aggregate %.2fx, join %.2fx)" % (floor, agg_speedup, join_speedup)
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
