#!/usr/bin/env python
"""Hot-path engine benchmark: batched vs. per-tuple reference paths.

Measures, for each physical operator class, the delta throughput of the
batched hot path against the original per-tuple reference path (kept in
the engine as the switchable correctness oracle), plus the fig11-style
end-to-end wall clock and the effect of the compiled-artifact cache and
operator-tree reuse.  When numpy is available the columnar backend
(``engine_mode="columnar"``, docs/PERFORMANCE.md) is timed as a third
leg of every case.  Results land in ``BENCH_hotpath.json`` and the
columnar-vs-batched extract in ``BENCH_columnar.json`` (repo root by
default; see docs/PERFORMANCE.md for how to read them).

A fourth section measures shared arrangements (docs/ARRANGEMENTS.md): a
fan-out of single-join subplans over the same base tables, run with
arrangements on and off.  Alongside wall clock it records resident
join-state entries and index-maintenance operations for both legs --
after asserting the two runs are work- and result-identical -- and the
extract lands in ``BENCH_arrangements.json``.  With ``--check`` the
script exits nonzero unless arrangements cut resident entries by at
least ``ARRANGEMENT_ENTRY_FLOOR``.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py [--quick]
        [--output PATH] [--columnar-output PATH]
        [--arrangements-output PATH] [--scale S] [--repeat N] [--seed S]
        [--jobs N] [--check]

This is a standalone script (not a pytest-benchmark module) so CI can run
it directly and archive the JSON artifacts.
"""

import argparse
import gc
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.engine.executor import PlanExecutor  # noqa: E402
from repro.engine.parallel import plan_components, run_parallel  # noqa: E402
from repro.engine.stream import StreamConfig  # noqa: E402
from repro.logical.builder import PlanBuilder  # noqa: E402
from repro.mqo.merge import MQOOptimizer, build_unshared_plan  # noqa: E402
from repro.mqo.nodes import OpNode, TableRef  # noqa: E402
from repro.physical.hotpath import (  # noqa: E402
    clear_compiled_caches,
    columnar_available,
    engine_mode,
)
from repro.physical.operators import (  # noqa: E402
    AggregateExec,
    JoinExec,
    SourceExec,
)
from repro.physical.work import WorkMeter  # noqa: E402
from repro.relational.expressions import agg_avg, agg_sum, col  # noqa: E402
from repro.relational.schema import FLOAT, INT, Schema  # noqa: E402
from repro.relational.table import Catalog  # noqa: E402
from repro.relational.tuples import DELETE, Delta, INSERT, consolidate  # noqa: E402
from repro.workloads.tpch import (  # noqa: E402
    ALL_QUERY_NAMES,
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_hotpath.json"
)
DEFAULT_COLUMNAR_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_columnar.json"
)
DEFAULT_ARRANGEMENTS_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..",
    "BENCH_arrangements.json"
)

#: ``--check``: minimum resident-entry reduction from shared arrangements
ARRANGEMENT_ENTRY_FLOOR = 2.0


def _columnar_execs():
    """The columnar operator classes, or None when numpy is missing."""
    if not columnar_available():
        return None
    from repro.physical.columnar import (
        ColumnarAggregateExec,
        ColumnarJoinExec,
        ColumnarSourceExec,
    )

    return ColumnarSourceExec, ColumnarJoinExec, ColumnarAggregateExec


class _Feed:
    """A scripted child operator (same adapter the unit tests use)."""

    def __init__(self, batches):
        self._template = batches
        self.batches = list(batches)

    def advance(self):
        if not self.batches:
            return []
        return self.batches.pop(0)

    def reset(self):
        self.batches = list(self._template)


def _source_node(schema, filters=None, projections=None, mask=0b1111):
    return OpNode(
        "source", ref=TableRef("bench", schema), filters=filters,
        projections=projections, query_mask=mask,
    )


def _timed(fn, repeat):
    """Best-of-``repeat`` wall time of ``fn()`` (returns seconds).

    Collections are forced before and disabled during each timing so a
    GC cycle triggered by one mode's garbage does not land in another
    mode's measurement (the modes allocate very differently).
    """
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(repeat):
            gc.collect()
            gc.disable()
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
            if gc_was_enabled:
                gc.enable()
            best = min(best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def _micro_case(make_exec, batches, repeat, make_columnar=None):
    """Time one operator over scripted batches in every engine mode.

    ``make_exec()`` builds a fresh operator tree around fresh feeds; a
    fresh tree per timing keeps hash-table/group state comparable.
    ``make_columnar`` (optional) builds the columnar twin of the same
    tree; it is timed as a third leg when numpy is available.
    """
    n_deltas = sum(len(batch) for batch in batches)

    def drain(builder):
        exec_op = builder()
        total = 0
        while True:
            out = exec_op.advance()
            total += len(out)
            if not exec_op._feeds_pending():
                break
        return total

    modes = [
        ("batched", dict(batched=True, compile_cache=True), make_exec),
        ("reference", dict(batched=False, compile_cache=False), make_exec),
    ]
    if make_columnar is not None and columnar_available():
        modes.append(
            ("columnar",
             dict(batched=True, compile_cache=True, columnar=True),
             make_columnar)
        )

    timings = {}
    for label, mode, builder in modes:
        clear_compiled_caches()
        with engine_mode(**mode):
            seconds = _timed(lambda: drain(builder), repeat)
        timings[label] = {
            "seconds": seconds,
            "deltas_per_sec": n_deltas / seconds if seconds > 0 else None,
        }
    timings["speedup"] = (
        timings["reference"]["seconds"] / timings["batched"]["seconds"]
        if timings["batched"]["seconds"] > 0 else None
    )
    if "columnar" in timings:
        timings["columnar_vs_batched"] = (
            timings["batched"]["seconds"] / timings["columnar"]["seconds"]
            if timings["columnar"]["seconds"] > 0 else None
        )
    timings["input_deltas"] = n_deltas
    return timings


def _columnar_feed_batches(feed_batches, width):
    """Pre-converted ``ColumnBatch`` inputs for columnar micro legs.

    Inside a columnar pipeline an operator's input arrives as columnar
    buffer segments (the buffer passthrough path), so the join and
    aggregate micro legs are fed their native format -- exactly as the
    batched legs are fed delta lists.  The source micro is the exception
    and keeps raw deltas on every leg: ingest conversion is inherent to
    the source operator.
    """
    from repro.engine.columns import ColumnBatch

    return [ColumnBatch.from_deltas(batch, width) for batch in feed_batches]


class _Harness:
    """Wraps an operator plus its feeds so the micro loop can drain it."""

    def __init__(self, exec_op, feeds):
        self._exec = exec_op
        self._feeds = feeds

    def advance(self):
        return self._exec.advance()

    def _feeds_pending(self):
        return any(feed.batches for feed in self._feeds)


def bench_filter_project(n, batches, repeat):
    schema = Schema.of("a", "b")
    node = _source_node(
        schema,
        filters={0: col("a") > 100, 1: col("a") > 5000, 2: col("b") > 50,
                 3: col("a") > 0},
        projections={0: (("s", col("a") + col("b")),)},
    )
    per_batch = max(1, n // batches)
    feed_batches = [
        [
            Delta((i * 7 % 10000, i % 100), INSERT, 0b1111)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]

    # SourceExec reads via reader.read_new(); adapt the feed
    class _ReaderFeed(_Feed):
        offset = 0  # logical span cursor (cache_view keys go unused here)

        def read_new(self):
            return self.advance()

        def read_new_segments(self):
            batch = self.advance()
            self.offset += len(batch)
            return batch, []

    def make_source():
        feed = _ReaderFeed(feed_batches)
        op = SourceExec(node, feed, 0b1111, WorkMeter())
        return _Harness(op, [feed])

    def make_columnar():
        feed = _ReaderFeed(feed_batches)
        op = _columnar_execs()[0](node, feed, 0b1111, WorkMeter())
        return _Harness(op, [feed])

    return _micro_case(make_source, feed_batches, repeat,
                       make_columnar=make_columnar)


def bench_join(n, batches, repeat, keys_div=64, payload_mod=9973):
    """Shared two-query equi-join.

    The default shape is the distinct-row regime (high payload
    cardinality, so stored nets are 1): every matched pair is a fresh
    output row, which the batched path must allocate a Delta for while
    the columnar probe emits via array gather -- the regime vectorized
    emission is built for, and the realistic one (TPC-H rows are
    distinct).  ``payload_mod=3`` flips to the low-cardinality bag
    regime where stored slots accumulate net multiplicities > 1 and the
    batched path's multiplicity-shared expansion (one Delta object per
    slot, repeated by reference) closes most of the gap -- kept as the
    ``join_shared_multiplicity`` case below.
    """
    left_schema = Schema.of("k", "x")
    right_schema = Schema.of("k2", "y")
    node = OpNode(
        "join",
        children=[
            _source_node(left_schema, mask=0b11),
            _source_node(right_schema, mask=0b11),
        ],
        left_keys=["k"], right_keys=["k2"], query_mask=0b11,
    )
    per_batch = max(1, n // (2 * batches))
    n_keys = max(64, n // keys_div)
    left_batches = [
        [
            Delta((i % n_keys, (i * 7) % payload_mod), INSERT,
                  0b11 if i % 3 else 0b01)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]
    right_batches = [
        [
            Delta(((i * 5) % n_keys, -((i * 11) % payload_mod)), INSERT,
                  0b11 if i % 2 else 0b10)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]

    def make():
        left = _Feed(left_batches)
        right = _Feed(right_batches)
        op = JoinExec(node, left, right, WorkMeter(), state_factor=0.3)
        return _Harness(op, [left, right])

    if columnar_available():
        left_columnar = _columnar_feed_batches(left_batches, 2)
        right_columnar = _columnar_feed_batches(right_batches, 2)

    def make_columnar():
        left = _Feed(left_columnar)
        right = _Feed(right_columnar)
        op = _columnar_execs()[1](
            node, left, right, WorkMeter(), state_factor=0.3
        )
        return _Harness(op, [left, right])

    return _micro_case(make, left_batches + right_batches, repeat,
                       make_columnar=make_columnar)


def bench_aggregate(n, batches, repeat, with_deletes=True):
    # six shared queries over one aggregate (the paper's sharing regime)
    # and a Q1-like group cardinality: few groups, many updates per group
    mask = 0b111111
    child_schema = Schema.of("g", "v")
    node = OpNode(
        "aggregate",
        children=[_source_node(child_schema, mask=mask)],
        group_by=["g"],
        aggs=[agg_sum(col("v"), "s"), agg_avg(col("v"), "m")],
        query_mask=mask,
    )
    per_batch = max(1, n // batches)
    n_groups = max(16, n // 600)
    bit_patterns = (0b111111, 0b010101, 0b001111)
    feed_batches = []
    for b in range(batches):
        batch = []
        for i in range(b * per_batch, (b + 1) * per_batch):
            bits = bit_patterns[i % 3]
            batch.append(Delta((i % n_groups, float(i % 997)), INSERT, bits))
            if with_deletes and i % 7 == 0 and i >= per_batch:
                j = i - per_batch
                bits_j = bit_patterns[j % 3]
                batch.append(
                    Delta((j % n_groups, float(j % 997)), DELETE, bits_j)
                )
        feed_batches.append(batch)

    def make():
        feed = _Feed(feed_batches)
        op = AggregateExec(node, feed, mask, WorkMeter(), state_factor=0.3)
        return _Harness(op, [feed])

    if columnar_available():
        columnar_batches = _columnar_feed_batches(feed_batches, 2)

    def make_columnar():
        feed = _Feed(columnar_batches)
        op = _columnar_execs()[2](
            node, feed, mask, WorkMeter(), state_factor=0.3
        )
        return _Harness(op, [feed])

    return _micro_case(make, feed_batches, repeat,
                       make_columnar=make_columnar)


def bench_aggregate_string_keys(n, batches, repeat):
    """Group-by over string keys: the key-interning regime.

    Few distinct string groups, many deltas per group per batch -- the
    shape where the batched absorb loop used to rebuild an identical key
    tuple per delta and now builds it once per batch (see
    ``_absorb_batch``'s key interning).
    """
    mask = 0b1111
    child_schema = Schema.of("g", "v")
    node = OpNode(
        "aggregate",
        children=[_source_node(child_schema, mask=mask)],
        group_by=["g"],
        aggs=[agg_sum(col("v"), "s")],
        query_mask=mask,
    )
    per_batch = max(1, n // batches)
    groups = ["segment-%04d" % g for g in range(64)]
    feed_batches = [
        [
            Delta((groups[i % len(groups)], i % 1009), INSERT, mask)
            for i in range(b * per_batch, (b + 1) * per_batch)
        ]
        for b in range(batches)
    ]

    def make():
        feed = _Feed(feed_batches)
        op = AggregateExec(node, feed, mask, WorkMeter(), state_factor=0.3)
        return _Harness(op, [feed])

    if columnar_available():
        columnar_batches = _columnar_feed_batches(feed_batches, 2)

    def make_columnar():
        feed = _Feed(columnar_batches)
        op = _columnar_execs()[2](
            node, feed, mask, WorkMeter(), state_factor=0.3
        )
        return _Harness(op, [feed])

    return _micro_case(make, feed_batches, repeat,
                       make_columnar=make_columnar)


def bench_consolidate(n, repeat):
    deltas = []
    for i in range(n):
        row = (i % (n // 4 or 1), "payload-%d" % (i % 50))
        deltas.append(Delta(row, INSERT, 0b111))
        if i % 3 == 0:
            deltas.append(Delta(row, DELETE, 0b111))
    seconds = _timed(lambda: consolidate(deltas), repeat)
    return {
        "input_deltas": len(deltas),
        "seconds": seconds,
        "deltas_per_sec": len(deltas) / seconds if seconds > 0 else None,
    }


def bench_end_to_end(scale, repeat, seed=5, fraction=0.25,
                     pace_parent=1, pace_leaf=3, jobs=1):
    """fig11-shaped run: shared plan over all 22 queries, mixed paces.

    The default regime (25% update fraction, paces 1/3) is a point on
    the paper's fig11 pace sweep where per-execution batches are large
    enough for vectorization to matter; tighter paces shrink batches to
    a few hundred rows and shared-machinery overhead dominates every
    backend equally (docs/PERFORMANCE.md, "tiny-batch caveat").
    """
    catalog = generate_catalog(scale=scale, seed=seed)
    add_lineitem_updates(catalog, fraction=fraction, seed=seed + 6)
    queries = build_workload(catalog, ALL_QUERY_NAMES)
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    paces = {
        subplan.sid: pace_parent if subplan.child_subplans() else pace_leaf
        for subplan in plan.subplans
    }
    config = StreamConfig()

    modes = [
        ("batched", dict(batched=True, compile_cache=True, reuse_trees=True)),
        ("reference", dict(batched=False, compile_cache=False,
                           reuse_trees=False)),
    ]
    if columnar_available():
        modes.append(
            ("columnar", dict(batched=True, compile_cache=True,
                              reuse_trees=True, columnar=True))
        )

    results = {}
    for label, mode in modes:
        clear_compiled_caches()
        with engine_mode(**mode):
            seconds = _timed(
                lambda: PlanExecutor(plan, config).run(
                    paces, collect_results=False
                ),
                repeat,
            )
        results[label] = {"seconds": seconds}
    results["speedup"] = (
        results["reference"]["seconds"] / results["batched"]["seconds"]
        if results["batched"]["seconds"] > 0 else None
    )
    if "columnar" in results:
        results["columnar_vs_batched"] = (
            results["batched"]["seconds"] / results["columnar"]["seconds"]
            if results["columnar"]["seconds"] > 0 else None
        )

    components = plan_components(plan)
    if jobs > 1 and len(components) > 1 and columnar_available():
        # intra-trigger parallelism: independent subplan components in
        # worker processes (repro.engine.parallel); the leg first asserts
        # bit-identity against the serial run, then times the fan-out
        clear_compiled_caches()
        with engine_mode(batched=True, compile_cache=True, reuse_trees=True,
                         columnar=True):
            serial_probe = PlanExecutor(plan, config).run(paces)
            parallel_probe = run_parallel(plan, paces, config, jobs=jobs)
            if _run_fingerprint(serial_probe) != _run_fingerprint(
                parallel_probe
            ):
                raise AssertionError(
                    "serial and --jobs %d runs diverged -- the determinism "
                    "contract is broken; do not trust these numbers" % jobs
                )
            seconds = _timed(
                lambda: run_parallel(
                    plan, paces, config, jobs=jobs, collect_results=False
                ),
                repeat,
            )
        results["columnar_parallel"] = {
            "seconds": seconds,
            "jobs": jobs,
            "serial_identical": True,
            "vs_serial_columnar": (
                results["columnar"]["seconds"] / seconds
                if seconds > 0 else None
            ),
        }

    # compiled-plan reuse: repeated runs on one executor vs fresh executors
    runs = 4
    clear_compiled_caches()
    with engine_mode(batched=True, compile_cache=True, reuse_trees=True):
        executor = PlanExecutor(plan, config)
        executor.run(paces, collect_results=False)  # warm the tree

        def reused():
            for _ in range(runs):
                executor.run(paces, collect_results=False)

        reused_seconds = _timed(reused, repeat)
    with engine_mode(batched=True, compile_cache=False, reuse_trees=False):
        def fresh():
            for _ in range(runs):
                clear_compiled_caches()
                PlanExecutor(plan, config).run(paces, collect_results=False)

        fresh_seconds = _timed(fresh, repeat)
    results["plan_reuse"] = {
        "runs": runs,
        "reused_tree_seconds": reused_seconds,
        "fresh_executor_seconds": fresh_seconds,
        "speedup": fresh_seconds / reused_seconds if reused_seconds > 0 else None,
    }
    results["workload"] = {
        "scale": scale,
        "seed": seed,
        "updates_seed": seed + 6,
        "update_fraction": fraction,
        "queries": len(queries),
        "subplans": len(plan.subplans),
        "pace_parent": pace_parent,
        "pace_leaf": pace_leaf,
        "paces": sorted(set(paces.values())),
        "components": len(components),
    }
    return results


def bench_probe_crossover(repeat, total=32_768,
                          batch_sizes=(32, 64, 128, 256, 512, 1024)):
    """Scalar-vs-vectorized join probe crossover sweep.

    The columnar join picks its probe strategy per delta batch:
    batches at or below ``SCALAR_PROBE_MAX`` rows run the scalar
    dict-loop probe, larger ones the arange/repeat vectorized probe
    (``REPRO_SCALAR_PROBE_MAX`` overrides, 0 forces vectorized).  This
    leg forces each strategy across per-advance batch sizes on the join
    micro's distinct-row shape and reports where vectorization starts
    winning -- the measurement behind the shipped default.
    """
    from repro.physical import columnar as columnar_mod

    left_schema = Schema.of("k", "x")
    right_schema = Schema.of("k2", "y")
    node = OpNode(
        "join",
        children=[
            _source_node(left_schema, mask=0b11),
            _source_node(right_schema, mask=0b11),
        ],
        left_keys=["k"], right_keys=["k2"], query_mask=0b11,
    )

    points = []
    for per_batch in batch_sizes:
        batches = max(2, total // (2 * per_batch))
        n_keys = max(64, (per_batch * batches) // 32)
        left_batches = [
            [
                Delta((i % n_keys, (i * 7) % 9973), INSERT,
                      0b11 if i % 3 else 0b01)
                for i in range(b * per_batch, (b + 1) * per_batch)
            ]
            for b in range(batches)
        ]
        right_batches = [
            [
                Delta(((i * 5) % n_keys, -((i * 11) % 9973)), INSERT,
                      0b11 if i % 2 else 0b10)
                for i in range(b * per_batch, (b + 1) * per_batch)
            ]
            for b in range(batches)
        ]
        left_columnar = _columnar_feed_batches(left_batches, 2)
        right_columnar = _columnar_feed_batches(right_batches, 2)

        def make():
            left = _Feed(left_columnar)
            right = _Feed(right_columnar)
            op = _columnar_execs()[1](
                node, left, right, WorkMeter(), state_factor=0.3
            )
            return _Harness(op, [left, right])

        def drain():
            harness = make()
            while True:
                harness.advance()
                if not harness._feeds_pending():
                    break

        legs = {}
        for label, probe_max in (("scalar", 1 << 30), ("vectorized", 0)):
            saved = columnar_mod.SCALAR_PROBE_MAX
            columnar_mod.SCALAR_PROBE_MAX = probe_max
            try:
                clear_compiled_caches()
                with engine_mode(batched=True, compile_cache=True,
                                 columnar=True):
                    legs[label] = _timed(drain, repeat)
            finally:
                columnar_mod.SCALAR_PROBE_MAX = saved
        points.append({
            "batch_rows": per_batch,
            "scalar_seconds": legs["scalar"],
            "vectorized_seconds": legs["vectorized"],
            "vectorized_vs_scalar": (
                legs["scalar"] / legs["vectorized"]
                if legs["vectorized"] > 0 else None
            ),
        })

    crossover = next(
        (
            point["batch_rows"]
            for point in points
            if point["vectorized_vs_scalar"] is not None
            and point["vectorized_vs_scalar"] >= 1.0
        ),
        None,
    )
    return {
        "points": points,
        "crossover_batch_rows": crossover,
        "default_scalar_probe_max": columnar_mod.SCALAR_PROBE_MAX,
        "env_override": "REPRO_SCALAR_PROBE_MAX",
    }


#: profiled-share buckets for the overhead breakdown, by code location
_BREAKDOWN_BUCKETS = (
    # operator kernels: columnar/fused/batched operator code plus numpy
    ("kernel", ("/repro/physical/", "/numpy/", "<fused:")),
    # row<->column boundary: ColumnBatch materialization and conversion
    ("boundary_materialization", ("/repro/engine/columns",)),
    # scheduling, buffers, streams, metering around the kernels
    ("plan_driver", ("/repro/engine/", "/repro/mqo/", "/repro/relational/")),
)


def bench_e2e_overhead_breakdown(scale, seed=5, fraction=0.25,
                                 pace_parent=1, pace_leaf=3):
    """Where one columnar fig11 run spends its time (profiled shares).

    Profiles a single warmed end-to-end run under ``cProfile`` and
    buckets per-function self time into kernel work, row<->column
    boundary materialization, and plan-driver overhead.  The absolute
    seconds carry instrumentation overhead (roughly 2x wall clock); the
    *shares* are what this leg is for -- they say which layer to attack
    next, and how much boundary cost the columnar-native buffer
    passthrough still leaves behind.
    """
    import cProfile
    import pstats

    catalog = generate_catalog(scale=scale, seed=seed)
    add_lineitem_updates(catalog, fraction=fraction, seed=seed + 6)
    queries = build_workload(catalog, ALL_QUERY_NAMES)
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    paces = {
        subplan.sid: pace_parent if subplan.child_subplans() else pace_leaf
        for subplan in plan.subplans
    }
    config = StreamConfig()

    clear_compiled_caches()
    with engine_mode(batched=True, compile_cache=True, reuse_trees=True,
                     columnar=True):
        executor = PlanExecutor(plan, config)
        executor.run(paces, collect_results=False)  # warm the tree
        profile = cProfile.Profile()
        profile.enable()
        executor.run(paces, collect_results=False)
        profile.disable()

    buckets = {name: 0.0 for name, _ in _BREAKDOWN_BUCKETS}
    buckets["other"] = 0.0
    total = 0.0
    for (filename, _, _), entry in pstats.Stats(profile).stats.items():
        self_seconds = entry[2]
        total += self_seconds
        for name, needles in _BREAKDOWN_BUCKETS:
            if any(needle in filename for needle in needles):
                buckets[name] += self_seconds
                break
        else:
            buckets["other"] += self_seconds

    return {
        "profiled_seconds": total,
        "seconds": {name: seconds for name, seconds in buckets.items()},
        "shares": {
            name: (seconds / total if total > 0 else None)
            for name, seconds in buckets.items()
        },
        "note": "self time under cProfile; read the shares, not the seconds",
    }


def _arrangement_catalog(n_events, seed):
    """Two-table star (events -> items) for the fan-out workload."""
    import random as _random

    rng = _random.Random(seed)
    n_items = max(32, n_events // 15)
    catalog = Catalog()
    items = catalog.create(
        "items",
        Schema.of(("item_id", INT), ("item_cat", INT), ("price", FLOAT)),
    )
    for iid in range(n_items):
        items.append((iid, iid % 24, float(rng.randint(1, 100))))
    events = catalog.create(
        "events", Schema.of(("ev_item", INT), ("qty", FLOAT))
    )
    for _ in range(n_events):
        events.append(
            (rng.randrange(n_items), float(rng.randint(1, 9)))
        )
    return catalog


def _run_fingerprint(result):
    return (
        result.total_work,
        tuple(
            (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
            for r in result.records
        ),
        tuple(sorted(result.subplan_final_work.items())),
    )


def bench_arrangements(n_events, repeat, n_queries=6, seed=9):
    """Fan-out of single-join subplans: shared vs private join indexes.

    ``n_queries`` identical events |X| items rollups stay separate
    subplans (no MQO merge), so with arrangements off each one maintains
    private hash tables over both base tables; with arrangements on all
    of them read one shared index per table.  The two legs must be
    result- and work-identical (asserted here); what the benchmark
    records is the resource gap -- resident join-state entries and
    index-maintenance operations -- plus wall clock.
    """
    catalog = _arrangement_catalog(n_events, seed)
    queries = [
        PlanBuilder.scan(catalog, "events")
        .join(PlanBuilder.scan(catalog, "items"), "ev_item", "item_id")
        .aggregate(["item_cat"], [agg_sum(col("qty"), "total")])
        .as_query(i, "arr_q%d" % i)
        for i in range(n_queries)
    ]
    plan = build_unshared_plan(catalog, queries)
    pace_cycle = (1, 2, 4)
    paces = {
        sid: pace_cycle[index % len(pace_cycle)]
        for index, sid in enumerate(sorted(s.sid for s in plan.subplans))
    }
    config = StreamConfig()

    def private_entries(executor):
        _, _, compiled, _, _ = executor._runtime
        total = 0
        for unit in compiled.values():
            stack = [unit.root_exec]
            while stack:
                node = stack.pop()
                if hasattr(node, "_private_entries"):
                    total += node.entry_count
                for attr in ("left", "right", "child"):
                    nxt = getattr(node, attr, None)
                    if nxt is not None and hasattr(nxt, "advance"):
                        stack.append(nxt)
        return total

    legs = {}
    fingerprints = {}
    for label, arranged in (("arranged", True), ("private", False)):
        clear_compiled_caches()
        with engine_mode(batched=True, compile_cache=True, reuse_trees=True,
                         arrangements=arranged):
            executor = PlanExecutor(plan, config)
            probe = executor.run(paces)
            fingerprints[label] = _run_fingerprint(probe)
            resident = (
                probe.metadata["arrangement_summary"]["resident_entries"]
                if arranged else private_entries(executor)
            )
            seconds = _timed(
                lambda: PlanExecutor(plan, config).run(
                    paces, collect_results=False
                ),
                repeat,
            )
        legs[label] = {"seconds": seconds, "resident_entries": resident}
        if arranged:
            summary = probe.metadata["arrangement_summary"]
            legs[label]["maintenance_ops"] = summary["maintenance_ops"]
            legs[label]["private_ops"] = summary["private_ops"]
            legs[label]["arrangements"] = len(summary["arrangements"])

    if fingerprints["arranged"] != fingerprints["private"]:
        raise AssertionError(
            "arranged and private runs diverged -- the exactness contract "
            "is broken; do not trust these numbers"
        )

    arranged, private = legs["arranged"], legs["private"]
    return {
        "arranged": arranged,
        "private": private,
        "entry_reduction": (
            private["resident_entries"] / arranged["resident_entries"]
            if arranged["resident_entries"] else None
        ),
        "maintenance_reduction": (
            arranged["private_ops"] / arranged["maintenance_ops"]
            if arranged["maintenance_ops"] else None
        ),
        "work_identical": True,
        "workload": {
            "events": n_events,
            "queries": n_queries,
            "seed": seed,
            "paces": sorted(set(paces.values())),
        },
    }


def _columnar_report(report):
    """The columnar-vs-batched extract written to BENCH_columnar.json."""
    micro = {}
    for name, case in report["micro"].items():
        if "columnar" not in case:
            continue
        micro[name] = {
            "batched_deltas_per_sec": case["batched"]["deltas_per_sec"],
            "columnar_deltas_per_sec": case["columnar"]["deltas_per_sec"],
            "columnar_vs_batched": case["columnar_vs_batched"],
            "input_deltas": case["input_deltas"],
        }
    e2e = report["end_to_end_fig11"]
    extract = {
        "config": report["config"],
        "micro": micro,
        "end_to_end_fig11": {
            "batched_seconds": e2e["batched"]["seconds"],
            "columnar_seconds": e2e["columnar"]["seconds"],
            "columnar_vs_batched": e2e["columnar_vs_batched"],
            "workload": e2e["workload"],
        },
    }
    if "columnar_parallel" in e2e:
        extract["end_to_end_fig11"]["columnar_parallel"] = (
            e2e["columnar_parallel"]
        )
    if "probe_crossover" in report:
        extract["probe_crossover"] = report["probe_crossover"]
    if "e2e_overhead_breakdown" in report:
        extract["e2e_overhead_breakdown"] = report["e2e_overhead_breakdown"]
    return extract


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small config for CI smoke runs")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="where to write the JSON report")
    parser.add_argument("--columnar-output", default=DEFAULT_COLUMNAR_OUTPUT,
                        help="where to write the columnar-vs-batched extract")
    parser.add_argument("--arrangements-output",
                        default=DEFAULT_ARRANGEMENTS_OUTPUT,
                        help="where to write the arrangements extract")
    parser.add_argument("--check", action="store_true",
                        help="fail unless arrangements cut resident "
                             "join-state entries by the %.1fx floor"
                             % ARRANGEMENT_ENTRY_FLOOR)
    parser.add_argument("--scale", type=float, default=None,
                        help="TPC-H scale for the end-to-end section")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timing repetitions (best-of)")
    parser.add_argument("--seed", type=int, default=5,
                        help="catalog seed for the end-to-end section "
                             "(updates stream uses seed+6)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the intra-trigger "
                             "parallel end-to-end leg (1 = serial only)")
    args = parser.parse_args(argv)

    if args.quick:
        n, batches, repeat, scale = 40_000, 8, 2, 0.05
    else:
        n, batches, repeat, scale = 200_000, 10, 3, 1.0
    if args.scale is not None:
        scale = args.scale
    if args.repeat is not None:
        repeat = args.repeat

    report = {
        "config": {
            "quick": bool(args.quick),
            "micro_deltas": n,
            "micro_batches": batches,
            "repeat": repeat,
            "e2e_scale": scale,
            "seed": args.seed,
            "python": sys.version.split()[0],
            "machine": {
                "platform": platform.platform(),
                "arch": platform.machine(),
                "cpus": os.cpu_count(),
            },
            "columnar_available": columnar_available(),
        },
        "micro": {},
    }

    print("hot-path micro benchmarks (%d deltas, best of %d)" % (n, repeat))
    for name, runner in (
        ("filter_project", lambda: bench_filter_project(n, batches, repeat)),
        ("join", lambda: bench_join(n, batches, repeat)),
        ("join_shared_multiplicity",
         lambda: bench_join(n, batches, repeat, keys_div=32, payload_mod=3)),
        ("aggregate", lambda: bench_aggregate(n, batches, repeat)),
        ("aggregate_insert_only",
         lambda: bench_aggregate(n, batches, repeat, with_deletes=False)),
        ("aggregate_string_keys",
         lambda: bench_aggregate_string_keys(n, batches, repeat)),
    ):
        case = runner()
        report["micro"][name] = case
        columnar = (
            "  %9.0f/s columnar (%.2fx vs batched)"
            % (case["columnar"]["deltas_per_sec"],
               case["columnar_vs_batched"])
            if "columnar" in case else ""
        )
        print(
            "  %-22s %9.0f/s batched  %9.0f/s reference  %.2fx%s"
            % (
                name,
                case["batched"]["deltas_per_sec"],
                case["reference"]["deltas_per_sec"],
                case["speedup"],
                columnar,
            )
        )

    case = bench_consolidate(n // 2, repeat)
    report["micro"]["consolidate"] = case
    print("  %-22s %9.0f/s" % ("consolidate", case["deltas_per_sec"]))

    if columnar_available():
        print("columnar probe crossover sweep")
        crossover = bench_probe_crossover(repeat)
        report["probe_crossover"] = crossover
        for point in crossover["points"]:
            print(
                "  %5d rows/batch: scalar %.4fs  vectorized %.4fs (%.2fx)"
                % (
                    point["batch_rows"],
                    point["scalar_seconds"],
                    point["vectorized_seconds"],
                    point["vectorized_vs_scalar"],
                )
            )
        print(
            "  crossover at %s rows (shipped default %d)"
            % (crossover["crossover_batch_rows"],
               crossover["default_scalar_probe_max"])
        )

    print("end-to-end fig11 workload (scale %.2f, seed %d)"
          % (scale, args.seed))
    e2e = bench_end_to_end(scale, repeat, seed=args.seed, jobs=args.jobs)
    report["end_to_end_fig11"] = e2e
    print(
        "  wall clock: %.3fs batched  %.3fs reference  %.2fx"
        % (
            e2e["batched"]["seconds"],
            e2e["reference"]["seconds"],
            e2e["speedup"],
        )
    )
    if "columnar" in e2e:
        print(
            "  columnar:   %.3fs (%.2fx vs batched)"
            % (e2e["columnar"]["seconds"], e2e["columnar_vs_batched"])
        )
    if "columnar_parallel" in e2e:
        par = e2e["columnar_parallel"]
        print(
            "  --jobs %d:   %.3fs (%.2fx vs serial columnar, bit-identical)"
            % (par["jobs"], par["seconds"], par["vs_serial_columnar"])
        )

    if columnar_available():
        breakdown = bench_e2e_overhead_breakdown(scale, seed=args.seed)
        report["e2e_overhead_breakdown"] = breakdown
        shares = breakdown["shares"]
        print(
            "  overhead breakdown (profiled shares): kernel %.0f%%  "
            "boundary %.0f%%  driver %.0f%%  other %.0f%%"
            % (
                100 * shares["kernel"],
                100 * shares["boundary_materialization"],
                100 * shares["plan_driver"],
                100 * shares["other"],
            )
        )
    print(
        "  plan reuse (%d runs): %.3fs reused  %.3fs fresh  %.2fx"
        % (
            e2e["plan_reuse"]["runs"],
            e2e["plan_reuse"]["reused_tree_seconds"],
            e2e["plan_reuse"]["fresh_executor_seconds"],
            e2e["plan_reuse"]["speedup"],
        )
    )

    arr_events = 30_000 if args.quick else 120_000
    print("shared arrangements fan-out (%d events)" % arr_events)
    arrangements = bench_arrangements(arr_events, repeat, seed=args.seed + 4)
    report["arrangements"] = arrangements
    print(
        "  resident entries: %d shared vs %d private (%.2fx);"
        " maintenance ops %.2fx; %.3fs vs %.3fs"
        % (
            arrangements["arranged"]["resident_entries"],
            arrangements["private"]["resident_entries"],
            arrangements["entry_reduction"],
            arrangements["maintenance_reduction"],
            arrangements["arranged"]["seconds"],
            arrangements["private"]["seconds"],
        )
    )

    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % output)

    if columnar_available():
        columnar_output = os.path.abspath(args.columnar_output)
        with open(columnar_output, "w") as handle:
            json.dump(_columnar_report(report), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print("wrote %s" % columnar_output)

    arrangements_output = os.path.abspath(args.arrangements_output)
    with open(arrangements_output, "w") as handle:
        json.dump(
            {"config": report["config"], "arrangements": arrangements},
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    print("wrote %s" % arrangements_output)

    floor = 2.0
    agg_speedup = report["micro"]["aggregate"]["speedup"]
    # the multiplicity-shared bag regime is the batched path's showcase;
    # the headline ``join`` case is the distinct-row regime where both
    # scalar paths allocate per output and the gap is structurally smaller
    join_speedup = report["micro"]["join_shared_multiplicity"]["speedup"]
    status = 0
    if agg_speedup < floor or join_speedup < floor:
        print(
            "WARNING: speedup below the %.1fx acceptance floor "
            "(aggregate %.2fx, join %.2fx)" % (floor, agg_speedup, join_speedup)
        )
        status = 1
    if columnar_available():
        columnar_floor = 2.5
        low = {
            name: case["columnar_vs_batched"]
            for name, case in report["micro"].items()
            if case.get("columnar_vs_batched") is not None
            and name != "join_shared_multiplicity"
            and case["columnar_vs_batched"] < columnar_floor
        }
        if low:
            print(
                "WARNING: columnar speedup below the %.1fx floor: %s"
                % (
                    columnar_floor,
                    ", ".join(
                        "%s %.2fx" % (k, v) for k, v in sorted(low.items())
                    ),
                )
            )
            status = 1
    entry_reduction = arrangements["entry_reduction"] or 0.0
    if entry_reduction < ARRANGEMENT_ENTRY_FLOOR:
        print(
            "%s: arrangement resident-entry reduction %.2fx below the "
            "%.1fx floor"
            % ("FAILED" if args.check else "WARNING", entry_reduction,
               ARRANGEMENT_ENTRY_FLOOR)
        )
        status = 1
    elif args.check:
        print(
            "check passed: %.2fx resident-entry reduction (floor %.1fx)"
            % (entry_reduction, ARRANGEMENT_ENTRY_FLOOR)
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
