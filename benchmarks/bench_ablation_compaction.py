"""Ablation: compacted buffers are what make lazy parents cheap.

DESIGN.md section 5(3): delaying a parent subplan (paper Figure 3c) only
saves work because inter-subplan buffers compact cancelled churn. With
compaction disabled, a lazy top subplan re-processes every retract/insert
pair its eager child emitted and laziness stops paying.
"""

from common import bench_seed, run_and_report
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.harness import ExperimentResult, format_table
from repro.mqo.merge import build_blocking_cut_plan
from repro.workloads.tpch import build_workload, generate_catalog


def _sweep():
    catalog = generate_catalog(scale=0.4, seed=bench_seed())
    queries = build_workload(catalog, ("Q15", "Q18"))  # interior aggregates
    plan = build_blocking_cut_plan(catalog, queries)
    # eager bottoms, lazy tops: the Figure-3c configuration
    paces = {}
    for subplan in plan.topological_order():
        paces[subplan.sid] = 40 if not subplan.child_subplans() else 1
    result = ExperimentResult("Ablation: buffer compaction")
    rows = []
    for compact in (True, False):
        config = StreamConfig(compact_buffers=compact)
        run = PlanExecutor(plan, config).run(paces, collect_results=False)
        finals = sum(run.query_final_work.values())
        rows.append([
            "compaction %s" % ("on" if compact else "off"),
            run.total_work,
            finals,
        ])
    result.add_section(format_table(
        ("Setting", "Total work", "Sum of final work"), rows,
        "Eager bottoms (pace 40) + lazy tops (pace 1), Q15+Q18",
    ))
    result.data["rows"] = rows
    return result


def test_ablation_compaction(benchmark):
    result = run_and_report(benchmark, "ablation_compaction", _sweep)
    rows = result.data["rows"]
    on_total, off_total = rows[0][1], rows[1][1]
    on_final, off_final = rows[0][2], rows[1][2]
    # without compaction the lazy tops re-process all churn
    assert off_total > on_total
    assert off_final > on_final
