"""The paper's omitted experiment: inaccurate cardinality estimation.

Section 3.2: "We test the inaccurate cardinality estimation and find
iShare has lower CPU consumption and similar query latencies compared to
the baselines. The results are omitted due to space limits." Here every
calibrated statistic is perturbed by a random factor in [0.5, 2] before
optimization; execution measures ground truth.
"""

from common import bench_seed, run_and_report
from repro.core.optimizer import OptimizerConfig
from repro.engine.stream import StreamConfig
from repro.harness import APPROACHES, ExperimentResult, ExperimentRunner, format_table
from repro.workloads.constraints import random_constraints
from repro.workloads.tpch import build_workload, generate_catalog


def _sweep():
    catalog = generate_catalog(scale=0.4, seed=bench_seed())
    queries = build_workload(catalog)
    relative = random_constraints(range(len(queries)), seed=1)
    result = ExperimentResult("Ablation: inaccurate cardinality estimation")
    rows = []
    data = {}
    for label, noise in (("accurate stats", None), ("noisy stats [0.5x..2x]", 7)):
        config = OptimizerConfig(
            max_pace=100, stream_config=StreamConfig(), stats_noise_seed=noise
        )
        runner = ExperimentRunner(catalog, queries, config)
        per_approach = {}
        for name in APPROACHES:
            approach = runner.run_approach(name, relative)
            per_approach[name] = approach
            rows.append([
                "%s / %s" % (label, name),
                approach.total_seconds,
                approach.missed.mean_percent,
                approach.missed.max_percent,
            ])
        data[label] = per_approach
    result.add_section(format_table(
        ("Setting", "Total s", "Mean miss %", "Max miss %"), rows,
        "Random constraints, optimizer fed accurate vs perturbed statistics",
    ))
    result.data["runs"] = data
    return result


def test_ablation_cardinality_noise(benchmark):
    result = run_and_report(benchmark, "ablation_cardinality_noise", _sweep)
    noisy = result.data["runs"]["noisy stats [0.5x..2x]"]
    # the paper's finding: iShare keeps the lowest CPU even with bad stats
    assert noisy["iShare"].total_seconds == min(
        r.total_seconds for r in noisy.values()
    )
