"""Ablation: the state-maintenance charge drives the eager-cost curve.

DESIGN.md section 5(2): per-execution state-store maintenance is the
dominant physical reason eager execution costs more on the paper's Spark
substrate. Sweeping the factor shows the Figure-1 trade-off appearing:
with no state charge the eager multiplier collapses toward 1 and the
approaches become indistinguishable.
"""

from common import bench_seed, run_and_report
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.harness import ExperimentResult, format_table
from repro.mqo.merge import build_unshared_plan
from repro.workloads.tpch import build_workload, generate_catalog


def _sweep():
    catalog = generate_catalog(scale=0.4, seed=bench_seed())
    queries = build_workload(catalog)
    plan = build_unshared_plan(catalog, queries)
    result = ExperimentResult("Ablation: state-maintenance factor")
    rows = []
    for factor in (0.0, 0.1, 0.3, 0.6):
        config = StreamConfig(state_factor=factor)
        executor = PlanExecutor(plan, config)
        batch = executor.run(
            {s.sid: 1 for s in plan.subplans}, collect_results=False
        ).total_work
        eager = executor.run(
            {s.sid: 50 for s in plan.subplans}, collect_results=False
        ).total_work
        rows.append(["factor %.1f" % factor, batch, eager, eager / batch])
    result.add_section(format_table(
        ("Setting", "Batch work", "Eager(50) work", "Multiplier"), rows,
        "Eager-execution overhead vs state factor (22 queries)",
    ))
    result.data["rows"] = rows
    return result


def test_ablation_state_factor(benchmark):
    result = run_and_report(benchmark, "ablation_state_factor", _sweep)
    rows = result.data["rows"]
    multipliers = [row[3] for row in rows]
    assert multipliers == sorted(multipliers)
    assert multipliers[0] < 1.2       # without the charge, eagerness is near-free
    assert multipliers[-1] > 1.8      # with it, the Figure-1 trade-off appears
