"""Figure 9: total execution time under random relative constraints.

Paper shape: iShare lowest; Share-Uniform worst (it must chase the lowest
random constraint with the whole shared plan); NoShare-Nonuniform better
than NoShare-Uniform. Also feeds the "Random" half of Table 1.
"""

from common import bench_jobs, bench_seed, run_and_report
from repro.harness import fig9


def test_fig9_random_constraints(benchmark):
    result = run_and_report(
        benchmark, "fig09", lambda: fig9(scale=0.5, max_pace=100, seeds=(1, 2, 3), jobs=bench_jobs(), catalog_seed=bench_seed())
    )
    totals = result.data["totals"]
    # the headline claim: iShare uses the least CPU
    import statistics

    means = {name: statistics.mean(values) for name, values in totals.items()}
    assert means["iShare"] == min(means.values())
