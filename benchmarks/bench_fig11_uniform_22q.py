"""Figure 11: uniform relative constraints over all 22 TPC-H queries.

Paper shape: iShare lowest at every level; Share-Uniform's advantage over
NoShare erodes as constraints tighten (diverse absolute constraints force
overly eager shared execution).
"""

from common import bench_jobs, bench_seed, run_and_report
from repro.harness import fig11


def test_fig11_uniform_22q(benchmark):
    result = run_and_report(
        benchmark, "fig11", lambda: fig11(scale=0.5, max_pace=100, jobs=bench_jobs(), catalog_seed=bench_seed())
    )
    for label, by_approach in result.data["rows"]:
        assert (
            by_approach["iShare"].total_seconds
            <= min(r.total_seconds for r in by_approach.values()) * 1.05
        ), label
