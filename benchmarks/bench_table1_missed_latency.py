"""Table 1: missed latencies under random and uniform constraints.

Paper shape: iShare / NoShare-Nonuniform have small mean misses; the
single-pace approaches (NoShare-Uniform, Share-Uniform) show large
maximum misses driven by the non-incrementable Q15.
"""

from common import bench_jobs, bench_seed, run_and_report
from repro.harness import table1


def test_table1_missed_latency(benchmark):
    run_and_report(
        benchmark, "table1",
        lambda: table1(scale=0.4, max_pace=100, seeds=(1, 2), jobs=bench_jobs(),
                       catalog_seed=bench_seed()),
    )
