"""The section 5.2 'simple approach' baseline: two executions only.

Paper (in text): one execution before the trigger plus a final one at the
trigger, with the first point tuned, 'significantly misses query
latencies (up to 25.7s and 1046% even for its best case) but the missed
latencies are zero for iShare in the same test'.
"""

from common import bench_seed, run_and_report
from repro.harness import two_phase_baseline


def test_two_phase_baseline(benchmark):
    result = run_and_report(
        benchmark, "twophase", lambda: two_phase_baseline(scale=0.4, catalog_seed=bench_seed())
    )
    # even its best tuning misses far worse than iShare
    assert result.data["best_two_phase_max_miss"] > result.data["ishare_max_miss"]
