"""Figure 10: one-batch shared execution vs independent execution.

Paper shape: the MQO shared plan needs well under 100% of the work of
running the 22 queries independently (sharing helps when paces agree).
"""

from common import bench_seed, run_and_report
from repro.harness import fig10


def test_fig10_batch_sharing(benchmark):
    result = run_and_report(benchmark, "fig10", lambda: fig10(scale=0.5, catalog_seed=bench_seed()))
    assert result.data["ratio"] < 0.85
