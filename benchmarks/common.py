"""Shared helpers for the figure/table benchmarks.

Each benchmark runs one experiment driver exactly once (the driver itself
is the expensive end-to-end pipeline), prints the paper-style tables, and
archives them under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_and_report(benchmark, name, experiment):
    """Benchmark one experiment driver and report its tables."""
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = result.text()
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    tables = getattr(result, "tables", None)
    if tables:
        with open(os.path.join(RESULTS_DIR, "%s.csv" % name), "w") as handle:
            handle.write(result.to_csv())
    return result
