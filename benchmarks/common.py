"""Shared helpers for the figure/table benchmarks.

Each benchmark runs one experiment driver exactly once (the driver itself
is the expensive end-to-end pipeline), prints the paper-style tables, and
archives them under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only -s

Two environment knobs control the harness layer:

``REPRO_BENCH_JOBS``
    worker processes for the parallelizable sweep drivers (default 1 =
    serial; 0 = all cores).  Results are identical at any job count; the
    per-cell timings are archived as ``results/<name>.timings.json``.
``REPRO_BENCH_NO_CACHE``
    set to disable the on-disk calibration cache.  By default repeat
    benchmark runs reuse calibrations from ``benchmarks/.calibration-cache``
    (or ``$REPRO_CACHE_DIR``) and skip every reference batch run.
``REPRO_BENCH_TRACE``
    set to a directory (or ``1`` for ``benchmarks/results``) to enable
    observability (docs/OBSERVABILITY.md): each benchmark archives
    ``<name>.trace.json`` (Chrome trace events), ``<name>.metrics.json``
    and ``<name>.declog.jsonl`` there, scoped per benchmark.
``REPRO_BENCH_SEED``
    TPC-H catalog generation seed (default 5, the paper-repro default).
    Also settable as ``pytest benchmarks/ --seed N``; the seed used is
    recorded in every archived report.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _trace_dir():
    """Observability output directory, or None when tracing is off."""
    value = os.environ.get("REPRO_BENCH_TRACE")
    if not value:
        return None
    return RESULTS_DIR if value == "1" else value


def bench_jobs():
    """Worker processes for parallelizable drivers (``REPRO_BENCH_JOBS``)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def bench_seed():
    """Catalog generation seed (``REPRO_BENCH_SEED``, default 5)."""
    return int(os.environ.get("REPRO_BENCH_SEED", "5") or "5")


def _maybe_enable_cache():
    if os.environ.get("REPRO_BENCH_NO_CACHE"):
        return
    from repro.cost.cache import (
        CalibrationCache,
        get_default_cache,
        set_default_cache,
    )

    if get_default_cache() is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
            os.path.dirname(__file__), ".calibration-cache"
        )
        set_default_cache(CalibrationCache(cache_dir))


_maybe_enable_cache()


def run_and_report(benchmark, name, experiment):
    """Benchmark one experiment driver and report its tables."""
    trace_dir = _trace_dir()
    if trace_dir is not None:
        from repro import obs

        obs.enable(process_name="repro-bench-%s" % name)
        obs.reset()  # scope the collectors to this benchmark
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    if trace_dir is not None:
        from repro.obs import OBS

        os.makedirs(trace_dir, exist_ok=True)
        OBS.tracer.export(os.path.join(trace_dir, "%s.trace.json" % name))
        with open(os.path.join(trace_dir, "%s.metrics.json" % name), "w") as handle:
            json.dump(OBS.metrics.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        OBS.declog.export(os.path.join(trace_dir, "%s.declog.jsonl" % name))
    text = result.text()
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    tables = getattr(result, "tables", None)
    if tables:
        with open(os.path.join(RESULTS_DIR, "%s.csv" % name), "w") as handle:
            handle.write(result.to_csv())
    timings = getattr(result, "data", {}).get("timings")
    if timings:
        with open(os.path.join(RESULTS_DIR, "%s.timings.json" % name), "w") as handle:
            json.dump(timings, handle, indent=2)
    data = getattr(result, "data", {})
    meta = {
        "benchmark": name,
        "engine_mode": data.get("engine_mode"),
        "columnar": data.get("columnar"),
        "catalog_seed": data.get("catalog_seed", bench_seed()),
    }
    with open(os.path.join(RESULTS_DIR, "%s.meta.json" % name), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return result
