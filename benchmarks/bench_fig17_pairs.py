"""Figure 17: incrementability micro-benchmarks on query pairs.

Paper shape: (a) Q5/Q8 are incrementable, sharing stays good; (b) mixing
non-incrementable Q15 with Q7 makes Share-Uniform lose at tight
constraints; (c) Q_A/Q_B -- iShare unshares at tight constraints and
tracks the NoShare approaches.
"""

from common import bench_jobs, bench_seed, run_and_report
from repro.harness import fig17


def test_fig17_pairs(benchmark):
    result = run_and_report(
        benchmark, "fig17", lambda: fig17(scale=0.5, max_pace=100, jobs=bench_jobs(), catalog_seed=bench_seed())
    )
    pairs = result.data["pairs"]
    # iShare never loses to Share-Uniform on any pair/level
    for pair_name, rows in pairs.items():
        for label, by_approach in rows:
            assert (
                by_approach["iShare"].total_seconds
                <= by_approach["Share-Uniform"].total_seconds * 1.05
            ), (pair_name, label)
