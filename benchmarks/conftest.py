"""Make the shared helpers importable from the benchmark files."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--seed", type=int, default=None,
        help="TPC-H catalog generation seed for the figure benchmarks "
             "(default 5; also settable via REPRO_BENCH_SEED)",
    )


def pytest_configure(config):
    seed = config.getoption("--seed", default=None)
    if seed is not None:
        os.environ["REPRO_BENCH_SEED"] = str(seed)
