"""Divide-by-zero and degenerate-denominator guards (cost layer audit).

The incrementability ratio and the analytic cost simulation both divide
by quantities that can legitimately reach zero (zero extra-work neighbour
configurations, empty subplans, zero-pace requests).  These tests pin the
explicit guarded behaviour so the guards cannot silently regress into
exceptions or infinities.
"""

import pytest

from repro.core.incrementability import (
    INFINITE,
    benefit,
    bounded_final_work,
    incrementability,
)
from repro.cost.model import (
    CostConfig,
    _window_bounds,
    emissions,
    expected_touched,
    simulate_subplan,
)
from repro.engine.stream import StreamConfig

from .util import calibrated_shared_plan, make_toy_catalog, toy_query_total


class _Eval:
    """A minimal stand-in for RunResult / CostEvaluation."""

    def __init__(self, total_work, query_final_work):
        self.total_work = total_work
        self.query_final_work = dict(query_final_work)


class TestIncrementabilityGuards:
    def test_zero_extra_work_with_gain_is_infinite(self):
        lazy = _Eval(100.0, {0: 50.0})
        eager = _Eval(100.0, {0: 10.0})
        assert incrementability(eager, lazy, {0: 5.0}) == INFINITE

    def test_zero_extra_work_without_gain_is_zero(self):
        lazy = _Eval(100.0, {0: 10.0})
        eager = _Eval(100.0, {0: 10.0})
        assert incrementability(eager, lazy, {0: 5.0}) == 0.0

    def test_negative_extra_work_is_free_improvement(self):
        lazy = _Eval(100.0, {0: 50.0})
        eager = _Eval(90.0, {0: 10.0})
        assert incrementability(eager, lazy, {0: 5.0}) == INFINITE

    def test_float_noise_extra_work_treated_as_zero(self):
        # a denominator of float rounding residue must not mint an
        # astronomically large finite score
        lazy = _Eval(100.0, {0: 10.0})
        eager = _Eval(100.0 + 1e-13, {0: 10.0})
        assert incrementability(eager, lazy, {0: 5.0}) == 0.0

    def test_empty_constraints_score_zero(self):
        lazy = _Eval(100.0, {})
        eager = _Eval(100.0, {})
        assert benefit(eager, lazy, {}) == 0.0
        assert incrementability(eager, lazy, {}) == 0.0

    def test_missing_query_defaults_to_zero_final_work(self):
        lazy = _Eval(100.0, {})
        eager = _Eval(120.0, {})
        assert incrementability(eager, lazy, {3: 5.0}) == 0.0

    def test_bounded_final_work_clamps_from_below(self):
        assert bounded_final_work(2.0, 5.0) == 5.0
        assert bounded_final_work(9.0, 5.0) == 9.0
        assert bounded_final_work(0.0, 0.0) == 0.0


class TestCostModelGuards:
    def test_expected_touched_degenerate_inputs(self):
        assert expected_touched(0, 10) == 0.0
        assert expected_touched(-3.0, 10) == 0.0
        assert expected_touched(50.0, 0) == 0.0
        assert expected_touched(50.0, -2) == 0.0
        assert expected_touched(1.0, 7) == 1.0
        assert expected_touched(0.5, 7) == 1.0  # sub-unit universe clamps

    def test_emissions_degenerate_inputs(self):
        assert emissions(10.0, 5.0, 0) == (0.0, 0.0)
        assert emissions(10.0, 5.0, -1) == (0.0, 0.0)
        assert emissions(0.0, 0.0, 5) == (0.0, 0.0)

    def test_window_bounds_rejects_zero_pace(self):
        with pytest.raises(ValueError, match="pace"):
            _window_bounds(1, 0, None)
        with pytest.raises(ValueError, match="pace"):
            _window_bounds(1, -2, 10)

    def test_window_bounds_rejects_zero_granularity(self):
        with pytest.raises(ValueError, match="granularity"):
            _window_bounds(1, 2, 0)

    def test_window_bounds_valid(self):
        assert _window_bounds(1, 2, None) == (0.0, 0.5)
        assert _window_bounds(2, 2, 4) == (0.5, 1.0)

    def test_simulate_subplan_rejects_zero_pace(self):
        catalog = make_toy_catalog()
        plan = calibrated_shared_plan(
            catalog, [toy_query_total(catalog, 0)], StreamConfig()
        )
        subplan = plan.subplans[0]
        # the guard fires before input profiles are consulted
        with pytest.raises(ValueError, match="pace"):
            simulate_subplan(subplan, 0, {}, CostConfig())
        with pytest.raises(ValueError, match="pace"):
            simulate_subplan(subplan, -1, {}, CostConfig())
