"""Tests for the TPC-H workload: datagen, queries, variants, paper queries."""

import pytest

from repro.engine.executor import PlanExecutor
from repro.mqo.canonical import canonicalize
from repro.mqo.merge import MQOOptimizer, build_unshared_plan
from repro.workloads.constraints import (
    CONSTRAINT_LEVELS,
    random_constraints,
    uniform_constraints,
)
from repro.workloads.tpch import (
    ALL_QUERY_NAMES,
    SHARING_FRIENDLY,
    build_pair,
    build_query,
    build_variant_workload,
    build_workload,
    generate_catalog,
    mutate_query,
    rows_for,
)
from repro.workloads.tpch import schema as tpch_schema
from repro.workloads.tpch.datagen import BASE_ROWS

from .util import assert_plan_correct, batch_reference


class TestDataGenerator:
    def test_deterministic(self):
        a = generate_catalog(scale=0.1, seed=9)
        b = generate_catalog(scale=0.1, seed=9)
        for name in a.names():
            assert a.get(name).rows == b.get(name).rows

    def test_seed_changes_data(self):
        a = generate_catalog(scale=0.1, seed=1)
        b = generate_catalog(scale=0.1, seed=2)
        assert a.get("lineitem").rows != b.get("lineitem").rows

    def test_row_counts_scale(self):
        catalog = generate_catalog(scale=0.5)
        for name, base in BASE_ROWS.items():
            assert len(catalog.get(name)) == pytest.approx(base * 0.5, abs=1)
        assert len(catalog.get("region")) == 5
        assert len(catalog.get("nation")) == 25

    def test_rows_for_fixed_tables(self):
        assert rows_for("region", 10.0) == 5
        assert rows_for("nation", 0.01) == 25

    def test_foreign_keys_resolve(self):
        catalog = generate_catalog(scale=0.2)
        n_parts = len(catalog.get("part"))
        n_suppliers = len(catalog.get("supplier"))
        n_orders = len(catalog.get("orders"))
        partsupp_pairs = {
            (row[0], row[1]) for row in catalog.get("partsupp").rows
        }
        for row in catalog.get("lineitem").rows:
            assert 0 <= row[0] < n_orders
            assert 0 <= row[1] < n_parts
            assert 0 <= row[2] < n_suppliers
            # dbgen invariant: the lineitem's supplier supplies the part
            assert (row[1], row[2]) in partsupp_pairs

    def test_dates_in_domain(self):
        catalog = generate_catalog(scale=0.2)
        schema = catalog.get("lineitem").schema
        ship = schema.index_of("l_shipdate")
        for row in catalog.get("lineitem").rows:
            assert tpch_schema.DATE_MIN <= row[ship] <= tpch_schema.DATE_MAX + 160

    def test_value_domains(self):
        catalog = generate_catalog(scale=0.2)
        schema = catalog.get("part").schema
        brand = schema.index_of("p_brand")
        assert all(
            row[brand] in tpch_schema.BRANDS for row in catalog.get("part").rows
        )


class TestQueries:
    def test_all_22_queries_build(self, tpch_tiny):
        queries = build_workload(tpch_tiny)
        assert [q.name for q in queries] == list(ALL_QUERY_NAMES)
        assert [q.query_id for q in queries] == list(range(22))

    def test_all_queries_return_rows_at_half_scale(self):
        catalog = generate_catalog(scale=0.5)
        queries = build_workload(catalog)
        plan = build_unshared_plan(catalog, queries)
        run = PlanExecutor(plan).run({s.sid: 1 for s in plan.subplans})
        empty = [q.name for q in queries if not run.query_results[q.query_id]]
        assert empty == []

    def test_sharing_friendly_subset_is_shared(self, tpch_tiny):
        queries = build_workload(tpch_tiny, SHARING_FRIENDLY)
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(queries)
        assert plan.shared_subplans(), "the 10-query subset must overlap"

    def test_full_workload_shares_substantially(self, tpch_tiny):
        queries = build_workload(tpch_tiny)
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(queries)
        shared_queries = set()
        for subplan in plan.shared_subplans():
            shared_queries.update(subplan.query_ids())
        assert len(shared_queries) >= 10

    def test_shared_execution_is_correct(self, tpch_tiny):
        queries = build_workload(tpch_tiny)
        reference = batch_reference(tpch_tiny, queries)
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(queries)
        assert_plan_correct(plan, queries, reference)

    def test_shared_incremental_execution_is_correct(self, tpch_tiny):
        queries = build_workload(tpch_tiny, ("Q3", "Q5", "Q10", "Q15", "Q18"))
        reference = batch_reference(tpch_tiny, queries)
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(queries)
        paces = {}
        for subplan in plan.topological_order():
            children = subplan.child_subplans()
            paces[subplan.sid] = min(
                (paces[c.sid] for c in children), default=6
            )
        assert_plan_correct(plan, queries, reference, paces=paces)

    def test_q15_contains_max_aggregate(self, tpch_tiny):
        query = build_query(tpch_tiny, "Q15", 0)
        node = canonicalize(query.root)
        has_max = any(
            n.kind == "aggregate"
            and any(spec.func == "max" for spec in n.payload[1])
            for n in node.walk()
        )
        assert has_max


class TestPaperQueries:
    def test_pair_builds_and_runs(self, tpch_tiny):
        queries = build_pair(tpch_tiny)
        assert [q.name for q in queries] == ["QA", "QB"]
        reference = batch_reference(tpch_tiny, queries)
        assert reference[0], "Q_A must produce a total"

    def test_pair_shares_figure2_block(self, tpch_tiny):
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(build_pair(tpch_tiny))
        assert len(plan.shared_subplans()) == 1

    def test_qb_filter_is_mark_in_shared_plan(self, tpch_tiny):
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(build_pair(tpch_tiny))
        shared = plan.shared_subplans()[0]
        marks = [n for n in shared.root.walk() if 1 in n.filters]
        assert marks and all(0 not in n.filters for n in marks)


class TestVariants:
    def test_variant_keeps_structure(self, tpch_tiny):
        base = build_query(tpch_tiny, "Q5", 0)
        variant = mutate_query(base, 1, seed=3)
        assert (
            base.root.structural_signature()
            == variant.root.structural_signature()
        )

    def test_variant_changes_some_predicate(self, tpch_tiny):
        base = build_query(tpch_tiny, "Q5", 0)
        variant = mutate_query(base, 1, seed=3)
        assert base.root.exact_signature() != variant.root.exact_signature()

    def test_variant_is_deterministic(self, tpch_tiny):
        base = build_query(tpch_tiny, "Q5", 0)
        a = mutate_query(base, 1, seed=3)
        b = mutate_query(base, 1, seed=3)
        assert a.root.exact_signature() == b.root.exact_signature()

    def test_range_shift_keeps_half_overlap(self, tpch_tiny):
        from repro.relational.expressions import col
        from repro.workloads.tpch.variants import PredicateMutator
        import random

        predicate = (col("d") >= 100) & (col("d") < 200)
        mutator = PredicateMutator(random.Random(0))
        shifted = mutator.mutate_predicate(predicate)
        # both bounds move by half the window: [150, 250)
        text = shifted.signature()
        assert "150" in text and "250" in text

    def test_variant_workload_shares_with_originals(self, tpch_tiny):
        queries = build_variant_workload(
            tpch_tiny, ("Q5", "Q18"), build_query, seed=1
        )
        assert len(queries) == 4
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(queries)
        # each original must share at least one subplan with its variant
        shared_masks = [s.query_mask for s in plan.shared_subplans()]
        assert any(mask & 0b0101 == 0b0101 for mask in shared_masks)

    def test_variant_workload_executes_correctly(self, tpch_tiny):
        queries = build_variant_workload(
            tpch_tiny, ("Q5", "Q18"), build_query, seed=1
        )
        reference = batch_reference(tpch_tiny, queries)
        plan = MQOOptimizer(tpch_tiny).build_shared_plan(queries)
        assert_plan_correct(
            plan, queries, reference, paces={s.sid: 3 for s in plan.subplans}
        )


class TestConstraints:
    def test_uniform(self):
        constraints = uniform_constraints(range(4), 0.5)
        assert constraints == {0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5}

    def test_uniform_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            uniform_constraints(range(2), 0.0)
        with pytest.raises(ValueError):
            uniform_constraints(range(2), 1.5)

    def test_random_is_seeded(self):
        a = random_constraints(range(10), seed=4)
        b = random_constraints(range(10), seed=4)
        c = random_constraints(range(10), seed=5)
        assert a == b
        assert a != c
        assert set(a.values()) <= set(CONSTRAINT_LEVELS)
