"""Tests for the expression language: building, compiling, signatures."""

import pytest

from repro.errors import ExpressionError
from repro.relational.expressions import (
    AggSpec,
    And,
    BinaryOp,
    Col,
    Comparison,
    Const,
    Contains,
    InList,
    Not,
    Or,
    StartsWith,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    col,
    contains,
    lift,
    starts_with,
)
from repro.relational.schema import Schema

SCHEMA = Schema.of("a", "b", "name")
ROW = (10, 4, "widget")


def evaluate(expr, row=ROW, schema=SCHEMA):
    return expr.compile(schema)(row)


class TestBuilding:
    def test_col_requires_name(self):
        with pytest.raises(ExpressionError):
            Col("")

    def test_lift_wraps_plain_values(self):
        assert isinstance(lift(5), Const)
        assert lift(col("a")) is not None

    def test_arithmetic_operators(self):
        assert evaluate(col("a") + col("b")) == 14
        assert evaluate(col("a") - 1) == 9
        assert evaluate(2 * col("b")) == 8
        assert evaluate(col("a") / col("b")) == 2.5
        assert evaluate(col("a") // 3) == 3

    def test_reflected_operators(self):
        assert evaluate(100 - col("a")) == 90
        assert evaluate(100 / col("a")) == 10
        assert evaluate(21 // col("a")) == 2

    def test_comparisons(self):
        assert evaluate(col("a") == 10) is True
        assert evaluate(col("a") != 10) is False
        assert evaluate(col("a") < 11) is True
        assert evaluate(col("a") <= 10) is True
        assert evaluate(col("a") > 10) is False
        assert evaluate(col("a") >= 10) is True

    def test_boolean_connectives(self):
        expr = (col("a") > 5) & (col("b") < 5)
        assert evaluate(expr) is True
        expr = (col("a") > 50) | (col("b") < 5)
        assert evaluate(expr) is True
        assert evaluate(~(col("a") > 5)) is False

    def test_isin_and_between(self):
        assert evaluate(col("a").isin([1, 10])) is True
        assert evaluate(col("a").isin([1, 2])) is False
        assert evaluate(col("a").between(10, 12)) is True
        assert evaluate(col("a").between(11, 12)) is False

    def test_string_predicates(self):
        assert evaluate(starts_with(col("name"), "wid")) is True
        assert evaluate(starts_with(col("name"), "x")) is False
        assert evaluate(contains(col("name"), "dge")) is True
        assert evaluate(contains(col("name"), "zzz")) is False

    def test_bool_arithmetic_indicator(self):
        # bool * value is the engine's indicator idiom (Q8/Q12/Q14)
        expr = (col("name") == "widget") * col("a")
        assert evaluate(expr) == 10
        expr = (col("name") == "nope") * col("a")
        assert evaluate(expr) == 0


class TestIntrospection:
    def test_columns_collects_all_refs(self):
        expr = (col("a") + col("b") > 3) & starts_with(col("name"), "w")
        assert expr.columns() == {"a", "b", "name"}

    def test_const_has_no_columns(self):
        assert Const(4).columns() == set()

    def test_signatures_distinguish_values(self):
        assert (col("a") > 1).signature() != (col("a") > 2).signature()
        assert (col("a") > 1).signature() == (col("a") > 1).signature()

    def test_signatures_distinguish_operators(self):
        assert (col("a") + 1).signature() != (col("a") - 1).signature()

    def test_in_list_signature_is_order_insensitive(self):
        a = col("a").isin([1, 2]).signature()
        b = col("a").isin([2, 1]).signature()
        assert a == b

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("%", col("a"), Const(2))
        with pytest.raises(ExpressionError):
            Comparison("~=", col("a"), Const(2))


class TestCompilationBinding:
    def test_compile_binds_by_position(self):
        schema = Schema.of("x", "y")
        fn = (col("y") - col("x")).compile(schema)
        assert fn((3, 10)) == 7

    def test_compile_missing_column_raises(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            col("zz").compile(SCHEMA)

    def test_const_closure_is_stable(self):
        fn = Const(42).compile(SCHEMA)
        assert fn(ROW) == 42
        assert fn(None) == 42  # row is ignored entirely


class TestAggSpecs:
    def test_factories(self):
        assert agg_sum(col("a"), "s").func == "sum"
        assert agg_avg(col("a"), "s").func == "avg"
        assert agg_min(col("a"), "s").func == "min"
        assert agg_max(col("a"), "s").func == "max"
        assert agg_count("n").func == "count"

    def test_count_defaults_to_const_input(self):
        spec = agg_count("n")
        assert isinstance(spec.expr, Const)

    def test_unknown_func_rejected(self):
        with pytest.raises(ExpressionError):
            AggSpec("median", col("a"), "m")

    def test_sum_requires_expression(self):
        with pytest.raises(ExpressionError):
            AggSpec("sum", None, "s")

    def test_signature_includes_alias_and_expr(self):
        a = agg_sum(col("a"), "x").signature()
        b = agg_sum(col("a"), "y").signature()
        c = agg_sum(col("b"), "x").signature()
        assert len({a, b, c}) == 3
