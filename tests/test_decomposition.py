"""Tests for splitting, plan regeneration, partial and full decomposition."""

import pytest

from repro.core.decompose import decompose_full_plan
from repro.core.greedy import PaceSearch
from repro.core.partial import bfs_order, partial_cut_candidates
from repro.core.regenerate import apply_split
from repro.core.split import LocalSplitOptimizer, set_partitions
from repro.cost.memo import PlanCostModel
from repro.cost.model import CostConfig
from repro.engine.calibrate import calibrate_plan
from repro.engine.stream import StreamConfig
from repro.errors import OptimizationError
from repro.mqo.merge import MQOOptimizer
from repro.relational import bitvec

from .util import (
    assert_plan_correct,
    batch_reference,
    make_toy_catalog,
    toy_query_region,
    toy_query_total,
)


def bell(n):
    """Bell numbers via the Bell triangle (reference for set_partitions)."""
    row = [1]
    for _ in range(n - 1):
        nxt = [row[-1]]
        for value in row:
            nxt.append(nxt[-1] + value)
        row = nxt
    return row[-1]


class TestSetPartitions:
    @pytest.mark.parametrize("n,count", [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)])
    def test_counts_are_bell_numbers(self, n, count):
        assert len(list(set_partitions(range(n)))) == count
        assert bell(n) == count

    def test_each_partition_covers_items(self):
        for partition in set_partitions([1, 2, 3]):
            flat = sorted(x for block in partition for x in block)
            assert flat == [1, 2, 3]

    def test_partitions_are_unique(self):
        partitions = [
            tuple(sorted(map(tuple, p))) for p in set_partitions(range(4))
        ]
        assert len(partitions) == len(set(partitions))

    def test_empty(self):
        assert list(set_partitions([])) == [[]]


@pytest.fixture(scope="module")
def split_setup():
    """Three queries sharing one subplan, calibrated, pace-optimized."""
    catalog = make_toy_catalog(seed=21)
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1, region="EU"),
        toy_query_region(catalog, 2, region="US"),
    ]
    # queries 1 and 2 share an identical aggregate; all three share joins
    queries[2].name = "toy_region_us"
    plan = MQOOptimizer(catalog).build_shared_plan(queries)
    config = StreamConfig()
    calibrate_plan(plan, config)
    model = PlanCostModel(plan, CostConfig(state_factor=config.state_factor))
    constraints = model.absolute_constraints({0: 1.0, 1: 0.2, 2: 0.2})
    search = PaceSearch(model, constraints, max_pace=24)
    found = search.find()
    return catalog, queries, plan, config, model, constraints, found


class TestLocalSplitOptimizer:
    def _optimizer(self, split_setup, subplan=None):
        catalog, queries, plan, config, model, constraints, found = split_setup
        target = subplan or max(
            plan.shared_subplans(), key=lambda s: bitvec.popcount(s.query_mask)
        )
        evaluation = model.evaluate(found.pace_config, collect_inputs=True)
        local = model.local_constraints(target, constraints)
        return LocalSplitOptimizer(
            target, evaluation.subplan_inputs[target.sid], local, 24,
            CostConfig(state_factor=config.state_factor),
        )

    def test_partition_cost_is_cached(self, split_setup):
        optimizer = self._optimizer(split_setup)
        part = (optimizer.queries[0],)
        optimizer.partition_cost(part, 3)
        count = optimizer.simulations
        optimizer.partition_cost(part, 3)
        assert optimizer.simulations == count

    def test_partition_constraint_is_minimum(self, split_setup):
        optimizer = self._optimizer(split_setup)
        singles = [
            optimizer.partition_constraint((qid,)) for qid in optimizer.queries
        ]
        merged = optimizer.partition_constraint(tuple(optimizer.queries))
        assert merged == pytest.approx(min(singles))

    def test_selected_pace_meets_constraint_when_possible(self, split_setup):
        optimizer = self._optimizer(split_setup)
        part = tuple(optimizer.queries)
        pace, _ = optimizer.selected_pace(part)
        _, final = optimizer.partition_cost(part, pace)
        bound = optimizer.partition_constraint(part)
        if pace < optimizer.max_pace:
            assert final <= bound

    def test_selected_pace_monotone_under_merge(self, split_setup):
        """Merging partitions can only raise the selected pace (section 4.1.2)."""
        optimizer = self._optimizer(split_setup)
        queries = optimizer.queries
        pace_a, _ = optimizer.selected_pace((queries[0],))
        pace_b, _ = optimizer.selected_pace((queries[1],))
        merged, _ = optimizer.selected_pace((queries[0], queries[1]))
        assert merged >= max(1, min(pace_a, pace_b)) - 1  # monotone modulo max cap
        assert merged >= 1

    def test_cluster_covers_all_queries(self, split_setup):
        optimizer = self._optimizer(split_setup)
        decision = optimizer.cluster()
        flat = sorted(q for part, _ in decision.partitions for q in part)
        assert flat == sorted(optimizer.queries)

    def test_brute_force_at_least_as_good_locally(self, split_setup):
        optimizer = self._optimizer(split_setup)
        greedy = optimizer.cluster()
        exhaustive = optimizer.brute_force()
        assert exhaustive.local_total_work <= greedy.local_total_work + 1e-6

    def test_brute_force_caps_large_query_sets(self, split_setup):
        optimizer = self._optimizer(split_setup)
        decision = optimizer.brute_force(max_queries=1)
        flat = sorted(q for part, _ in decision.partitions for q in part)
        assert flat == sorted(optimizer.queries)  # fell back to clustering


class TestApplySplit:
    def test_split_into_singletons_preserves_results(self, split_setup):
        catalog, queries, plan, config, model, constraints, found = split_setup
        shared = max(
            plan.shared_subplans(), key=lambda s: bitvec.popcount(s.query_mask)
        )
        parts = [(qid,) for qid in shared.query_ids()]
        new_plan, initial = apply_split(plan, found.pace_config, shared.sid, parts)
        new_plan.validate()
        assert shared.sid not in {s.sid for s in new_plan.subplans}
        reference = batch_reference(catalog, queries)
        assert_plan_correct(
            new_plan, queries, reference,
            paces={s.sid: 1 for s in new_plan.subplans},
        )

    def test_initial_paces_inherit_from_origin(self, split_setup):
        catalog, queries, plan, config, model, constraints, found = split_setup
        shared = max(
            plan.shared_subplans(), key=lambda s: bitvec.popcount(s.query_mask)
        )
        parts = [(qid,) for qid in shared.query_ids()]
        new_plan, initial = apply_split(plan, found.pace_config, shared.sid, parts)
        old_pace = found.pace_config[shared.sid]
        derived = [
            initial[s.sid] for s in new_plan.subplans
            if s.sid not in found.pace_config
        ]
        assert derived and all(p >= old_pace for p in derived)

    def test_split_subsumption_repair(self, split_setup):
        """Parents spanning partitions are split recursively (Figure 8)."""
        catalog, queries, plan, config, model, constraints, found = split_setup
        shared = max(
            plan.shared_subplans(), key=lambda s: bitvec.popcount(s.query_mask)
        )
        parts = [(qid,) for qid in shared.query_ids()]
        new_plan, _ = apply_split(plan, found.pace_config, shared.sid, parts)
        for subplan in new_plan.subplans:
            for child in subplan.child_subplans():
                assert bitvec.subsumes(child.query_mask, subplan.query_mask)

    def test_split_rejects_non_covering_partitions(self, split_setup):
        _, _, plan, _, _, _, found = split_setup
        shared = plan.shared_subplans()[0]
        with pytest.raises(OptimizationError, match="cover"):
            apply_split(plan, found.pace_config, shared.sid,
                        [(shared.query_ids()[0],)])

    def test_split_rejects_single_partition(self, split_setup):
        _, _, plan, _, _, _, found = split_setup
        shared = plan.shared_subplans()[0]
        with pytest.raises(OptimizationError, match="two partitions"):
            apply_split(plan, found.pace_config, shared.sid,
                        [tuple(shared.query_ids())])

    def test_original_plan_untouched(self, split_setup):
        catalog, queries, plan, config, model, constraints, found = split_setup
        before = plan.describe()
        shared = max(
            plan.shared_subplans(), key=lambda s: bitvec.popcount(s.query_mask)
        )
        parts = [(qid,) for qid in shared.query_ids()]
        apply_split(plan, found.pace_config, shared.sid, parts)
        assert plan.describe() == before


class TestPartialDecomposition:
    def test_bfs_order_root_first(self, split_setup):
        _, _, plan, _, _, _, _ = split_setup
        shared = plan.shared_subplans()[0]
        order = bfs_order(shared.root)
        assert order[0] is shared.root
        # parents precede children
        position = {id(node): index for index, node in enumerate(order)}
        for node in order:
            for child in node.children:
                assert position[id(node)] < position[id(child)]

    def test_candidates_are_valid_plans(self, split_setup):
        catalog, queries, plan, *_ = split_setup
        shared = max(
            plan.shared_subplans(), key=lambda s: s.operator_count()
        )
        reference = batch_reference(catalog, queries)
        count = 0
        for cut_plan, top_sid, bottom_sids in partial_cut_candidates(plan, shared.sid):
            cut_plan.validate()
            count += 1
            assert bottom_sids
            if count == 2:  # execute a couple of candidates fully
                assert_plan_correct(
                    cut_plan, queries, reference,
                    paces={s.sid: 1 for s in cut_plan.subplans},
                )
        assert 0 < count < shared.operator_count()

    def test_candidate_count_bounded_by_operators(self, split_setup):
        _, _, plan, *_ = split_setup
        for shared in plan.shared_subplans():
            candidates = list(partial_cut_candidates(plan, shared.sid))
            assert len(candidates) <= shared.operator_count()


class TestFullDecomposition:
    def test_decompose_never_increases_estimated_total(self, split_setup):
        catalog, queries, plan, config, model, constraints, found = split_setup
        outcome = decompose_full_plan(
            plan, found.pace_config, constraints, 24,
            cost_config=CostConfig(state_factor=config.state_factor),
            cost_model=model,
        )
        assert outcome.evaluation.total_work <= found.evaluation.total_work + 1e-6
        outcome.plan.validate()

    def test_decomposed_plan_is_still_correct(self, split_setup):
        catalog, queries, plan, config, model, constraints, found = split_setup
        outcome = decompose_full_plan(
            plan, found.pace_config, constraints, 24,
            cost_config=CostConfig(state_factor=config.state_factor),
        )
        reference = batch_reference(catalog, queries)
        assert_plan_correct(
            outcome.plan, queries, reference, paces=outcome.pace_config,
            stream_config=config,
        )

    def test_actions_record_improvements(self, split_setup):
        catalog, queries, plan, config, model, constraints, found = split_setup
        outcome = decompose_full_plan(
            plan, found.pace_config, constraints, 24,
            cost_config=CostConfig(state_factor=config.state_factor),
        )
        for action in outcome.actions:
            assert action.work_after < action.work_before
