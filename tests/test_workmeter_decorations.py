"""Direct tests for work accounting and decoration statistics."""

import pytest

from repro.mqo.nodes import OpNode, TableRef
from repro.physical.operators import Decorations
from repro.physical.work import WorkMeter
from repro.relational.expressions import col
from repro.relational.schema import Schema
from repro.relational.tuples import Delta, INSERT


class TestWorkMeter:
    def test_categories_accumulate_into_total(self):
        meter = WorkMeter()
        meter.charge_input("a", 10)
        meter.charge_output("a", 5)
        meter.charge_rescan("b", 3)
        meter.charge_state("c", 2.5)
        assert meter.total == pytest.approx(20.5)
        assert meter.input_units == 10
        assert meter.output_units == 5
        assert meter.rescan_units == 3
        assert meter.state_units == pytest.approx(2.5)

    def test_per_operator_attribution(self):
        meter = WorkMeter()
        meter.charge_input("scan", 7)
        meter.charge_output("scan", 2)
        meter.charge_input("agg", 1)
        assert meter.per_operator == {"scan": 9, "agg": 1}

    def test_snapshot_is_a_copy(self):
        meter = WorkMeter()
        meter.charge_input("x", 1)
        snapshot = meter.snapshot()
        meter.charge_input("x", 1)
        assert snapshot == {"x": 1}


class TestDecorationStats:
    def _node(self, filters=None, projections=None, mask=0b11):
        schema = Schema.of("a", "b")
        return OpNode(
            "source",
            ref=TableRef("t", schema),
            filters=filters,
            projections=projections,
            query_mask=mask,
        )

    def test_stats_mode_counts_per_query_in_out(self):
        node = self._node(filters={0: col("a") > 5, 1: col("a") > 50})
        decorations = Decorations(node, stats_mode=True)
        meter = WorkMeter()
        deltas = [
            Delta((10, 0), INSERT, 0b11),
            Delta((60, 0), INSERT, 0b11),
            Delta((1, 0), INSERT, 0b11),
        ]
        out = decorations.apply(deltas, meter)
        assert decorations.filter_in_per_q == {0: 3, 1: 3}
        # q0 keeps rows with a>5 (two), q1 only a>50 (one)
        assert decorations.filter_out_per_q == {0: 2, 1: 1}
        assert len(out) == 2  # the a=1 row satisfied nobody

    def test_no_filters_means_no_filter_charge(self):
        node = self._node()
        decorations = Decorations(node, stats_mode=True)
        meter = WorkMeter()
        out = decorations.apply([Delta((1, 2), INSERT, 0b01)], meter)
        assert meter.total == 0
        assert len(out) == 1

    def test_projection_charges_and_rewrites(self):
        node = self._node(projections={0: (("s", col("a") + col("b")),)},
                          mask=0b01)
        decorations = Decorations(node, stats_mode=False)
        meter = WorkMeter()
        out = decorations.apply([Delta((2, 3), INSERT, 0b01)], meter)
        assert out[0].row == (5,)
        assert meter.total == 1  # one projection charge

    def test_filter_then_project_pipeline(self):
        node = self._node(
            filters={0: col("a") > 1},
            projections={0: (("a2", col("a") * 2),)},
            mask=0b01,
        )
        decorations = Decorations(node, stats_mode=False)
        meter = WorkMeter()
        out = decorations.apply(
            [Delta((2, 0), INSERT, 0b01), Delta((0, 0), INSERT, 0b01)], meter
        )
        assert [d.row for d in out] == [(4,)]
        # 2 filter charges + 1 projection charge (after the drop)
        assert meter.total == 3
