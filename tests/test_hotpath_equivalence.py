"""Bit-identity of the batched hot path against the per-tuple reference.

The engine keeps the original per-tuple delta application as a switchable
reference path (``repro.physical.hotpath``).  These tests are the ISSUE's
hard constraint: the batched path, the compiled-artifact cache, operator
tree reuse, and in-place buffer compaction must leave every RunResult
work/latency number and every query result *bit-identical* on the fig11
workload (TPC-H, all 22 queries, update-stream churn included).
"""

import os

import pytest

from repro.engine.buffers import Buffer
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig
from repro.errors import ExecutionError
from repro.physical.hotpath import clear_compiled_caches, engine_mode
from repro.relational.tuples import Delta
from repro.workloads.tpch import (
    ALL_QUERY_NAMES,
    add_lineitem_updates,
    build_workload,
    generate_catalog,
)

from .util import shared_plan_for


def fingerprint(result):
    """Every numeric surface of a RunResult, exact (no tolerance)."""
    return {
        "total_work": result.total_work,
        "records": [
            (r.sid, r.fraction, r.work, r.latency_work, r.output_count)
            for r in result.records
        ],
        "subplan_total_work": result.subplan_total_work,
        "subplan_final_work": result.subplan_final_work,
        "query_final_work": result.query_final_work,
        "query_results": result.query_results,
    }


@pytest.fixture(scope="module")
def fig11_setup():
    catalog = generate_catalog(scale=0.08, seed=5)
    add_lineitem_updates(catalog, fraction=0.05, seed=11)
    queries = build_workload(catalog, ALL_QUERY_NAMES)
    plan = shared_plan_for(catalog, queries)
    # a valid mixed pace configuration: leaves eager, parents lazier
    paces = {
        subplan.sid: 2 if subplan.child_subplans() else 6
        for subplan in plan.subplans
    }
    return plan, paces


def run_with(plan, paces, **mode):
    clear_compiled_caches()
    with engine_mode(**mode):
        executor = PlanExecutor(plan, StreamConfig())
        return executor.run(paces)


class TestFig11BitIdentity:
    def test_batched_matches_reference(self, fig11_setup):
        plan, paces = fig11_setup
        batched = run_with(plan, paces, batched=True)
        reference = run_with(
            plan, paces, batched=False, compile_cache=False, reuse_trees=False
        )
        assert fingerprint(batched) == fingerprint(reference)

    def test_each_toggle_is_individually_neutral(self, fig11_setup):
        plan, paces = fig11_setup
        baseline = fingerprint(
            run_with(plan, paces, batched=False, compile_cache=False,
                     reuse_trees=False, arrangements=False)
        )
        for toggle in ("batched", "compile_cache", "reuse_trees",
                       "arrangements"):
            mode = {"batched": False, "compile_cache": False,
                    "reuse_trees": False, "arrangements": False, toggle: True}
            assert fingerprint(run_with(plan, paces, **mode)) == baseline, toggle

    def test_uniform_pace_identity(self, fig11_setup):
        plan, _ = fig11_setup
        paces = {subplan.sid: 3 for subplan in plan.subplans}
        batched = run_with(plan, paces, batched=True)
        reference = run_with(
            plan, paces, batched=False, compile_cache=False, reuse_trees=False
        )
        assert fingerprint(batched) == fingerprint(reference)


class TestTreeReuse:
    def test_reused_tree_matches_fresh_executor(self, fig11_setup):
        plan, paces = fig11_setup
        with engine_mode(batched=True, reuse_trees=True):
            executor = PlanExecutor(plan, StreamConfig())
            first = fingerprint(executor.run(paces))
            assert executor._runtime is not None
            second = fingerprint(executor.run(paces))  # reused tree
            fresh = fingerprint(PlanExecutor(plan, StreamConfig()).run(paces))
        assert first == second == fresh

    def test_reuse_across_different_paces(self, fig11_setup):
        plan, paces = fig11_setup
        lazy = {subplan.sid: 1 for subplan in plan.subplans}
        with engine_mode(batched=True, reuse_trees=True):
            executor = PlanExecutor(plan, StreamConfig())
            executor.run(paces)
            reused = fingerprint(executor.run(lazy))
            fresh = fingerprint(PlanExecutor(plan, StreamConfig()).run(lazy))
        assert reused == fresh

    def test_stats_mode_counters_reset_on_reuse(self, fig11_setup):
        plan, paces = fig11_setup
        with engine_mode(batched=True, reuse_trees=True):
            executor = PlanExecutor(plan, StreamConfig(), stats_mode=True)
            executor.run(paces)
            first = {
                sid: unit.meter.snapshot()
                for sid, unit in executor.compiled.items()
            }
            executor.run(paces)
            second = {
                sid: unit.meter.snapshot()
                for sid, unit in executor.compiled.items()
            }
        assert first == second


class TestBufferCompaction:
    def _deltas(self, n, bits=1):
        return [Delta(("r%d" % i,), 1, bits) for i in range(n)]

    def test_compact_drops_only_consumed_prefix(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append(self._deltas(10))
        assert reader.read_new() == buffer.deltas
        buffer.append(self._deltas(3))
        dropped = buffer.compact()
        assert dropped == 10
        assert len(buffer) == 13  # logical length unchanged
        assert len(buffer.deltas) == 3
        assert len(reader.read_new()) == 3
        assert reader.remaining() == 0

    def test_pinned_buffer_never_compacts(self):
        buffer = Buffer("b")
        buffer.pinned = True
        reader = buffer.reader()
        buffer.append(self._deltas(5))
        reader.read_new()
        assert buffer.compact() == 0
        assert len(buffer.deltas) == 5

    def test_unread_buffer_never_compacts(self):
        buffer = Buffer("b")
        buffer.append(self._deltas(5))
        assert buffer.compact() == 0  # no readers registered
        late = buffer.reader()
        assert len(late.read_new()) == 5

    def test_reader_behind_horizon_raises(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append(self._deltas(4))
        reader.read_new()
        buffer.compact()
        stale = buffer.reader()  # new reader starts at logical offset 0
        with pytest.raises(ExecutionError):
            stale.read_new()

    def test_reset_rewinds_readers_and_base(self):
        buffer = Buffer("b")
        reader = buffer.reader()
        buffer.append(self._deltas(4))
        reader.read_new()
        buffer.compact()
        buffer.reset()
        assert buffer.base == 0 and buffer.deltas == [] and reader.offset == 0
        buffer.append(self._deltas(2))
        assert len(reader.read_new()) == 2


@pytest.mark.skipif(
    not os.environ.get("REPRO_HOTPATH_E2E"),
    reason="set REPRO_HOTPATH_E2E=1 (CI) for the parallel-harness identity check",
)
def test_fig11_sweep_jobs2_bit_identical(monkeypatch, tmp_path):
    """The full fig11 sweep under --jobs 2 is mode-invariant.

    Worker processes read the REPRO_ENGINE_* toggles from the environment
    at import, so the reference leg forces them via monkeypatch; the
    parent process is switched with engine_mode.
    """
    from repro.harness.experiments import fig11

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    kwargs = dict(scale=0.1, max_pace=6, levels=(0.1,), jobs=2)
    with engine_mode(batched=True, compile_cache=True, reuse_trees=True):
        batched = fig11(**kwargs)
    monkeypatch.setenv("REPRO_ENGINE_UNBATCHED", "1")
    monkeypatch.setenv("REPRO_ENGINE_NO_COMPILE_CACHE", "1")
    monkeypatch.setenv("REPRO_ENGINE_NO_PLAN_REUSE", "1")
    with engine_mode(batched=False, compile_cache=False, reuse_trees=False):
        reference = fig11(**kwargs)
    assert batched.tables == reference.tables
