"""End-to-end tests of the four optimizers on a small workload."""

import pytest

from repro.core.optimizer import (
    OptimizerConfig,
    optimize_ishare,
    optimize_noshare_nonuniform,
    optimize_noshare_uniform,
    optimize_share_uniform,
    reference_absolute_constraints,
)
from repro.core.pace import validate_parent_child
from repro.engine.executor import PlanExecutor
from repro.engine.stream import StreamConfig

from .util import (
    assert_plan_correct,
    batch_reference,
    make_toy_catalog,
    toy_query_max,
    toy_query_region,
    toy_query_total,
)

ALL_OPTIMIZERS = [
    optimize_noshare_uniform,
    optimize_noshare_nonuniform,
    optimize_share_uniform,
    optimize_ishare,
]


@pytest.fixture(scope="module")
def workload():
    catalog = make_toy_catalog(seed=31)
    queries = [
        toy_query_total(catalog, 0),
        toy_query_region(catalog, 1),
        toy_query_max(catalog, 2),
    ]
    reference = batch_reference(catalog, queries)
    config = OptimizerConfig(max_pace=24, stream_config=StreamConfig())
    relative = {0: 1.0, 1: 0.2, 2: 0.5}
    constraints = reference_absolute_constraints(
        catalog, queries, relative, config
    )
    return catalog, queries, reference, config, relative, constraints


class TestOptimizersEndToEnd:
    @pytest.mark.parametrize("optimize", ALL_OPTIMIZERS)
    def test_results_correct_under_found_paces(self, workload, optimize):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize(catalog, queries, relative, config,
                          absolute_constraints=constraints)
        assert_plan_correct(
            result.plan, queries, reference, paces=result.pace_config,
            stream_config=config.stream_config,
        )

    @pytest.mark.parametrize("optimize", ALL_OPTIMIZERS)
    def test_pace_configs_are_legal(self, workload, optimize):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize(catalog, queries, relative, config,
                          absolute_constraints=constraints)
        validate_parent_child(result.plan, result.pace_config)
        assert all(
            1 <= pace <= config.max_pace for pace in result.pace_config.values()
        )

    @pytest.mark.parametrize("optimize", ALL_OPTIMIZERS)
    def test_estimates_track_measurements(self, workload, optimize):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize(catalog, queries, relative, config,
                          absolute_constraints=constraints)
        run = PlanExecutor(result.plan, config.stream_config).run(
            result.pace_config, collect_results=False
        )
        assert result.evaluation.total_work == pytest.approx(
            run.total_work, rel=0.35
        )

    def test_ishare_no_worse_than_share_uniform(self, workload):
        catalog, queries, reference, config, relative, constraints = workload
        share = optimize_share_uniform(catalog, queries, relative, config,
                                       absolute_constraints=constraints)
        ishare = optimize_ishare(catalog, queries, relative, config,
                                 absolute_constraints=constraints)
        share_run = PlanExecutor(share.plan, config.stream_config).run(
            share.pace_config, collect_results=False
        )
        ishare_run = PlanExecutor(ishare.plan, config.stream_config).run(
            ishare.pace_config, collect_results=False
        )
        assert ishare_run.total_work <= share_run.total_work * 1.02

    def test_share_uniform_single_pace_per_component(self, workload):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize_share_uniform(catalog, queries, relative, config,
                                        absolute_constraints=constraints)
        components = result.plan.connected_components()
        for component in components:
            mask = 0
            for qid in component:
                mask |= 1 << qid
            paces = {
                result.pace_config[s.sid]
                for s in result.plan.subplans
                if s.query_mask & mask
            }
            assert len(paces) == 1

    def test_noshare_uniform_single_pace_per_query(self, workload):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize_noshare_uniform(catalog, queries, relative, config,
                                          absolute_constraints=constraints)
        assert len(result.plan.subplans) == len(queries)

    def test_disabling_unshare_skips_actions(self, workload):
        catalog, queries, reference, config, relative, constraints = workload
        no_unshare = OptimizerConfig(
            max_pace=config.max_pace, stream_config=config.stream_config,
            enable_unshare=False,
        )
        result = optimize_ishare(catalog, queries, relative, no_unshare,
                                 absolute_constraints=constraints)
        assert result.approach == "iShare (w/o unshare)"
        assert result.diagnostics["actions"] == []

    def test_constraints_resolved_internally_when_not_given(self, workload):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize_noshare_uniform(catalog, queries, relative, config)
        assert result.absolute_constraints
        for qid in relative:
            assert result.absolute_constraints[qid] > 0

    def test_optimization_time_recorded(self, workload):
        catalog, queries, reference, config, relative, constraints = workload
        result = optimize_ishare(catalog, queries, relative, config,
                                 absolute_constraints=constraints)
        assert result.optimization_seconds >= 0.0
        assert "iterations" in result.diagnostics
