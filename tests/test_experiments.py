"""Smoke tests of the per-figure experiment drivers at tiny scale.

These exercise the same code paths the benchmarks run, shrunk to seconds,
and assert the structural properties of each driver's output (the shape
assertions live in the benchmarks, where the scale is meaningful).
"""

import pytest

from repro.harness import (
    APPROACHES,
    default_config,
    fig9,
    fig10,
    fig15,
    fig16,
    fig17,
)
from repro.harness.experiments import _uniform_sweep
from repro.workloads.tpch import ALL_QUERY_NAMES


TINY = dict(scale=0.12, max_pace=8)


@pytest.fixture(scope="module")
def tiny_config():
    return default_config(max_pace=8)


class TestFig10Driver:
    def test_reports_ratio_below_one(self, tiny_config):
        result = fig10(scale=0.12, config=tiny_config)
        assert 0 < result.data["ratio"] < 1.0
        assert "Shared (MQO)" in result.text()


class TestFig9Driver:
    def test_collects_all_approaches_and_seeds(self, tiny_config):
        result = fig9(scale=0.12, max_pace=8, seeds=(1, 2), config=tiny_config)
        totals = result.data["totals"]
        assert set(totals) == set(APPROACHES)
        assert all(len(values) == 2 for values in totals.values())
        assert "Mean s" in result.text()

    def test_missed_summaries_accumulate_queries(self, tiny_config):
        result = fig9(scale=0.12, max_pace=8, seeds=(1, 2), config=tiny_config)
        for name in APPROACHES:
            assert len(result.data["missed"][name].absolute) == 2 * 22


class TestUniformSweepDriver:
    def test_rows_per_level(self, tiny_config):
        result = _uniform_sweep(
            ("Q1", "Q6", "Q12"), "mini sweep", 0.12, 8, (1.0, 0.2), tiny_config
        )
        rows = result.data["rows"]
        assert [label for label, _ in rows] == ["rel=1.0", "rel=0.2"]
        for _, by_approach in rows:
            assert set(by_approach) == set(APPROACHES)
            assert all(r.total_seconds > 0 for r in by_approach.values())


class TestFig15Driver:
    def test_memo_column_finishes_and_dnf_marks(self, tiny_config):
        result = fig15(scale=0.1, max_paces=(4, 8), level=0.2,
                       dnf_seconds=30.0)
        rows = result.data["rows"]
        assert len(rows) == 2
        for row in rows:
            assert isinstance(row[1], float)  # with memo always finishes
        assert "DNF" in result.text() or all(
            isinstance(row[2], float) for row in rows
        )


class TestFig16Driver:
    def test_timings_recorded_per_count(self, tiny_config):
        result = fig16(scale=0.1, max_pace=12, query_counts=(2, 3),
                       config=tiny_config)
        rows = result.data["rows"]
        assert len(rows) == 2
        for row in rows:
            assert row[1] >= 0 and row[2] >= 0


class TestFig17Driver:
    def test_all_three_pairs_present(self, tiny_config):
        result = fig17(scale=0.12, max_pace=8, levels=(1.0, 0.2),
                       config=tiny_config)
        assert set(result.data["pairs"]) == {"PairA", "PairB", "PairC"}
        for rows in result.data["pairs"].values():
            assert len(rows) == 2


class TestWorkloadNamesCoverage:
    def test_all_query_names_match_paper(self):
        assert len(ALL_QUERY_NAMES) == 22
        assert ALL_QUERY_NAMES[0] == "Q1" and ALL_QUERY_NAMES[-1] == "Q22"


class TestTwoPhaseDriver:
    def test_two_phase_rows_and_shapes(self, tiny_config):
        from repro.harness import two_phase_baseline

        result = two_phase_baseline(
            scale=0.12, max_pace=8, level=0.2, config=tiny_config,
            first_points=(0.5,),
        )
        rows = result.data["rows"]
        assert len(rows) == 2  # one tuning point + iShare
        assert rows[-1][0] == "iShare"
        assert result.data["best_two_phase_max_miss"] >= 0
